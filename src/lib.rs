//! # sio — umbrella crate for the SC '95 parallel-I/O characterization suite
//!
//! Re-exports the member crates of the workspace so examples and downstream
//! users can depend on a single crate:
//!
//! * [`core`] (`sio-core`) — Pablo-style instrumentation, trace reductions,
//!   statistics, access-pattern classification and prediction.
//! * [`paragon`] (`paragon-sim`) — discrete-event Intel Paragon XP/S model.
//! * [`pfs`] (`sio-pfs`) — Intel PFS model with the six parallel access modes.
//! * [`ppfs`] (`sio-ppfs`) — portable parallel file system with tunable
//!   caching / prefetching / write-behind / aggregation policies.
//! * [`cio`] (`sio-cio`) — collective two-phase I/O backend: extent exchange
//!   over the mesh, conforming stripe-aligned partition, one aggregated
//!   transfer per touched I/O node.
//! * [`blog`] (`sio-blog`) — host-side log-structured burst-buffer tier:
//!   checkpoint writes commit to a per-node append log at near-local speed
//!   and drain asynchronously into any wrapped backend.
//! * [`apps`] (`sio-apps`) — ESCAT, RENDER, and HTF application skeletons.
//! * [`analysis`] (`sio-analysis`) — regeneration of every table and figure.

pub use paragon_sim as paragon;
pub use sio_analysis as analysis;
pub use sio_apps as apps;
pub use sio_blog as blog;
pub use sio_cio as cio;
pub use sio_core as core;
pub use sio_pfs as pfs;
pub use sio_ppfs as ppfs;

/// Convenience prelude: the types most programs need to run a characterized
/// workload end to end.
pub mod prelude {
    pub use paragon_sim::machine::MachineConfig;
    pub use sio_analysis::experiments;
    pub use sio_apps::{escat::EscatParams, htf::HtfParams, render::RenderParams};
    pub use sio_core::{IoEvent, IoOp, Trace, Tracer};
}

//! Offline stand-in for `criterion` — just enough harness for this
//! repository's bench targets to build and produce useful numbers.
//!
//! Each `bench_function` runs its closure for a warm-up pass and then for
//! up to [`Criterion::sample_size`] timed iterations (bounded by a time
//! budget, since several benches rerun full 128-node simulations per
//! iteration), printing mean wall-clock time per iteration. No statistics,
//! no reports — a measurement smoke harness, not a replacement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Optional throughput annotation, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing collector.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then timed iterations until the sample
    /// target or the time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.max_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {:>12.3?} /iter  ({} samples){rate}",
        mean,
        samples.len()
    );
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            budget: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Adopt the first non-flag CLI argument as a substring filter on bench
    /// names (the `cargo bench -- <filter>` convention); flags cargo adds,
    /// like `--bench`, are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Set the per-bench iteration target.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(1);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        if !self.matches(name) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.budget,
            max_samples: self.sample_size,
        };
        f(&mut b);
        report(name, &b.samples, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        if !self.parent.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.parent.budget,
            max_samples: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        report(&full, &b.samples, self.throughput);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion {
            filter: Some("engine".to_string()),
            ..Criterion::default()
        };
        let mut ran = Vec::new();
        c.bench_function("engine_dispatch", |b| {
            ran.push("engine_dispatch");
            b.iter(|| 1)
        });
        c.bench_function("sddf_codec", |b| {
            ran.push("sddf_codec");
            b.iter(|| 1)
        });
        let mut g = c.benchmark_group("engine");
        g.bench_function("inner", |b| {
            ran.push("engine/inner");
            b.iter(|| 1)
        });
        g.finish();
        assert_eq!(ran, ["engine_dispatch", "engine/inner"]);
    }

    #[test]
    fn groups_apply_sample_size_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| black_box(42)));
        g.finish();
    }
}

//! Offline stand-in for `bytes` — the subset the SDDF codec in `sio-core`
//! uses. Multi-byte puts/gets are big-endian, matching upstream defaults,
//! so encoded traces are layout-compatible with a build against the real
//! crate.

use std::ops::Deref;

/// Immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Write-side cursor operations (big-endian).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
}

/// Read-side cursor operations (big-endian). Getters panic when the
/// buffer is short, exactly like upstream; callers bounds-check first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Copy `len` bytes into an owned [`Bytes`], advancing the cursor.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let (head, tail) = self.split_at(len);
        let out = Bytes(head.to_vec());
        *self = tail;
        out
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32(0x0304_0506);
        w.put_u64(0x0708_090A_0B0C_0D0E);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x0304_0506);
        assert_eq!(r.get_u64(), 0x0708_090A_0B0C_0D0E);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::with_capacity(2);
        w.put_u16(0x0102);
        assert_eq!(&*w.freeze(), &[1, 2]);
    }
}

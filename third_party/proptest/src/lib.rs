//! Offline stand-in for `proptest` — a deterministic property-testing
//! harness implementing the subset this repository uses:
//!
//! * the [`proptest!`] macro (`name in strategy` argument lists);
//! * [`prop_assert!`] / [`prop_assert_eq!`] early-return assertions;
//! * strategies: integer/float ranges, tuples (2–8), `collection::vec`,
//!   `any::<T>()`, and character-class string patterns (`"[a-z]{0,12}"`);
//! * a per-(test, case) seeded RNG, so failures are reproducible and runs
//!   are identical across machines;
//! * the `PROPTEST_CASES` environment knob (default 64 cases per property).
//!
//! No shrinking: a failing case reports its inputs instead. Because every
//! case is derived from a deterministic seed, re-running the suite
//! reproduces the failure exactly.

pub mod test_runner {
    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case generator (xoshiro256++ seeded from the test
    /// path and the case index through SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Generator for case `case` of the named test.
        pub fn for_case(test_path: &str, case: u64) -> TestRng {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Number of cases to run per property (`PROPTEST_CASES`, default 64).
    pub fn cases_from_env() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Character-class string pattern: `"[a-z]{0,12}"`, `"[abc]{3}"`, or a
    /// plain literal (produced verbatim) when the pattern doesn't parse.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((alphabet, lo, hi)) if !alphabet.is_empty() => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    /// Parse `[class]{m,n}` / `[class]{m}` / `[class]` into
    /// (alphabet, min_len, max_len).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let tail = &rest[close + 1..];
        if tail.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }

    /// Strategy producing any value of an integer-like type.
    #[derive(Debug, Clone, Copy)]
    pub struct FullRange<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_full_range {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_full_range!(u8, u16, u32, u64, usize);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::FullRange;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// The canonical strategy.
        type Strategy;
        /// Build it.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, bool);

    /// The canonical strategy for `T` (`any::<u8>()`, ...).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range`
    /// (half-open, like upstream's size ranges).
    pub trait IntoSizeRange {
        /// (min_len, max_len) inclusive.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy for vectors of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `vec(element, size)` — vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right` (borrowing both operands).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Define property tests. Each `name in strategy` argument is sampled
/// freshly per case from a deterministic per-(test, case) seed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases_from_env();
            for case in 0..cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )*
                let __proptest_inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!("  ", stringify!($arg), " = "));
                        s.push_str(&format!("{:?}\n", &$arg));
                    )*
                    s
                };
                let __proptest_result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}\ninputs:\n{}",
                        case + 1,
                        cases,
                        stringify!($name),
                        e,
                        __proptest_inputs,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(xs in vec(0u8..10, 2..5), ys in vec(0u32..3, 4)) {
            prop_assert!((2..=4).contains(&xs.len()), "len {}", xs.len());
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn tuples_and_any_compose(pairs in vec((0u64..100, any::<u8>()), 0..10)) {
            for (a, _b) in &pairs {
                prop_assert!(*a < 100);
            }
        }

        #[test]
        fn string_patterns_generate_from_class(s in "[a-c]{2,6}") {
            prop_assert!((2..=6).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{}", s);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = vec(0u64..1_000_000, 0..30);
        let a = strat.sample(&mut TestRng::for_case("t", 3));
        let b = strat.sample(&mut TestRng::for_case("t", 3));
        let c = strat.sample(&mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

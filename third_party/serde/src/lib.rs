//! Offline stand-in for `serde`: marker traits plus re-exported no-op
//! derives. See `third_party/README.md` for the rationale.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

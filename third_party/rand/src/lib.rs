//! Offline stand-in for `rand` 0.9 — the subset this repository uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over integer
//! and float ranges. Every generator is explicitly seeded; there is no
//! entropy source, which matches the repository's determinism contract
//! (`tests/determinism.rs`): identical seeds must yield identical streams
//! on every platform and build.
//!
//! The stream differs from upstream `rand::rngs::StdRng` (ChaCha12); all
//! in-repo golden digests were produced with this generator.

use std::ops::{Range, RangeInclusive};

/// Core of a generator: a uniform `u64` stream.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, like upstream.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire reduction
/// without the rejection step: bias is < 2^-32 for every bound used here,
/// and determinism — not statistical perfection — is the contract).
fn below(rng: &mut impl RngCore, bound: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(0.8f64..1.2);
            assert!((0.8..1.2).contains(&f));
            let i = r.random_range(0usize..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut r = StdRng::seed_from_u64(4);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..2000 {
            let f = r.random_range(0.0f64..1.0);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }
}

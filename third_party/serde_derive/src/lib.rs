//! No-op derive macros for the offline `serde` stand-in.
//!
//! The repository derives `Serialize`/`Deserialize` on its config and trace
//! types but never routes them through a serde serializer (the SDDF codec in
//! `sio-core` is hand-written), so erasing the derives is semantically safe.

use proc_macro::TokenStream;

/// Accept and erase `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and erase `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

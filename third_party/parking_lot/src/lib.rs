//! Offline stand-in for `parking_lot` — a [`Mutex`] whose `lock()` returns
//! the guard directly (no poisoning), backed by `std::sync::Mutex`.
//!
//! Poison recovery matters here: the trace buffer in `sio-core` is shared
//! across worker threads of the sweep runner, and a panicking simulation
//! must not wedge every later `Tracer::record` (see
//! `tests/parallel_determinism.rs`).

use std::sync::Mutex as StdMutex;

/// Guard type, re-exported to match the upstream name.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning mutual exclusion.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock. Unlike `std`, a panic in a previous holder does
    /// not poison the lock: the guard is recovered and handed out.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        // A poisoned std mutex would panic here; ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(5u32);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}

//! Quickstart: build a machine, run an instrumented workload, analyze it.
//!
//! This is the 60-second tour of the library: define a tiny parallel
//! workload (4 nodes appending records and reading them back), run it on a
//! simulated Paragon under the PFS model, and compute the same artifacts the
//! paper reports — an operation table, a request-size histogram, a
//! file-lifetime summary, and an access-pattern classification.
//!
//! Run with: `cargo run --release --example quickstart`

use sio::analysis::{OpTable, SizeTable};
use sio::apps::workload::{run_workload, Backend, Workload};
use sio::core::classify::classify_accesses;
use sio::core::reduce::lifetime::LifetimeReducer;
use sio::core::reduce::Reducer;
use sio::paragon::program::{IoRequest, ScriptOp};
use sio::paragon::{MachineConfig, SimDuration};
use sio::pfs::{AccessMode, FileSpec};

fn main() {
    // A small machine: 4 compute nodes, 2 I/O nodes with RAID-3 arrays.
    let machine = MachineConfig::tiny(4, 2);

    // Each node: open the shared file, write 8 × 4 KB records into its own
    // region, barrier, read them back.
    let scripts = (0..4u32)
        .map(|node| {
            let base = node as u64 * 64 * 1024;
            let mut ops = vec![ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code()))];
            for k in 0..8u64 {
                ops.push(ScriptOp::Compute(SimDuration::from_millis(5)));
                ops.push(ScriptOp::Io(IoRequest::seek(0, base + k * 4096)));
                ops.push(ScriptOp::Io(IoRequest::write(0, 4096)));
            }
            ops.push(ScriptOp::Barrier(0));
            let mut read = IoRequest::read(0, 8 * 4096);
            read.offset = Some(base);
            ops.push(ScriptOp::Io(read));
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();

    let workload = Workload {
        label: "quickstart".to_string(),
        files: vec![FileSpec::output("scratch")],
        scripts,
        groups: Vec::new(),
    };

    // Run it twice: once on PFS, once on PPFS with write-behind.
    let pfs = run_workload(&machine, &workload, &Backend::Pfs);
    let ppfs = run_workload(
        &machine,
        &workload,
        &Backend::Ppfs(sio::ppfs::PolicyConfig::escat_tuned()),
    );

    println!("== Operation table (PFS) ==");
    println!("{}", OpTable::from_trace(&pfs.trace).render());
    println!("== Request sizes ==");
    println!("{}", SizeTable::from_trace(&pfs.trace).render());

    // File-lifetime reduction (Pablo's per-file summary).
    let mut lifetimes = LifetimeReducer::new();
    lifetimes.observe_trace(&pfs.trace);
    let f = lifetimes.file(0).expect("file 0 was used");
    println!(
        "file 0: {} ops, {} B written, {} B read, open {:.3}s total",
        f.total_ops(),
        f.bytes_written,
        f.bytes_read,
        f.open_time_ns as f64 / 1e9
    );

    // Classify node 0's write pattern.
    let accesses: Vec<(u64, u64)> = pfs
        .trace
        .events()
        .iter()
        .filter(|e| e.node == 0 && e.op.is_write())
        .map(|e| (e.offset, e.bytes))
        .collect();
    println!("node 0 write pattern: {:?}", classify_accesses(&accesses));

    println!(
        "\nwall time: PFS {:.3}s vs PPFS(write-behind) {:.3}s",
        pfs.wall_secs(),
        ppfs.wall_secs()
    );
    let stats = ppfs.ppfs_stats.unwrap();
    println!(
        "PPFS buffered {} writes and flushed {} aggregated extents",
        stats.writes_buffered, stats.flush_extents
    );
}

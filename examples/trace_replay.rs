//! Trace capture → persist → replay, across configurations.
//!
//! §8 of the paper argues synthetic kernels mispredict real applications
//! and calls for "application skeletons and workload mixes". This example
//! closes the loop: characterize ESCAT, save its trace in the
//! self-describing format, reconstruct a workload from the trace alone, and
//! replay it on a *different* machine configuration and file system —
//! answering "what would this very run have seen with twice the I/O nodes
//! and a caching file system?"
//!
//! Run with: `cargo run --release --example trace_replay`

use sio::analysis::OpTable;
use sio::apps::replay::{workload_from_trace, ReplayOptions};
use sio::apps::workload::{run_workload, Backend};
use sio::apps::EscatParams;
use sio::core::sddf;
use sio::paragon::MachineConfig;
use sio::ppfs::PolicyConfig;

fn main() {
    // 1. Capture: a scaled ESCAT on the standard 16-I/O-node machine.
    let machine = MachineConfig::tiny(16, 8);
    let params = EscatParams::small(16, 10);
    let original = run_workload(&machine, &params.workload(), &Backend::Pfs);
    println!(
        "captured: {} events, wall {:.1}s",
        original.trace.len(),
        original.wall_secs()
    );

    // 2. Persist and reload through the self-describing trace format.
    let dir = std::env::temp_dir().join("sio_replay_example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("escat.sddf");
    sddf::write_file(&original.trace, &path).unwrap();
    let reloaded = sddf::read_file(&path).unwrap();
    println!(
        "persisted + reloaded: {} bytes on disk",
        std::fs::metadata(&path).unwrap().len()
    );

    // 3. Replay faithfully on the same configuration.
    let faithful = run_workload(
        &machine,
        &workload_from_trace(&reloaded, ReplayOptions::default()),
        &Backend::Pfs,
    );
    println!(
        "faithful replay: wall {:.1}s (original {:.1}s)",
        faithful.wall_secs(),
        original.wall_secs()
    );

    // 4. What-if: same trace, twice the I/O nodes, write-behind file system,
    //    think time stripped (pure I/O stress).
    let what_if_machine = MachineConfig::tiny(16, 16);
    let stress = run_workload(
        &what_if_machine,
        &workload_from_trace(
            &reloaded,
            ReplayOptions {
                think_time_scale: 0.0,
                max_gap_secs: 0.0,
            },
        ),
        &Backend::Ppfs(PolicyConfig::escat_tuned()),
    );
    println!(
        "what-if stress replay (2x I/O nodes, PPFS write-behind): wall {:.2}s",
        stress.wall_secs()
    );

    let t_orig = OpTable::from_trace(&original.trace);
    let t_what = OpTable::from_trace(&stress.trace);
    println!(
        "write node time: {:.1}s on PFS -> {:.3}s on the what-if stack",
        t_orig.secs(sio::core::IoOp::Write),
        t_what.secs(sio::core::IoOp::Write)
    );
    let _ = std::fs::remove_file(&path);
}

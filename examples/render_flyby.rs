//! Reproduce the paper's RENDER characterization (§6, Tables 3–4, Figures
//! 6–8): a simulated Mars "virtual flyby" — gateway-prefetched terrain
//! input, broadcast, and a 100-frame render loop.
//!
//! Also demonstrates the frame-rate sensitivity the paper discusses in
//! §6.2: sweep the renderer compute time and watch the achieved frame rate
//! saturate at the I/O path.
//!
//! Run with: `cargo run --release --example render_flyby`

use sio::analysis::experiments;
use sio::analysis::report;
use sio::apps::RenderParams;
use sio::paragon::MachineConfig;

fn main() {
    let machine = MachineConfig::paragon_128();
    let params = RenderParams::paper();

    println!(
        "RENDER terrain rendering: {} nodes (1 gateway + {} renderers), {} frames",
        params.nodes,
        params.nodes - 1,
        params.frames
    );
    let a = experiments::render(&machine, &params);
    println!("\n== Table 3 ==\n{}", a.table3.render());
    println!("== Table 4 ==\n{}", a.table4.render());
    println!(
        "== Paper vs measured ==\n{}",
        report::render_checks(&a.checks)
    );
    println!("== Shape ==\n{}", report::render_shapes(&a.shapes));

    let render_phase = a.out.wall_secs() - a.init_end_secs;
    println!(
        "init {:.0}s, render {:.0}s -> {:.2} frames/s (paper: several seconds per frame)",
        a.init_end_secs,
        render_phase,
        params.frames as f64 / render_phase
    );

    // §6.2: higher frame rates need faster I/O — sweep the compute time to
    // find where the file system becomes the limiter.
    println!("\nframe-rate sweep (renderer compute -> achieved fps):");
    for compute in [2.2, 1.0, 0.5, 0.2, 0.1, 0.05] {
        let mut p = RenderParams::paper();
        p.render_compute = compute;
        p.frames = 30;
        let a = experiments::render(&machine, &p);
        let render_phase = a.out.wall_secs() - a.init_end_secs;
        println!(
            "  compute {:>5.2}s -> {:>5.2} fps",
            compute,
            p.frames as f64 / render_phase
        );
    }
    println!("(fps saturates once frame output dominates: the paper's case for HiPPi streaming)");
}

//! Reproduce the paper's ESCAT characterization (§5, Tables 1–2, Figures
//! 2–5) at full 128-node scale, then rerun the §5.2 PPFS experiment.
//!
//! Run with: `cargo run --release --example escat_characterization`

use sio::analysis::experiments;
use sio::analysis::report;
use sio::apps::EscatParams;
use sio::paragon::MachineConfig;

fn main() {
    let machine = MachineConfig::paragon_128();
    let params = EscatParams::paper();

    println!(
        "ESCAT electron scattering: {} nodes, {} quadrature iterations",
        params.nodes, params.iters
    );
    let a = experiments::escat(&machine, &params);

    println!("\n== Table 1 ==\n{}", a.table1.render());
    println!("== Table 2 ==\n{}", a.table2.render());
    println!(
        "== Paper vs measured ==\n{}",
        report::render_checks(&a.checks)
    );
    println!("== Shape ==\n{}", report::render_shapes(&a.shapes));
    println!(
        "Figure 4 burst spacing: first ≈ {:.0}s, last ≈ {:.0}s over {} bursts",
        a.gaps.first().copied().unwrap_or(0.0),
        a.gaps.last().copied().unwrap_or(0.0),
        a.gaps.len() + 1,
    );

    // The §5.2 experiment: write-behind + aggregation on PPFS.
    let r = experiments::ppfs_ablation(&machine, &params);
    println!(
        "\n§5.2: PFS write+seek {:.0}s -> PPFS {:.1}s ({:.0}x): the Figure-4 \
         burst behavior is effectively eliminated",
        r.pfs_write_seek_secs, r.ppfs_write_seek_secs, r.speedup
    );
}

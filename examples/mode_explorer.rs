//! Explore the six PFS access modes (§3.2) on one workload.
//!
//! Sixteen synchronized nodes append 2 KB records through each mode; the
//! table shows how the coordination semantics translate into cost — the
//! trade-offs behind the design decisions §5.2 and §6.2 discuss (ESCAT
//! choosing M_UNIX + computed seeks; RENDER rejecting M_RECORD).
//!
//! Run with: `cargo run --release --example mode_explorer`

use sio::analysis::experiments::mode_ablation;
use sio::apps::workload::{run_workload, sequential_read_kernel, Backend};
use sio::paragon::MachineConfig;
use sio::pfs::AccessMode;

fn main() {
    let machine = MachineConfig::tiny(16, 4);

    println!("16 synchronized writers, 8 x 2 KB records each:\n");
    println!(
        "{:<10} {:>14} {:>12}   semantics",
        "mode", "write time", "wall"
    );
    for row in mode_ablation(&machine, 16, 8, 2048) {
        let semantics = match row.mode {
            AccessMode::MUnix => "independent ptr; atomic writes serialize",
            AccessMode::MLog => "shared ptr, FCFS token",
            AccessMode::MSync => "shared ptr, node-number order",
            AccessMode::MRecord => "fixed records, node-order layout",
            AccessMode::MGlobal => "collective (read-oriented)",
            AccessMode::MAsync => "independent, no atomicity: cheapest",
        };
        println!(
            "{:<10} {:>13.2}s {:>11.2}s   {}",
            row.mode.name(),
            row.write_secs,
            row.wall_secs,
            semantics
        );
    }

    // M_GLOBAL: all nodes reading the same data becomes ONE physical I/O.
    println!("\nM_GLOBAL collective read (16 nodes each read the same 4 x 1 MB):");
    for mode in [AccessMode::MUnix, AccessMode::MGlobal] {
        let mut w = sequential_read_kernel(4, 1 << 20, mode);
        let script = w.scripts[0].clone();
        w.scripts = (0..16).map(|_| script.clone()).collect();
        let out = run_workload(&machine, &w, &Backend::Pfs);
        println!(
            "  {:<9} wall {:.3}s  ({} logical reads traced)",
            mode.name(),
            out.wall_secs(),
            out.trace.of_op(sio::core::IoOp::Read).count()
        );
    }
    println!("(M_GLOBAL coalesces each wave of sixteen reads into one disk access + broadcast)");
}

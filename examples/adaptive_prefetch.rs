//! The paper's closing direction (§10): adaptive prefetching that learns
//! access patterns. This example runs four access patterns — sequential,
//! strided, random, cyclic — against three PPFS policies and shows that
//! (a) no fixed policy wins everywhere, and (b) the classifier-driven
//! adaptive policy tracks the best fixed policy on each pattern.
//!
//! Run with: `cargo run --release --example adaptive_prefetch`

use sio::analysis::experiments::policy_matrix;
use sio::apps::workload::{run_workload, sequential_read_kernel, Backend};
use sio::paragon::MachineConfig;
use sio::pfs::AccessMode;
use sio::ppfs::PolicyConfig;

fn main() {
    let machine = MachineConfig::tiny(8, 4);

    println!("pattern x policy matrix (total read node time, lower is better):\n");
    let rows = policy_matrix(&machine);
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "pattern", "none", "readahead4", "adaptive4"
    );
    for kernel in ["sequential", "strided", "random", "cyclic"] {
        let t = |p: &str| {
            rows.iter()
                .find(|r| r.kernel == kernel && r.policy == p)
                .map(|r| r.read_secs)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<12} {:>11.3}s {:>11.3}s {:>11.3}s",
            kernel,
            t("none"),
            t("readahead4"),
            t("adaptive4")
        );
    }

    // Peek inside the adaptive prefetcher: what did it infer?
    println!("\nclassifier-driven prefetch on a sequential scan:");
    let w = sequential_read_kernel(32, 65536, AccessMode::MUnix);
    let out = run_workload(&machine, &w, &Backend::Ppfs(PolicyConfig::adaptive(4)));
    let stats = out.ppfs_stats.unwrap();
    println!(
        "  {} reads: {} whole-read cache hits, {} blocks prefetched",
        32, stats.reads_hit, stats.prefetched_blocks
    );
    println!("  (prefetch engages only after the warm-up window classifies the stream)");
}

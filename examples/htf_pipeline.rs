//! Reproduce the paper's Hartree-Fock characterization (§7, Tables 5–6,
//! Figures 9–17): the three-program pipeline psetup → pargos → pscf, plus
//! the §7.2 read-vs-recompute crossover analysis.
//!
//! Run with: `cargo run --release --example htf_pipeline`

use sio::analysis::experiments;
use sio::analysis::report;
use sio::apps::HtfParams;
use sio::core::Trace;
use sio::paragon::MachineConfig;

fn main() {
    let machine = MachineConfig::paragon_128();
    let params = HtfParams::paper();

    println!(
        "HTF Hartree-Fock pipeline: {} nodes, {} integral records of {} B, {} SCF passes",
        params.nodes, params.integral_records, params.integral_bytes, params.scf_passes
    );
    let a = experiments::htf(&machine, &params);

    for (name, table, out) in [
        ("psetup", &a.table5[0], &a.psetup),
        ("pargos", &a.table5[1], &a.pargos),
        ("pscf", &a.table5[2], &a.pscf),
    ] {
        println!(
            "\n== Table 5: {name} (wall {:.0}s) ==\n{}",
            out.wall_secs(),
            table.render()
        );
    }
    println!(
        "== Paper vs measured ==\n{}",
        report::render_checks(&a.checks)
    );
    println!("== Shape ==\n{}", report::render_shapes(&a.shapes));

    // The whole pipeline as one logical trace (the three programs run
    // back-to-back on the machine).
    let pipeline = Trace::concat_pipeline(
        "htf-pipeline",
        &[&a.psetup.trace, &a.pargos.trace, &a.pscf.trace],
    );
    println!(
        "pipeline: {} events over {:.0}s of execution, {:.2} GB moved",
        pipeline.len(),
        pipeline.meta().wall_ns as f64 / 1e9,
        pipeline.data_volume() as f64 / 1e9
    );

    // §7.2: when does reading precomputed integrals beat recomputing them?
    println!("\n§7.2 read-vs-recompute crossover:");
    for r in experiments::htf_crossover_paper() {
        println!(
            "  {:>5.1} MB/s per node: read {:>6.2} us vs recompute {:>5.2} us -> {}",
            r.io_rate_mb_s,
            r.read_us,
            r.compute_us,
            if r.io_preferred { "READ" } else { "recompute" }
        );
    }
    println!("(the paper places the requirement at ~5-10 MB/s per node)");
}

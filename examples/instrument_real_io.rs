//! Characterize *real* file I/O, then replay it on the simulated Paragon.
//!
//! The full Pablo workflow on a modern machine: wrap real `std::fs` I/O in
//! [`TracedFile`], capture a trace, run the paper's analyses on it, and
//! then replay the very same access stream on the simulated 1995 machine to
//! ask: "what would this program's I/O have cost on a Paragon?"
//!
//! Run with: `cargo run --release --example instrument_real_io`

use sio::analysis::characterize::Characterization;
use sio::analysis::{OpTable, SizeTable};
use sio::apps::replay::{workload_from_trace, ReplayOptions};
use sio::apps::workload::{run_workload, Backend};
use sio::core::instrument::{TraceClock, TracedFile};
use sio::core::trace::Tracer;
use sio::paragon::MachineConfig;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("sio_instrument_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("data.bin");

    // --- A real program doing real I/O, instrumented ---
    let tracer = Tracer::new("real-program");
    let clock = TraceClock::new();
    let mut f = TracedFile::create(&path, tracer.clone(), clock.clone(), 0, 0)?;
    // Write 64 x 8 KB records, then read them back strided (every fourth).
    let record = vec![0xABu8; 8192];
    for _ in 0..64 {
        f.write_all(&record)?;
    }
    f.flush_traced()?;
    let mut buf = vec![0u8; 8192];
    for k in 0..16u64 {
        f.seek(SeekFrom::Start(k * 4 * 8192))?;
        f.read_exact(&mut buf)?;
    }
    f.close()?;
    let trace = tracer.finish();
    println!("captured {} real I/O events", trace.len());

    // --- The paper's analyses, applied to the real trace ---
    println!(
        "\n== operation table ==\n{}",
        OpTable::from_trace(&trace).render()
    );
    println!(
        "== request sizes ==\n{}",
        SizeTable::from_trace(&trace).render()
    );
    let c = Characterization::from_trace(&trace);
    println!("== qualitative characterization ==\n{}", c.render());
    for (&(node, file), pattern) in &c.streams {
        println!("stream (node {node}, file {file}): {pattern:?}");
    }

    // --- Replay the real access stream on the simulated 1995 machine ---
    let machine = MachineConfig::tiny(4, 2);
    let replayed = run_workload(
        &machine,
        &workload_from_trace(
            &trace,
            ReplayOptions {
                think_time_scale: 0.0,
                max_gap_secs: 0.0,
            },
        ),
        &Backend::Pfs,
    );
    println!(
        "\nthe same I/O on a simulated 1995 Paragon partition: {:.3}s of wall time \
         ({:.1} KB/s effective)",
        replayed.wall_secs(),
        trace.data_volume() as f64 / 1024.0 / replayed.wall_secs()
    );
    let _ = std::fs::remove_file(&path);
    Ok(())
}

//! Application-mix interference (§8's "workload mixes").
//!
//! Runs ESCAT and the HTF self-consistent-field phase side by side on one
//! machine — disjoint compute nodes, shared metadata server, I/O nodes, and
//! disks — and compares each application's I/O time against its isolated
//! run, at the full CCSF I/O configuration and at a constrained one.
//!
//! Run with: `cargo run --release --example workload_mix`

use sio::analysis::experiments::workload_mix;
use sio::apps::{EscatParams, HtfParams};
use sio::paragon::MachineConfig;

fn main() {
    let machine = MachineConfig::paragon_128();
    println!("mixing ESCAT (128 nodes) with HTF-pscf (128 nodes) on shared I/O nodes...\n");
    let rows = workload_mix(&machine, &EscatParams::paper(), &HtfParams::paper());
    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>10}",
        "app", "I/O nodes", "isolated (s)", "mixed (s)", "inflation"
    );
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>14.1} {:>12.1} {:>9.2}x",
            r.app,
            r.io_nodes,
            r.isolated_io_secs,
            r.mixed_io_secs,
            r.inflation()
        );
    }
    println!(
        "\nAt the CCSF configuration the arrays have headroom; constraining the\n\
         I/O nodes pushes the mix into the contention regime — the paper's point\n\
         that evaluating file systems needs application mixes, not just kernels."
    );
}

#!/usr/bin/env bash
# Measure the simulator's two headline numbers and record them in
# BENCH_sim.json:
#
#   * engine micro-bench throughput (events dispatched per second in the
#     `engine/dispatch_128k_events` bench),
#   * sharded-engine throughput at 1 and 8 shards (`engine/pdes_1shard`,
#     `engine/pdes_8shard` — spin-transition workload whose pre-step phase
#     parallelizes; on a 1-core host the two are expected to tie),
#   * commit throughput at 1 and 8 shards (`engine/commit_1shard`,
#     `engine/commit_8shard` — replay-shaped workload whose closed windows
#     batch-commit per shard lane; on a 1-core host expected to tie),
#   * burst-log drain throughput (frames through the append/GC/replay
#     cycle per second in the `blog/drain_cycle_10k_frames` bench), and
#   * wall time of a full `repro all` at paper scale (perf counters off).
#
# Each is sampled BENCH_REPS times (default 3) and the best sample kept —
# on a shared machine the minimum is the closest estimate of the true cost.
#
#   scripts/bench_sim.sh [--note TEXT]   append an entry to BENCH_sim.json
#   scripts/bench_sim.sh --check         measure, write the would-be file to
#                                        target/BENCH_sim.json, and FAIL if
#                                        engine throughput fell below 80% of
#                                        the last committed entry
#
# Run on an otherwise idle host; BENCH_FLOOR overrides the 0.8 gate fraction
# when checking on shared hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=record
NOTE=""
while [ $# -gt 0 ]; do
    case "$1" in
        --check) MODE=check ;;
        --note)
            NOTE="$2"
            shift
            ;;
        *)
            echo "usage: $0 [--check] [--note TEXT]" >&2
            exit 2
            ;;
    esac
    shift
done

REPS="${BENCH_REPS:-3}"

echo "[bench_sim] building release binaries..." >&2
cargo build --release -q -p sio-analysis -p sio-bench

eps_samples=()
for _ in $(seq "$REPS"); do
    eps=$(cargo bench -q -p sio-bench --bench micro -- engine/dispatch_128k_events 2>/dev/null |
        awk '/engine\/dispatch_128k_events/ {print $(NF - 1)}')
    if [ -z "$eps" ]; then
        echo "[bench_sim] failed to parse engine bench output" >&2
        exit 1
    fi
    echo "[bench_sim] engine sample: $eps elem/s" >&2
    eps_samples+=("$eps")
done

pdes1_samples=()
pdes8_samples=()
for _ in $(seq "$REPS"); do
    out=$(cargo bench -q -p sio-bench --bench micro -- engine/pdes 2>/dev/null)
    p1=$(awk '/engine\/pdes_1shard/ {print $(NF - 1)}' <<<"$out")
    p8=$(awk '/engine\/pdes_8shard/ {print $(NF - 1)}' <<<"$out")
    if [ -z "$p1" ] || [ -z "$p8" ]; then
        echo "[bench_sim] failed to parse pdes bench output" >&2
        exit 1
    fi
    echo "[bench_sim] pdes sample: 1shard $p1 elem/s, 8shard $p8 elem/s" >&2
    pdes1_samples+=("$p1")
    pdes8_samples+=("$p8")
done

commit1_samples=()
commit8_samples=()
for _ in $(seq "$REPS"); do
    out=$(cargo bench -q -p sio-bench --bench micro -- engine/commit 2>/dev/null)
    c1=$(awk '/engine\/commit_1shard/ {print $(NF - 1)}' <<<"$out")
    c8=$(awk '/engine\/commit_8shard/ {print $(NF - 1)}' <<<"$out")
    if [ -z "$c1" ] || [ -z "$c8" ]; then
        echo "[bench_sim] failed to parse commit bench output" >&2
        exit 1
    fi
    echo "[bench_sim] commit sample: 1shard $c1 elem/s, 8shard $c8 elem/s" >&2
    commit1_samples+=("$c1")
    commit8_samples+=("$c8")
done

drain_samples=()
for _ in $(seq "$REPS"); do
    fps=$(cargo bench -q -p sio-bench --bench micro -- blog/drain_cycle_10k_frames 2>/dev/null |
        awk '/blog\/drain_cycle_10k_frames/ {print $(NF - 1)}')
    if [ -z "$fps" ]; then
        echo "[bench_sim] failed to parse drain bench output" >&2
        exit 1
    fi
    echo "[bench_sim] drain sample: $fps frames/s" >&2
    drain_samples+=("$fps")
done

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
ms_samples=()
for _ in $(seq "$REPS"); do
    start=$(date +%s%N)
    ./target/release/repro --out "$out_dir" all >/dev/null 2>&1
    ms=$((($(date +%s%N) - start) / 1000000))
    echo "[bench_sim] repro all sample: ${ms} ms" >&2
    ms_samples+=("$ms")
done

MODE="$MODE" NOTE="$NOTE" \
    EPS_SAMPLES="${eps_samples[*]}" MS_SAMPLES="${ms_samples[*]}" \
    DRAIN_SAMPLES="${drain_samples[*]}" \
    PDES1_SAMPLES="${pdes1_samples[*]}" PDES8_SAMPLES="${pdes8_samples[*]}" \
    COMMIT1_SAMPLES="${commit1_samples[*]}" COMMIT8_SAMPLES="${commit8_samples[*]}" \
    HOST_CPUS="$(nproc 2>/dev/null || echo 1)" \
    REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    DATE="$(date -u +%F)" \
    python3 - <<'EOF'
import json, os, sys

eps = max(int(s) for s in os.environ["EPS_SAMPLES"].split())
ms = min(int(s) for s in os.environ["MS_SAMPLES"].split())
drain = max(int(s) for s in os.environ["DRAIN_SAMPLES"].split())
pdes1 = max(int(s) for s in os.environ["PDES1_SAMPLES"].split())
pdes8 = max(int(s) for s in os.environ["PDES8_SAMPLES"].split())
commit1 = max(int(s) for s in os.environ["COMMIT1_SAMPLES"].split())
commit8 = max(int(s) for s in os.environ["COMMIT8_SAMPLES"].split())
host_cpus = int(os.environ["HOST_CPUS"])
entry = {
    "rev": os.environ["REV"],
    "date": os.environ["DATE"],
    "engine_events_per_sec": eps,
    "engine_ns_per_iter": round(128_000 / eps * 1e9),
    "pdes_1shard_elems_per_sec": pdes1,
    "pdes_8shard_elems_per_sec": pdes8,
    "commit_1shard_elems_per_sec": commit1,
    "commit_8shard_elems_per_sec": commit8,
    "host_cpus": host_cpus,
    "drain_frames_per_sec": drain,
    "repro_all_ms": ms,
}
if os.environ["NOTE"]:
    entry["note"] = os.environ["NOTE"]

path = "BENCH_sim.json"
if os.path.exists(path):
    with open(path) as f:
        doc = json.load(f)
else:
    doc = {
        "bench": "sim",
        "schema": "history[]: best-of-N samples; engine bench is "
        "engine/dispatch_128k_events (128k events/iter); repro_all_ms is "
        "wall time of `repro all` at paper scale, counters disabled",
        "history": [],
    }

mode = os.environ["MODE"]
if mode == "check":
    if not doc["history"]:
        sys.exit("[bench_sim] --check needs a committed baseline entry")
    base = doc["history"][-1]
    frac = float(os.environ.get("BENCH_FLOOR", "0.8"))
    floor = frac * base["engine_events_per_sec"]
    failed = eps < floor
    verdict = "ok" if eps >= floor else "REGRESSION"
    print(
        f"[bench_sim] engine: {eps} elem/s vs baseline "
        f"{base['engine_events_per_sec']} ({base['rev']}); "
        f"floor {floor:.0f}: {verdict}"
    )
    if "pdes_8shard_elems_per_sec" in base:
        pfloor = frac * base["pdes_8shard_elems_per_sec"]
        pverdict = "ok" if pdes8 >= pfloor else "REGRESSION"
        print(
            f"[bench_sim] pdes 8shard: {pdes8} elem/s vs baseline "
            f"{base['pdes_8shard_elems_per_sec']}; floor {pfloor:.0f}: {pverdict}"
        )
        failed = failed or pdes8 < pfloor
    if "commit_8shard_elems_per_sec" in base:
        cfloor = frac * base["commit_8shard_elems_per_sec"]
        cverdict = "ok" if commit8 >= cfloor else "REGRESSION"
        print(
            f"[bench_sim] commit 8shard: {commit8} elem/s vs baseline "
            f"{base['commit_8shard_elems_per_sec']}; floor {cfloor:.0f}: {cverdict}"
        )
        failed = failed or commit8 < cfloor
    ratio = pdes8 / pdes1
    cratio = commit8 / commit1
    if host_cpus >= 8:
        rverdict = "ok" if ratio >= 3.0 else "SCALING REGRESSION"
        print(
            f"[bench_sim] pdes scaling: {ratio:.2f}x at 8 shards "
            f"({host_cpus} cores, need >= 3.0x): {rverdict}"
        )
        failed = failed or ratio < 3.0
        cverdict = "ok" if cratio >= 2.0 else "SCALING REGRESSION"
        print(
            f"[bench_sim] commit scaling: {cratio:.2f}x at 8 shards "
            f"({host_cpus} cores, need >= 2.0x): {cverdict}"
        )
        failed = failed or cratio < 2.0
    else:
        print(
            f"[bench_sim] pdes scaling: {ratio:.2f}x at 8 shards "
            f"({host_cpus} cores — 3x gate needs >= 8, skipped)"
        )
        print(
            f"[bench_sim] commit scaling: {cratio:.2f}x at 8 shards "
            f"({host_cpus} cores — 2x gate needs >= 8, skipped)"
        )
    print(f"[bench_sim] repro all: {ms} ms (baseline {base['repro_all_ms']} ms)")
    if "drain_frames_per_sec" in base:
        print(
            f"[bench_sim] drain: {drain} frames/s "
            f"(baseline {base['drain_frames_per_sec']})"
        )
    os.makedirs("target", exist_ok=True)
    doc["history"].append(entry)
    with open("target/BENCH_sim.json", "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    if failed:
        sys.exit(1)
else:
    doc["history"].append(entry)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[bench_sim] recorded {entry} -> {path}")
EOF

//! X8: chaos campaign engine — seeded randomized fault sweeps across every
//! registered backend, with per-cell invariant checking.
//!
//! The X4 fault suite measures a handful of *canned* scenarios; this module
//! asks the opposite question: does the stack stay well-behaved under
//! schedules nobody hand-picked? A campaign is a seeded sequence of
//! **cells**: each cell pairs one checkpointed application skeleton (ESCAT,
//! RENDER, HTF-pargos) with one backend from [`BackendRegistry::builtin`]
//! and a randomly composed [`FaultSchedule`] drawing from all four fault
//! domains — disk (member failures and rebuilds), node (stalls and
//! recovered crashes), link (mesh congestion), and metadata (replica stalls
//! and full outages). A fraction of cells is additionally crash-cut
//! mid-run, exercising the durable-cut recovery analysis under compound
//! faults.
//!
//! Every cell checks the same invariants, whatever the draw:
//!
//! * **liveness** — the run terminates and the engine watchdog stayed
//!   silent ([`sio_apps::workload::WATCHDOG_DEADLINE`] is armed on every
//!   run); a cell that is not crash-cut must finish *clean* (every node
//!   done, nothing blocked);
//! * **typed faults only** — lost operations surface as typed
//!   [`paragon_sim::IoFault`] completions, counted by the backend
//!   (`FaultStats`, `MetaStats`), and only the fault classes the schedule
//!   can produce appear: a schedule with no metadata outage must report
//!   zero `Unavailable` RPCs, recovered single-node crashes must never
//!   time out (the 600 s request deadline dwarfs every recovery window),
//!   and single-member disk failures must never exhaust redundancy;
//! * **byte conservation** — cells whose faults are *lossless* (link
//!   congestion and metadata trouble move no user data) must accept
//!   exactly the healthy baseline's byte volume on every I/O node;
//! * **durable-cut correctness** — crash-cut cells derive a durable
//!   checkpoint epoch from the surviving trace
//!   ([`crate::recovery::durable_cut`], or the log-aware
//!   [`crate::recovery::durable_cut_logged`] for `blog+*` backends) that
//!   never exceeds the plan's epoch count;
//! * **trace well-formedness** — every surviving trace event validates.
//!
//! Cell specs are generated up front from the campaign seed by
//! [`chaos_specs`] — a pure function, so the campaign is reproducible and
//! worker-count invariant — and the runs fan out over
//! [`runner::par_map_jobs`]. Paper-scale digests live in
//! `results/golden_chaos.txt`.

use crate::recovery::{durable_cut, durable_cut_logged, DurableCut};
use crate::runner;
use paragon_sim::fault::{FaultDomain, FaultSchedule};
use paragon_sim::{MachineConfig, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sio_apps::workload::{run_workload_crashable, Backend, NodeLoad, RunOutput};
use sio_apps::{BackendRegistry, CheckpointedWorkload, EscatParams, HtfParams, RenderParams};
use sio_core::event::{IoOp, NS_PER_SEC};
use sio_core::Trace;

/// The application skeletons a campaign draws from (all three have
/// checkpointed variants, so every cell can be crash-cut).
pub const CHAOS_WORKLOADS: [&str; 3] = ["escat", "render", "htf-pargos"];

/// One randomly drawn fault, with times as *fractions of the healthy
/// wall* — the spec is generated before any simulation runs, and converted
/// to an absolute [`FaultSchedule`] once the cell's baseline wall is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecFault {
    /// One member disk fails; optionally a hot spare starts a rebuild.
    DiskFail {
        /// Failure instant, fraction of the healthy wall.
        frac: f64,
        /// Target I/O node.
        io: u32,
        /// Rebuild start, fraction of the healthy wall (`None` = stays
        /// degraded).
        repair_frac: Option<f64>,
    },
    /// The I/O node stops making progress for `secs`.
    NodeStall {
        /// Stall instant, fraction of the healthy wall.
        frac: f64,
        /// Target I/O node.
        io: u32,
        /// Stall length, seconds.
        secs: f64,
    },
    /// The I/O node crashes and later recovers. The generator always pairs
    /// the recovery: a single crashed node drains through buddy failover,
    /// so a paired crash must finish with zero timeouts.
    NodeCrash {
        /// Crash instant, fraction of the healthy wall.
        frac: f64,
        /// Target I/O node.
        io: u32,
        /// Recovery instant, fraction of the healthy wall.
        recover_frac: f64,
    },
    /// Mesh congestion on one link region, optionally healing later.
    LinkDegrade {
        /// Degradation instant, fraction of the healthy wall.
        frac: f64,
        /// Target link region (one per I/O node's edge links).
        region: u32,
        /// Bandwidth divisor.
        bw_div: f64,
        /// Hop-latency multiplier.
        lat_mult: f64,
        /// Heal instant (`None` = stays congested to the end).
        heal_frac: Option<f64>,
    },
    /// One metadata replica stalls for `secs`; the buddy keeps serving.
    MetaStall {
        /// Stall instant, fraction of the healthy wall.
        frac: f64,
        /// Replica index (0 = primary, 1 = buddy).
        replica: u32,
        /// Stall length, seconds.
        secs: f64,
    },
    /// Both metadata replicas crash — a full outage. RPCs issued during
    /// the outage park with bounded retry and either complete after the
    /// recovery or surface `IoFault::Unavailable`.
    MetaOutage {
        /// Outage instant, fraction of the healthy wall.
        frac: f64,
        /// Recovery instant for both replicas (`None` = outage persists,
        /// every later metadata RPC fails typed).
        recover_frac: Option<f64>,
    },
}

impl SpecFault {
    /// The fault domain this draw strikes.
    pub fn domain(&self) -> FaultDomain {
        match self {
            SpecFault::DiskFail { .. } => FaultDomain::Disk,
            SpecFault::NodeStall { .. } | SpecFault::NodeCrash { .. } => FaultDomain::Node,
            SpecFault::LinkDegrade { .. } => FaultDomain::Link,
            SpecFault::MetaStall { .. } | SpecFault::MetaOutage { .. } => FaultDomain::Meta,
        }
    }

    /// Number of [`paragon_sim::fault::FaultEvent`]s this draw schedules.
    fn event_count(&self) -> u32 {
        match self {
            SpecFault::DiskFail { repair_frac, .. } => 1 + repair_frac.is_some() as u32,
            SpecFault::NodeStall { .. } | SpecFault::MetaStall { .. } => 1,
            SpecFault::NodeCrash { .. } => 2,
            SpecFault::LinkDegrade { heal_frac, .. } => 1 + heal_frac.is_some() as u32,
            SpecFault::MetaOutage { recover_frac, .. } => 2 + 2 * recover_frac.is_some() as u32,
        }
    }

    /// Whether this fault can move or lose user data. Link congestion and
    /// metadata trouble only delay (or typed-fail) operations, so the
    /// per-I/O-node byte accounting must match the healthy baseline
    /// exactly when every fault in a cell is lossless.
    fn lossless(&self) -> bool {
        matches!(
            self,
            SpecFault::LinkDegrade { .. }
                | SpecFault::MetaStall { .. }
                | SpecFault::MetaOutage { .. }
        )
    }
}

/// One cell of a chaos campaign: workload × backend × fault draws
/// (× optional crash cut), all chosen by the campaign seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Cell index within the campaign.
    pub cell: u32,
    /// Workload label (one of [`CHAOS_WORKLOADS`]).
    pub workload: &'static str,
    /// Backend name (one of [`BackendRegistry::builtin`]'s names).
    pub backend: &'static str,
    /// The drawn faults, at most one group per domain.
    pub faults: Vec<SpecFault>,
    /// Crash-cut instant as a fraction of the healthy wall (`None` = the
    /// cell runs to completion).
    pub crash_frac: Option<f64>,
}

impl ChaosSpec {
    /// Distinct domains struck, in [`FaultDomain`] declaration order.
    pub fn domains(&self) -> Vec<FaultDomain> {
        let all = [
            FaultDomain::Disk,
            FaultDomain::Node,
            FaultDomain::Link,
            FaultDomain::Meta,
        ];
        all.into_iter()
            .filter(|d| self.faults.iter().any(|f| f.domain() == *d))
            .collect()
    }

    /// Stable `disk+node+…` label for reports and digests.
    pub fn domains_label(&self) -> String {
        self.domains()
            .iter()
            .map(|d| d.label())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Total scheduled fault events.
    pub fn event_count(&self) -> u32 {
        self.faults.iter().map(|f| f.event_count()).sum()
    }

    /// Whether the cell includes a full metadata outage (the only
    /// generated source of typed `Unavailable` completions).
    pub fn has_meta_outage(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, SpecFault::MetaOutage { .. }))
    }

    /// Whether every fault in the cell is lossless (byte conservation
    /// against the healthy baseline applies).
    pub fn lossless(&self) -> bool {
        self.faults.iter().all(|f| f.lossless())
    }

    /// Convert the fractional spec into an absolute schedule over the
    /// cell's healthy wall time.
    pub fn schedule(&self, healthy_wall: SimTime) -> FaultSchedule {
        let wall = healthy_wall.nanos().max(1) as f64;
        let t = |frac: f64| SimTime((wall * frac) as u64);
        let mut s = FaultSchedule::new();
        for f in &self.faults {
            match *f {
                SpecFault::DiskFail {
                    frac,
                    io,
                    repair_frac,
                } => {
                    s.disk_fail(t(frac), io, 0);
                    if let Some(rf) = repair_frac {
                        s.disk_repair(t(rf), io);
                    }
                }
                SpecFault::NodeStall { frac, io, secs } => {
                    s.node_stall(t(frac), io, SimDuration::from_secs_f64(secs));
                }
                SpecFault::NodeCrash {
                    frac,
                    io,
                    recover_frac,
                } => {
                    s.node_crash(t(frac), io);
                    s.node_recover(t(recover_frac), io);
                }
                SpecFault::LinkDegrade {
                    frac,
                    region,
                    bw_div,
                    lat_mult,
                    heal_frac,
                } => {
                    s.link_degrade(t(frac), region, bw_div, lat_mult);
                    if let Some(hf) = heal_frac {
                        s.link_heal(t(hf), region);
                    }
                }
                SpecFault::MetaStall {
                    frac,
                    replica,
                    secs,
                } => {
                    s.meta_stall(t(frac), replica, SimDuration::from_secs_f64(secs));
                }
                SpecFault::MetaOutage { frac, recover_frac } => {
                    s.meta_crash(t(frac), 0);
                    s.meta_crash(t(frac), 1);
                    if let Some(rf) = recover_frac {
                        s.meta_recover(t(rf), 0);
                        s.meta_recover(t(rf), 1);
                    }
                }
            }
        }
        s
    }
}

/// Generate a campaign's cell specs — a pure function of `(seed, cells,
/// io_nodes)`, independent of worker count and of any simulation result.
///
/// Workloads and backends rotate deterministically so any campaign of at
/// least nine cells covers every registered backend; the fault draws (1–3
/// domains per cell, 1–8 scheduled events) and the crash cut of every
/// fifth cell come from the seeded generator. Constraints the invariant
/// checks rely on are enforced here: at most one node crash per cell
/// (always paired with a recovery, so buddy failover must drain it), at
/// most one member failure per array (redundancy is never exhausted), and
/// stalls far below the request deadline.
pub fn chaos_specs(seed: u64, cells: u32, io_nodes: u32) -> Vec<ChaosSpec> {
    assert!(cells > 0, "chaos campaign needs at least one cell");
    assert!(io_nodes > 0, "chaos campaign needs at least one i/o node");
    let backends = BackendRegistry::builtin().names();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cells)
        .map(|i| {
            let backend = backends[i as usize % backends.len()];
            let workload = CHAOS_WORKLOADS[(i as usize / backends.len()) % CHAOS_WORKLOADS.len()];
            // Draw 1–3 distinct domains via a partial shuffle.
            let mut domains = [
                FaultDomain::Disk,
                FaultDomain::Node,
                FaultDomain::Link,
                FaultDomain::Meta,
            ];
            let k = rng.random_range(1usize..=3);
            for j in 0..k {
                let pick = rng.random_range(j..domains.len());
                domains.swap(j, pick);
            }
            let mut faults = Vec::new();
            for d in &domains[..k] {
                let frac = rng.random_range(0.05..0.70);
                match d {
                    FaultDomain::Disk => {
                        let io = rng.random_range(0..io_nodes);
                        let repair_frac = (rng.random_range(0u32..2) == 0)
                            .then(|| frac + rng.random_range(0.02..0.10));
                        faults.push(SpecFault::DiskFail {
                            frac,
                            io,
                            repair_frac,
                        });
                    }
                    FaultDomain::Node => {
                        let io = rng.random_range(0..io_nodes);
                        if rng.random_range(0u32..2) == 0 {
                            faults.push(SpecFault::NodeStall {
                                frac,
                                io,
                                secs: rng.random_range(0.5..2.0),
                            });
                        } else {
                            faults.push(SpecFault::NodeCrash {
                                frac,
                                io,
                                recover_frac: frac + rng.random_range(0.05..0.25),
                            });
                        }
                    }
                    FaultDomain::Link => {
                        let region = rng.random_range(0..io_nodes);
                        let bw_div = [2.0, 4.0, 8.0][rng.random_range(0usize..3)];
                        let lat_mult = [1.0, 2.0, 4.0][rng.random_range(0usize..3)];
                        let heal_frac = (rng.random_range(0u32..4) != 0)
                            .then(|| frac + rng.random_range(0.05..0.25));
                        faults.push(SpecFault::LinkDegrade {
                            frac,
                            region,
                            bw_div,
                            lat_mult,
                            heal_frac,
                        });
                    }
                    FaultDomain::Meta => {
                        if rng.random_range(0u32..2) == 0 {
                            faults.push(SpecFault::MetaStall {
                                frac,
                                replica: rng.random_range(0u32..2),
                                secs: rng.random_range(0.2..1.5),
                            });
                        } else {
                            let recover_frac = (rng.random_range(0u32..2) == 0)
                                .then(|| frac + rng.random_range(0.02..0.20));
                            faults.push(SpecFault::MetaOutage { frac, recover_frac });
                        }
                    }
                }
            }
            let crash_frac = (i % 5 == 4).then(|| rng.random_range(0.30..0.80));
            ChaosSpec {
                cell: i,
                workload,
                backend,
                faults,
                crash_frac,
            }
        })
        .collect()
}

/// One campaign cell's measured outcome plus its invariant verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Cell index within the campaign.
    pub cell: u32,
    /// Workload label.
    pub workload: String,
    /// Backend name.
    pub backend: String,
    /// Struck domains, `disk+node+…`.
    pub domains: String,
    /// Scheduled fault events.
    pub events: u32,
    /// Crash-cut fraction (0 = ran to completion).
    pub crash_frac: f64,
    /// Healthy (fault-free) wall of this workload × backend, seconds.
    pub healthy_wall_secs: f64,
    /// Faulted wall, seconds.
    pub wall_secs: f64,
    /// `wall / healthy_wall` — degradation cost (crash-cut cells end
    /// early, so theirs is below the cut fraction).
    pub slowdown: f64,
    /// Application-visible operations traced (everything but the internal
    /// `IoWait` / `AsyncRead` traffic).
    pub ops: u64,
    /// Operations that completed with a typed fault.
    pub faulted: u64,
    /// `1 − faulted/ops` — per-cell op availability.
    pub availability: f64,
    /// 99th-percentile application-visible op latency, milliseconds.
    pub p99_ms: f64,
    /// Backoff retries: pump segment re-submissions + parked metadata
    /// RPC probes.
    pub retries: u64,
    /// Failovers: pump buddy failovers + metadata replica failovers.
    pub failovers: u64,
    /// Typed `Unavailable` completions (metadata retry budget exhausted).
    pub unavailable: u64,
    /// Typed `Timeout` completions (must stay zero: every generated
    /// schedule recovers well inside the request deadline).
    pub timeouts: u64,
    /// Durable checkpoint epoch recovered from a crash-cut cell's trace.
    pub durable_epoch: u32,
    /// Epoch boundaries in the full plan.
    pub epochs: u32,
    /// Liveness: no watchdog hang, and a clean finish unless crash-cut.
    pub hang_clean: bool,
    /// Typed-fault accounting matched what the schedule can produce.
    pub typed_ok: bool,
    /// Byte conservation held (vacuously true when not applicable).
    pub conserved: bool,
    /// Durable cut within bounds (vacuously true for uncut cells).
    pub cut_ok: bool,
    /// Every surviving trace event validated.
    pub trace_ok: bool,
}

impl ChaosRow {
    /// All five invariants held for this cell.
    pub fn invariants_ok(&self) -> bool {
        self.hang_clean && self.typed_ok && self.conserved && self.cut_ok && self.trace_ok
    }
}

/// Per-domain aggregate over a campaign: every cell whose schedule struck
/// the domain contributes.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSummary {
    /// Domain label (`disk`/`node`/`link`/`meta`).
    pub domain: &'static str,
    /// Cells that struck this domain.
    pub cells: u32,
    /// Mean per-cell op availability.
    pub availability: f64,
    /// Mean per-cell p99 op latency, milliseconds.
    pub mean_p99_ms: f64,
    /// Typed faults across the domain's cells.
    pub faulted: u64,
    /// Cells whose invariants all held.
    pub cells_ok: u32,
}

/// Aggregate campaign rows per fault domain (a cell striking two domains
/// counts toward both).
pub fn domain_summary(rows: &[ChaosRow]) -> Vec<DomainSummary> {
    [
        FaultDomain::Disk,
        FaultDomain::Node,
        FaultDomain::Link,
        FaultDomain::Meta,
    ]
    .into_iter()
    .map(|d| {
        let label = d.label();
        let hit: Vec<&ChaosRow> = rows
            .iter()
            .filter(|r| r.domains.split('+').any(|l| l == label))
            .collect();
        let n = hit.len().max(1) as f64;
        DomainSummary {
            domain: label,
            cells: hit.len() as u32,
            availability: hit.iter().map(|r| r.availability).sum::<f64>() / n,
            mean_p99_ms: hit.iter().map(|r| r.p99_ms).sum::<f64>() / n,
            faulted: hit.iter().map(|r| r.faulted).sum(),
            cells_ok: hit.iter().filter(|r| r.invariants_ok()).count() as u32,
        }
    })
    .collect()
}

/// Application-visible trace events: everything the program asked for.
/// `IoWait` intervals and `AsyncRead` issues are backend-internal overlap
/// machinery and excluded from op counting and latency percentiles.
fn visible_ops(trace: &Trace) -> impl Iterator<Item = &sio_core::event::IoEvent> {
    trace
        .events()
        .iter()
        .filter(|e| !matches!(e.op, IoOp::IoWait | IoOp::AsyncRead))
}

/// 99th-percentile duration of the application-visible ops, milliseconds.
fn p99_ms(trace: &Trace) -> f64 {
    let mut durs: Vec<u64> = visible_ops(trace).map(|e| e.duration()).collect();
    if durs.is_empty() {
        return 0.0;
    }
    durs.sort_unstable();
    let idx = ((durs.len() as f64 * 0.99).ceil() as usize).clamp(1, durs.len()) - 1;
    durs[idx] as f64 / 1e6
}

/// Typed-fault completions a run reported, summed across the layers
/// without double counting: `MetaStats::unavailable` counts exhausted
/// metadata RPCs on every backend; PFS/CIO mirror those same failures
/// into `FaultStats::unavailable`, so only the *excess* (a genuine
/// data-path rejection) adds on top; timeouts are data-path only.
fn typed_faults(out: &RunOutput) -> (u64, u64, u64) {
    let pf = out.pfs_faults.unwrap_or_default();
    let meta = out.meta.unwrap_or_default();
    let unavailable = meta.unavailable + pf.unavailable.saturating_sub(meta.unavailable);
    (unavailable, pf.timeouts, pf.data_loss_events)
}

/// Run the X8 chaos campaign with [`runner::configured_jobs`] workers.
pub fn chaos_suite(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    seed: u64,
    cells: u32,
) -> Vec<ChaosRow> {
    chaos_suite_jobs(
        machine,
        escat,
        render,
        htf,
        seed,
        cells,
        runner::configured_jobs(),
    )
}

/// [`chaos_suite`] with an explicit worker count. Two fan-out phases —
/// healthy baselines (one per distinct workload × backend in the
/// campaign, deduplicated), then every cell with its schedule scaled to
/// the baseline wall — so rows come back in cell order and are
/// worker-count invariant.
pub fn chaos_suite_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    seed: u64,
    cells: u32,
    jobs: usize,
) -> Vec<ChaosRow> {
    let specs = chaos_specs(seed, cells, machine.io_nodes);

    let build = |wname: &str, interval: u32, epoch: u32| -> CheckpointedWorkload {
        match wname {
            "escat" => escat.workload_checkpointed(interval, epoch),
            "render" => render.workload_checkpointed(interval, epoch),
            "htf-pargos" => htf.pargos_workload_checkpointed(interval, epoch),
            other => panic!("unknown chaos workload '{other}'"),
        }
    };
    let units_of = |wname: &str| -> Vec<u32> {
        match wname {
            "escat" => vec![escat.iters; escat.nodes as usize],
            "render" => vec![render.frames],
            "htf-pargos" => (0..htf.nodes).map(|n| htf.records_of(n)).collect(),
            other => panic!("unknown chaos workload '{other}'"),
        }
    };
    let interval_of = |wname: &str| -> u32 { units_of(wname)[0].div_ceil(3).max(1) };
    let backend_of = |bname: &str| -> Backend { Backend::parse(bname).expect("registered name") };

    // Phase 1: healthy baselines, one per distinct (workload, backend).
    let mut combos: Vec<(&str, &str)> = specs.iter().map(|s| (s.workload, s.backend)).collect();
    combos.sort_unstable();
    combos.dedup();
    let baselines: Vec<(SimTime, Vec<NodeLoad>)> =
        runner::par_map_jobs(jobs, combos.clone(), |_, (w, b)| {
            let cw = build(w, interval_of(w), 0);
            let out = run_workload_crashable(
                machine,
                &cw.workload,
                &backend_of(b),
                None,
                None,
                &cw.plan.covered,
            );
            (out.report.wall, out.node_loads)
        });
    let base_of = |w: &str, b: &str| -> &(SimTime, Vec<NodeLoad>) {
        &baselines[combos.iter().position(|c| *c == (w, b)).unwrap()]
    };

    // Phase 2: the cells.
    runner::par_map_jobs(jobs, specs, |_, spec| {
        let (healthy_wall, healthy_loads) = base_of(spec.workload, spec.backend);
        let schedule = spec.schedule(*healthy_wall);
        let stop_at = spec
            .crash_frac
            .map(|f| SimTime((healthy_wall.nanos() as f64 * f) as u64));
        let cw = build(spec.workload, interval_of(spec.workload), 0);
        let out = run_workload_crashable(
            machine,
            &cw.workload,
            &backend_of(spec.backend),
            Some(&schedule),
            stop_at,
            &cw.plan.covered,
        );

        let (unavailable, timeouts, data_loss) = typed_faults(&out);
        let faulted = unavailable + timeouts + data_loss;
        let ops = visible_ops(&out.trace).count() as u64;
        let pf = out.pfs_faults.unwrap_or_default();
        let meta = out.meta.unwrap_or_default();

        // Invariant: liveness — the watchdog stayed silent, and an uncut
        // cell finished clean.
        let hang_clean =
            out.report.hang.is_none() && (spec.crash_frac.is_some() || out.report.clean());
        // Invariant: only the fault classes the schedule can produce.
        let typed_ok =
            timeouts == 0 && data_loss == 0 && (spec.has_meta_outage() || unavailable == 0);
        // Invariant: lossless faults conserve per-I/O-node byte volume.
        let conserved = if spec.lossless() && spec.crash_frac.is_none() {
            out.node_loads.len() == healthy_loads.len()
                && out
                    .node_loads
                    .iter()
                    .zip(healthy_loads.iter())
                    .all(|(a, b)| a.read_bytes == b.read_bytes && a.write_bytes == b.write_bytes)
        } else {
            true
        };
        // Invariant: crash-cut cells recover a durable epoch within the
        // plan, through the backend-appropriate cut analysis.
        let (durable_epoch, cut_ok) = match stop_at {
            Some(t) => {
                let units = units_of(spec.workload);
                let cut: DurableCut = if spec.backend.starts_with("blog+") {
                    durable_cut_logged(&out.trace, &cw.plan, &units, t)
                } else {
                    durable_cut(&out.trace, &cw.plan, &units, t)
                };
                (cut.epoch, cut.epoch <= cw.plan.epochs)
            }
            None => (0, true),
        };
        let trace_ok = out.trace.validate().is_ok();

        let healthy_secs = healthy_wall.nanos() as f64 / NS_PER_SEC;
        let wall_secs = out.report.wall.nanos() as f64 / NS_PER_SEC;
        ChaosRow {
            cell: spec.cell,
            workload: spec.workload.to_string(),
            backend: spec.backend.to_string(),
            domains: spec.domains_label(),
            events: spec.event_count(),
            crash_frac: spec.crash_frac.unwrap_or(0.0),
            healthy_wall_secs: healthy_secs,
            wall_secs,
            slowdown: wall_secs / healthy_secs.max(f64::EPSILON),
            ops,
            faulted,
            availability: 1.0 - faulted as f64 / ops.max(1) as f64,
            p99_ms: p99_ms(&out.trace),
            retries: pf.retries + meta.retries,
            failovers: pf.failovers + meta.failovers,
            unavailable,
            timeouts,
            durable_epoch,
            epochs: cw.plan.epochs,
            hang_clean,
            typed_ok,
            conserved,
            cut_ok,
            trace_ok,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn small_suite(seed: u64, cells: u32, jobs: usize) -> Vec<ChaosRow> {
        chaos_suite_jobs(
            &tiny(),
            &EscatParams::small(4, 6),
            &RenderParams::small(4, 3),
            &HtfParams::small(4),
            seed,
            cells,
            jobs,
        )
    }

    #[test]
    fn specs_are_seed_deterministic_and_in_bounds() {
        let a = chaos_specs(7, 40, 4);
        let b = chaos_specs(7, 40, 4);
        assert_eq!(a, b, "same seed must give the same campaign");
        assert_ne!(a, chaos_specs(8, 40, 4), "seed must matter");
        let backends = BackendRegistry::builtin().names();
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.cell as usize, i);
            assert_eq!(s.backend, backends[i % backends.len()]);
            assert!(CHAOS_WORKLOADS.contains(&s.workload));
            let n = s.event_count();
            assert!((1..=8).contains(&n), "cell {i}: {n} events");
            assert!(!s.domains().is_empty() && s.domains().len() <= 3);
            // At most one draw per domain keeps the invariants decidable:
            // a single recovered crash must drain, a single member failure
            // must never exhaust redundancy.
            let doms = s.domains();
            assert_eq!(doms.len(), s.faults.len(), "one draw per domain");
            if let Some(f) = s.crash_frac {
                assert!((0.30..0.80).contains(&f));
            }
            assert_eq!(s.crash_frac.is_some(), i % 5 == 4);
        }
        // Nine-plus cells cover the whole registry.
        let seen: std::collections::BTreeSet<&str> = a.iter().map(|s| s.backend).collect();
        assert_eq!(seen.len(), backends.len(), "registry not covered");
    }

    #[test]
    fn small_campaign_holds_every_invariant() {
        let rows = small_suite(42, 12, 2);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.invariants_ok(),
                "cell {} ({} on {}, {}): hang_clean={} typed_ok={} conserved={} cut_ok={} trace_ok={}",
                r.cell,
                r.workload,
                r.backend,
                r.domains,
                r.hang_clean,
                r.typed_ok,
                r.conserved,
                r.cut_ok,
                r.trace_ok
            );
            assert!(r.ops > 0, "cell {}: empty trace", r.cell);
            assert!(
                (0.0..=1.0).contains(&r.availability),
                "cell {}: availability {}",
                r.cell,
                r.availability
            );
            assert!(r.p99_ms >= 0.0);
        }
        // The campaign struck at least one domain somewhere, and the
        // domain summary partitions the cells it saw.
        let summary = domain_summary(&rows);
        assert_eq!(summary.len(), 4);
        assert!(summary.iter().any(|s| s.cells > 0));
        for s in &summary {
            assert_eq!(s.cells_ok, s.cells, "{}: invariant violations", s.domain);
        }
    }

    #[test]
    fn suite_rows_are_worker_count_invariant() {
        assert_eq!(small_suite(42, 10, 1), small_suite(42, 10, 8));
    }
}

//! X7: burst-buffer checkpoint sweep — the host-side log-structured tier
//! (`sio-blog`) in front of each shipped backend, on the checkpointed
//! application workloads.
//!
//! Per cell (workload × inner backend × log size × drain bandwidth ×
//! crash instant) the suite measures what the tier buys and what it
//! costs:
//!
//! * **checkpoint-commit latency** — mean issue → durable interval of a
//!   checkpoint commit (the slot `Write` through its paired `Sync`
//!   `Flush`), on the log tier vs the direct backend. Commits on the tier
//!   land at local-log speed; the drain moves the data later.
//! * **time-to-recovery** — log replay (undrained frames pumped into the
//!   backend at the drain bandwidth) plus the resumed run from the
//!   log-aware durable cut ([`crate::recovery::durable_cut_logged`]), vs the
//!   direct backend's resume from its sync-paired cut.
//! * **lost work** — covered-file bytes written after each cut.
//!
//! Everything is a pure function of the configuration; rows come back in
//! canonical case order whatever the worker count, and the paper-scale
//! digests live in `results/golden_blog.txt`.

use crate::recovery::{commit_events, durable_cut, durable_cut_logged, lost_work_bytes};
use crate::runner;
use paragon_sim::{MachineConfig, SimTime};
use sio_apps::checkpoint::CheckpointPlan;
use sio_apps::workload::{run_workload_crashable, Backend};
use sio_apps::{BlogParams, CheckpointedWorkload, EscatParams, HtfParams, RenderParams};
use sio_core::event::NS_PER_SEC;
use sio_core::Trace;

/// One cell of the X7 burst-buffer sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BlogRow {
    /// Workload label (`escat`, `render`, `htf-pargos`).
    pub workload: String,
    /// Inner backend under the log tier (`pfs`, `ppfs`, `cio`).
    pub inner: String,
    /// Per-node log capacity, MB.
    pub log_mb: u64,
    /// Drain bandwidth, MB/s.
    pub drain_mbps: f64,
    /// Crash instant as a fraction of the healthy checkpointed wall.
    pub crash_frac: f64,
    /// Mean checkpoint-commit latency on the log tier, milliseconds.
    pub commit_ms: f64,
    /// Mean checkpoint-commit latency on the direct backend, milliseconds.
    pub direct_commit_ms: f64,
    /// `direct_commit_ms / commit_ms` — the headline latency drop.
    pub commit_speedup: f64,
    /// Healthy checkpointed wall on the log tier, seconds.
    pub wall_secs: f64,
    /// Healthy checkpointed wall on the direct backend, seconds.
    pub direct_wall_secs: f64,
    /// Durable epoch recovered from the crashed log-tier run.
    pub durable_epoch: u32,
    /// Durable epoch recovered from the crashed direct run.
    pub direct_epoch: u32,
    /// Epoch boundaries in a full run.
    pub epochs: u32,
    /// Framed bytes still undrained at the crash, MB (the replay exposure).
    pub pending_mb: f64,
    /// Log-replay time: undrained frames pumped at the drain bandwidth, s.
    pub replay_secs: f64,
    /// Time-to-recovery on the log tier: replay + resumed wall, seconds.
    pub ttr_secs: f64,
    /// Time-to-recovery on the direct backend: resumed wall, seconds.
    pub direct_ttr_secs: f64,
    /// Covered-file bytes written after the log-aware cut, MB.
    pub lost_mb: f64,
    /// Covered-file bytes written after the direct cut, MB.
    pub direct_lost_mb: f64,
    /// Highest framed occupancy any node's log reached, MB.
    pub occ_peak_mb: f64,
    /// Time appends spent parked on a full log, seconds.
    pub stall_secs: f64,
}

const WORKLOADS: [&str; 3] = ["escat", "render", "htf-pargos"];
const INNERS: [&str; 3] = ["pfs", "ppfs", "cio"];
const BASE_LOG_MB: u64 = 64;
const BASE_DRAIN_MBPS: f64 = 8.0;
const BASE_CRASH: f64 = 0.5;

/// The X7 cell grid in canonical order: every workload × inner at the base
/// point, then the escat×pfs axis sweeps — log size, drain bandwidth, and
/// crash instant each varied alone.
fn blog_cases() -> Vec<(&'static str, &'static str, u64, f64, f64)> {
    let mut cases = Vec::new();
    for w in WORKLOADS {
        for i in INNERS {
            cases.push((w, i, BASE_LOG_MB, BASE_DRAIN_MBPS, BASE_CRASH));
        }
    }
    for log_mb in [16, 256] {
        cases.push(("escat", "pfs", log_mb, BASE_DRAIN_MBPS, BASE_CRASH));
    }
    for drain in [4.0, 16.0] {
        cases.push(("escat", "pfs", BASE_LOG_MB, drain, BASE_CRASH));
    }
    for crash in [0.3, 0.7] {
        cases.push(("escat", "pfs", BASE_LOG_MB, BASE_DRAIN_MBPS, crash));
    }
    cases
}

/// Mean issue → durable latency of the checkpoint commits in a healthy
/// run's trace, nanoseconds: per writer, the `j`-th slot `Write`'s start
/// through the `j`-th commit `Flush`'s end.
fn mean_commit_ns(trace: &Trace, plan: &CheckpointPlan) -> f64 {
    let (mut sum, mut n) = (0u128, 0u64);
    for node in 0..plan.nodes {
        let (writes, syncs) = commit_events(trace, plan, node);
        for (w, s) in writes.iter().zip(syncs.iter()) {
            sum += (s.end - w.start) as u128;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// Run the X7 burst-buffer sweep with [`runner::configured_jobs`] workers.
pub fn blog_suite(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
) -> Vec<BlogRow> {
    blog_suite_jobs(machine, escat, render, htf, runner::configured_jobs())
}

/// [`blog_suite_jobs`] with pinned sweep axes: when a log size or drain
/// bandwidth override is given (`repro blog --log-mb/--drain-mbps`), the
/// grid collapses to the workload × inner cells at that point — sweeping
/// an axis the user just pinned would be noise.
pub fn blog_suite_overrides_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    log_mb: Option<u64>,
    drain_mbps: Option<f64>,
    jobs: usize,
) -> Vec<BlogRow> {
    let cases = if log_mb.is_none() && drain_mbps.is_none() {
        blog_cases()
    } else {
        let (l, d) = (
            log_mb.unwrap_or(BASE_LOG_MB),
            drain_mbps.unwrap_or(BASE_DRAIN_MBPS),
        );
        let mut cases = Vec::new();
        for w in WORKLOADS {
            for i in INNERS {
                cases.push((w, i, l, d, BASE_CRASH));
            }
        }
        cases
    };
    blog_suite_cases_jobs(machine, escat, render, htf, cases, jobs)
}

/// [`blog_suite`] with an explicit worker count. Three fan-out phases —
/// healthy walls on the tier, healthy walls direct, then the crash /
/// replay / resume cells — with shared baselines deduplicated, so rows are
/// worker-count invariant and come back in canonical case order.
pub fn blog_suite_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    jobs: usize,
) -> Vec<BlogRow> {
    blog_suite_cases_jobs(machine, escat, render, htf, blog_cases(), jobs)
}

fn blog_suite_cases_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    cases: Vec<(&'static str, &'static str, u64, f64, f64)>,
    jobs: usize,
) -> Vec<BlogRow> {
    let build = |wname: &str, interval: u32, epoch: u32| -> CheckpointedWorkload {
        match wname {
            "escat" => escat.workload_checkpointed(interval, epoch),
            "render" => render.workload_checkpointed(interval, epoch),
            "htf-pargos" => htf.pargos_workload_checkpointed(interval, epoch),
            other => panic!("unknown blog workload '{other}'"),
        }
    };
    let units_of = |wname: &str| -> Vec<u32> {
        match wname {
            "escat" => vec![escat.iters; escat.nodes as usize],
            "render" => vec![render.frames],
            "htf-pargos" => (0..htf.nodes).map(|n| htf.records_of(n)).collect(),
            other => panic!("unknown blog workload '{other}'"),
        }
    };
    let interval_of = |wname: &str| -> u32 { units_of(wname)[0].div_ceil(3).max(1) };
    let direct_of = |iname: &str| -> Backend { Backend::parse(iname).expect("known inner") };
    let blog_of = |iname: &str, log_mb: u64, drain_mbps: f64| -> Backend {
        Backend::Blog(
            Box::new(direct_of(iname)),
            BlogParams::new(log_mb, drain_mbps),
        )
    };
    let run_healthy = |wname: &str, backend: &Backend| {
        let cw = build(wname, interval_of(wname), 0);
        run_workload_crashable(machine, &cw.workload, backend, None, None, &cw.plan.covered)
    };

    // Phase 1: healthy checkpointed walls + commit latency on the log
    // tier, one per distinct (workload, inner, log, drain) configuration.
    let mut blog_cfgs: Vec<(&str, &str, u64, f64)> =
        cases.iter().map(|&(w, i, l, d, _)| (w, i, l, d)).collect();
    blog_cfgs.dedup();
    let blog_healthy = runner::par_map_jobs(jobs, blog_cfgs.clone(), |_, (w, i, l, d)| {
        let out = run_healthy(w, &blog_of(i, l, d));
        let plan = build(w, interval_of(w), 0).plan;
        (out.report.wall, mean_commit_ns(&out.trace, &plan))
    });
    let blog_base = |w: &str, i: &str, l: u64, d: f64| -> (SimTime, f64) {
        blog_healthy[blog_cfgs.iter().position(|c| *c == (w, i, l, d)).unwrap()]
    };

    // Phase 2: the direct baselines, one per distinct (workload, inner).
    let mut direct_cfgs: Vec<(&str, &str)> = cases.iter().map(|&(w, i, ..)| (w, i)).collect();
    direct_cfgs.sort_unstable();
    direct_cfgs.dedup();
    let direct_healthy = runner::par_map_jobs(jobs, direct_cfgs.clone(), |_, (w, i)| {
        let out = run_healthy(w, &direct_of(i));
        let plan = build(w, interval_of(w), 0).plan;
        (out.report.wall, mean_commit_ns(&out.trace, &plan))
    });
    let direct_base = |w: &str, i: &str| -> (SimTime, f64) {
        direct_healthy[direct_cfgs.iter().position(|c| *c == (w, i)).unwrap()]
    };

    // Phase 3: crash each cell on both tiers, derive both cuts, resume.
    runner::par_map_jobs(
        jobs,
        cases,
        |_, (wname, iname, log_mb, drain_mbps, frac)| {
            let iv = interval_of(wname);
            let units = units_of(wname);
            let blog_backend = blog_of(iname, log_mb, drain_mbps);
            let direct_backend = direct_of(iname);
            let (blog_wall, blog_commit_ns) = blog_base(wname, iname, log_mb, drain_mbps);
            let (direct_wall, direct_commit_ns) = direct_base(wname, iname);

            let cw = build(wname, iv, 0);
            let t_crash_b = SimTime((blog_wall.nanos() as f64 * frac) as u64);
            let crashed_b = run_workload_crashable(
                machine,
                &cw.workload,
                &blog_backend,
                None,
                Some(t_crash_b),
                &cw.plan.covered,
            );
            let cut_b = durable_cut_logged(&crashed_b.trace, &cw.plan, &units, t_crash_b);
            let lost_b = lost_work_bytes(&crashed_b.trace, &cw.plan, &units, cut_b.epoch);
            let stats = crashed_b.blog.expect("log tier ran");
            let replay_secs = stats.pending_bytes as f64 / (drain_mbps * 1.0e6);
            let resumed_b = build(wname, iv, cut_b.epoch);
            let out_b = run_workload_crashable(
                machine,
                &resumed_b.workload,
                &blog_backend,
                None,
                None,
                &resumed_b.plan.covered,
            );

            let t_crash_d = SimTime((direct_wall.nanos() as f64 * frac) as u64);
            let crashed_d = run_workload_crashable(
                machine,
                &cw.workload,
                &direct_backend,
                None,
                Some(t_crash_d),
                &cw.plan.covered,
            );
            let cut_d = durable_cut(&crashed_d.trace, &cw.plan, &units, t_crash_d);
            let lost_d = lost_work_bytes(&crashed_d.trace, &cw.plan, &units, cut_d.epoch);
            let resumed_d = build(wname, iv, cut_d.epoch);
            let out_d = run_workload_crashable(
                machine,
                &resumed_d.workload,
                &direct_backend,
                None,
                None,
                &resumed_d.plan.covered,
            );

            let commit_ms = blog_commit_ns / 1e6;
            let direct_commit_ms = direct_commit_ns / 1e6;
            BlogRow {
                workload: wname.to_string(),
                inner: iname.to_string(),
                log_mb,
                drain_mbps,
                crash_frac: frac,
                commit_ms,
                direct_commit_ms,
                commit_speedup: direct_commit_ms / commit_ms.max(f64::EPSILON),
                wall_secs: blog_wall.nanos() as f64 / NS_PER_SEC,
                direct_wall_secs: direct_wall.nanos() as f64 / NS_PER_SEC,
                durable_epoch: cut_b.epoch,
                direct_epoch: cut_d.epoch,
                epochs: cw.plan.epochs,
                pending_mb: stats.pending_bytes as f64 / 1e6,
                replay_secs,
                ttr_secs: replay_secs + out_b.report.wall.nanos() as f64 / NS_PER_SEC,
                direct_ttr_secs: out_d.report.wall.nanos() as f64 / NS_PER_SEC,
                lost_mb: lost_b as f64 / 1e6,
                direct_lost_mb: lost_d as f64 / 1e6,
                occ_peak_mb: stats.occupancy_peak as f64 / 1e6,
                stall_secs: stats.stall_ns as f64 / NS_PER_SEC,
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn small_suite(jobs: usize) -> Vec<BlogRow> {
        blog_suite_jobs(
            &tiny(),
            &EscatParams::small(4, 6),
            &RenderParams::small(4, 3),
            &HtfParams::small(4),
            jobs,
        )
    }

    #[test]
    fn suite_headline_claims_hold_at_small_scale() {
        let rows = small_suite(2);
        assert_eq!(rows.len(), 15, "grid shape changed");
        for r in &rows {
            // The tier's contract: commits land at local-log speed — at
            // least 4x below the direct software path — while recovery
            // stays within 2x of the direct baseline.
            assert!(
                r.commit_speedup >= 4.0,
                "{}+{}: commit speedup only {:.1}x ({:.3} vs {:.3} ms)",
                r.workload,
                r.inner,
                r.commit_speedup,
                r.direct_commit_ms,
                r.commit_ms
            );
            assert!(
                r.ttr_secs <= 2.0 * r.direct_ttr_secs,
                "{}+{}: TTR {:.1}s vs direct {:.1}s",
                r.workload,
                r.inner,
                r.ttr_secs,
                r.direct_ttr_secs
            );
            assert!(r.epochs > 0);
            assert!(r.durable_epoch <= r.epochs && r.direct_epoch <= r.epochs);
        }
    }

    #[test]
    fn suite_rows_are_worker_count_invariant() {
        assert_eq!(small_suite(1), small_suite(8));
    }
}

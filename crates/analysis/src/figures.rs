//! Figure regeneration (Figures 2–17).
//!
//! Every figure in the paper's evaluation is one of two plot families, both
//! extracted straight from a trace:
//!
//! * **operation timelines** (Figures 2–4, 6–7, 9–14): request start time
//!   vs request size, one point per read or write;
//! * **file-access timelines** (Figures 5, 8, 15–17): request start time vs
//!   file id, crosses for writes and diamonds for reads.
//!
//! [`FigureSet`] names each figure with the paper's number and writes one
//! CSV per figure plus a terminal-friendly ASCII preview.

use sio_core::event::IoOp;
use sio_core::reduce::region::RegionReducer;
use sio_core::reduce::window::WindowReducer;
use sio_core::reduce::Reducer;
use sio_core::timeline::{self, ascii_scatter, cluster_gaps, cluster_times, AccessMark, OpPoint};
use sio_core::trace::Trace;
use std::io::Write as _;
use std::path::Path;

/// One regenerated figure.
#[derive(Debug, Clone)]
pub enum Figure {
    /// (time, size) scatter of one operation family.
    OpTimeline {
        /// Paper figure number/designation, e.g. "fig02-escat-reads".
        name: String,
        /// Points (time in seconds, size in bytes, node).
        points: Vec<OpPoint>,
    },
    /// (time, file) access marks.
    FileTimeline {
        /// Paper figure designation.
        name: String,
        /// Marks (time, file, read/write).
        marks: Vec<AccessMark>,
    },
}

impl Figure {
    /// Figure name.
    pub fn name(&self) -> &str {
        match self {
            Figure::OpTimeline { name, .. } | Figure::FileTimeline { name, .. } => name,
        }
    }

    /// CSV body for the figure.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        match self {
            Figure::OpTimeline { points, .. } => {
                out.push_str("t_secs,bytes,node\n");
                for p in points {
                    out.push_str(&format!("{:.6},{},{}\n", p.t_secs, p.bytes, p.node));
                }
            }
            Figure::FileTimeline { marks, .. } => {
                out.push_str("t_secs,file,op\n");
                for m in marks {
                    out.push_str(&format!(
                        "{:.6},{},{}\n",
                        m.t_secs,
                        m.file,
                        if m.write { "W" } else { "R" }
                    ));
                }
            }
        }
        out
    }

    /// ASCII preview (op timelines only; file timelines render a summary).
    pub fn to_ascii(&self) -> String {
        match self {
            Figure::OpTimeline { points, name } => {
                format!("{name}\n{}", ascii_scatter(points, 72, 14))
            }
            Figure::FileTimeline { marks, name } => {
                let mut files: Vec<u32> = marks.iter().map(|m| m.file).collect();
                files.sort_unstable();
                files.dedup();
                format!("{name}: {} accesses over files {:?}\n", marks.len(), files)
            }
        }
    }

    /// Write the CSV to `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.name())))?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Build a read-operation timeline figure (sync + async reads).
pub fn read_fig(name: &str, trace: &Trace) -> Figure {
    Figure::OpTimeline {
        name: name.to_string(),
        points: timeline::read_timeline(trace),
    }
}

/// Build a read timeline restricted to `[from, to)` seconds (Figure 3's
/// initial-phase detail).
pub fn read_detail_fig(name: &str, trace: &Trace, from: f64, to: f64) -> Figure {
    Figure::OpTimeline {
        name: name.to_string(),
        points: timeline::window(&timeline::read_timeline(trace), from, to),
    }
}

/// Build a write-operation timeline figure.
pub fn write_fig(name: &str, trace: &Trace) -> Figure {
    Figure::OpTimeline {
        name: name.to_string(),
        points: timeline::op_timeline(trace, IoOp::Write),
    }
}

/// Build a file-access timeline figure.
pub fn file_fig(name: &str, trace: &Trace) -> Figure {
    Figure::FileTimeline {
        name: name.to_string(),
        marks: timeline::file_access_timeline(trace),
    }
}

/// Burst analysis of a write timeline: cluster start times and the gaps
/// between them (the Figure 4 observation: spacing shrinks from ~160 s to
/// roughly half across the quadrature phase).
pub fn write_burst_gaps(trace: &Trace, quiet_gap_secs: f64) -> (Vec<f64>, Vec<f64>) {
    let writes: Vec<_> = trace.of_op(IoOp::Write).copied().collect();
    let clusters = cluster_times(&writes, quiet_gap_secs);
    let gaps = cluster_gaps(&clusters);
    (clusters, gaps)
}

/// One row of a time-window intensity series (Pablo's time-window
/// reduction, rendered as a figure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRow {
    /// Window start, seconds.
    pub t_secs: f64,
    /// Bytes read in the window (sync + async).
    pub read_bytes: u64,
    /// Bytes written in the window.
    pub write_bytes: u64,
    /// Operations of any kind in the window.
    pub ops: u64,
}

/// Reduce a trace into a time-window intensity series with the given window
/// width (seconds) — the data behind burst plots like Figure 4, produced by
/// the same reduction Pablo ran in real time.
pub fn window_series(trace: &Trace, width_secs: f64) -> Vec<WindowRow> {
    let width_ns = (width_secs * 1.0e9).max(1.0) as u64;
    let mut reducer = WindowReducer::new(width_ns);
    reducer.observe_trace(trace);
    reducer
        .windows()
        .iter()
        .enumerate()
        .map(|(i, w)| WindowRow {
            t_secs: i as f64 * width_secs,
            read_bytes: w.bytes_read(),
            write_bytes: w.bytes_written(),
            ops: w.total_ops(),
        })
        .collect()
}

/// Write a window series as CSV into `dir/<name>.csv`.
pub fn write_window_csv(rows: &[WindowRow], dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "t_secs,read_bytes,write_bytes,ops")?;
    for r in rows {
        writeln!(
            f,
            "{:.3},{},{},{}",
            r.t_secs, r.read_bytes, r.write_bytes, r.ops
        )?;
    }
    Ok(())
}

/// One row of a file-region spatial series (Pablo's file-region reduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionRow {
    /// Region index within the file.
    pub region: u64,
    /// Bytes read from the region.
    pub read_bytes: u64,
    /// Bytes written to the region.
    pub write_bytes: u64,
    /// Distinct nodes that touched the region.
    pub nodes: u64,
}

/// Reduce one file of a trace into a spatial region series (region size in
/// bytes; the PFS stripe unit is the natural choice). Exposes the spatial
/// structure the paper discusses: ESCAT's disjoint per-node staging
/// regions, HTF's whole-file scans.
pub fn region_series(trace: &Trace, file: u32, region_bytes: u64) -> Vec<RegionRow> {
    let mut reducer = RegionReducer::new(region_bytes);
    reducer.observe_trace(trace);
    reducer
        .file_regions(file)
        .map(|(region, agg)| RegionRow {
            region,
            read_bytes: agg.reads.bytes,
            write_bytes: agg.writes.bytes,
            nodes: agg.node_count() as u64,
        })
        .collect()
}

/// Write a region series as CSV into `dir/<name>.csv`.
pub fn write_region_csv(rows: &[RegionRow], dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "region,read_bytes,write_bytes,nodes")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{}",
            r.region, r.read_bytes, r.write_bytes, r.nodes
        )?;
    }
    Ok(())
}

/// All figures for one application trace, with paper numbering.
pub struct FigureSet {
    /// The figures, in paper order.
    pub figures: Vec<Figure>,
}

impl FigureSet {
    /// ESCAT: Figures 2 (reads), 3 (read detail), 4 (writes), 5 (files).
    pub fn escat(trace: &Trace, init_end_secs: f64) -> FigureSet {
        FigureSet {
            figures: vec![
                read_fig("fig02-escat-read-timeline", trace),
                read_detail_fig("fig03-escat-read-detail", trace, 0.0, init_end_secs),
                write_fig("fig04-escat-write-timeline", trace),
                file_fig("fig05-escat-file-access", trace),
            ],
        }
    }

    /// RENDER: Figures 6 (reads), 7 (writes), 8 (files).
    pub fn render(trace: &Trace) -> FigureSet {
        FigureSet {
            figures: vec![
                read_fig("fig06-render-read-timeline", trace),
                write_fig("fig07-render-write-timeline", trace),
                file_fig("fig08-render-file-access", trace),
            ],
        }
    }

    /// HTF: Figures 9–17 (read/write timelines and file-access timelines of
    /// the three phases).
    pub fn htf(psetup: &Trace, pargos: &Trace, pscf: &Trace) -> FigureSet {
        FigureSet {
            figures: vec![
                read_fig("fig09-htf-init-reads", psetup),
                write_fig("fig10-htf-init-writes", psetup),
                read_fig("fig11-htf-integral-reads", pargos),
                write_fig("fig12-htf-integral-writes", pargos),
                read_fig("fig13-htf-scf-reads", pscf),
                write_fig("fig14-htf-scf-writes", pscf),
                file_fig("fig15-htf-init-file-access", psetup),
                file_fig("fig16-htf-integral-file-access", pargos),
                file_fig("fig17-htf-scf-file-access", pscf),
            ],
        }
    }

    /// Write every figure's CSV into `dir`.
    pub fn write_all(&self, dir: &Path) -> std::io::Result<()> {
        for f in &self.figures {
            f.write_csv(dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::event::IoEvent;
    use sio_core::trace::Tracer;

    fn trace() -> Trace {
        let t = Tracer::new("f");
        for i in 0..10u64 {
            let ns = i * 1_000_000_000;
            t.record(
                IoEvent::new(0, 7, IoOp::Write)
                    .span(ns, ns + 1000)
                    .extent(0, 2048),
            );
            t.record(
                IoEvent::new(1, 9, IoOp::Read)
                    .span(ns + 500, ns + 1500)
                    .extent(0, 4096),
            );
        }
        t.finish()
    }

    #[test]
    fn csv_has_one_line_per_point() {
        let f = read_fig("r", &trace());
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 11);
        assert!(csv.starts_with("t_secs,bytes,node"));
    }

    #[test]
    fn file_timeline_marks_ops() {
        let f = file_fig("files", &trace());
        let csv = f.to_csv();
        assert!(csv.contains(",7,W"));
        assert!(csv.contains(",9,R"));
    }

    #[test]
    fn detail_restricts_window() {
        let f = read_detail_fig("d", &trace(), 2.0, 5.0);
        if let Figure::OpTimeline { points, .. } = f {
            assert_eq!(points.len(), 3);
        } else {
            panic!("wrong figure kind");
        }
    }

    #[test]
    fn ascii_previews_render() {
        assert!(read_fig("r", &trace()).to_ascii().contains('*'));
        assert!(file_fig("f", &trace()).to_ascii().contains("accesses"));
    }

    #[test]
    fn burst_gaps_on_synthetic_clusters() {
        let t = Tracer::new("b");
        for (c, base) in [0.0f64, 100.0, 180.0].iter().enumerate() {
            let _ = c;
            for k in 0..5u64 {
                let ns = ((base + k as f64 * 0.01) * 1e9) as u64;
                t.record(
                    IoEvent::new(0, 1, IoOp::Write)
                        .span(ns, ns + 100)
                        .extent(0, 10),
                );
            }
        }
        let (clusters, gaps) = write_burst_gaps(&t.finish(), 10.0);
        assert_eq!(clusters.len(), 3);
        assert_eq!(gaps.len(), 2);
        assert!(gaps[1] < gaps[0]);
    }

    #[test]
    fn window_series_bins_intensity() {
        let tr = trace();
        let rows = window_series(&tr, 2.0);
        assert_eq!(rows.len(), 5); // events span 0..10 s
                                   // Each 2 s window holds 2 write starts + 2 read starts.
        assert_eq!(rows[0].ops, 4);
        assert_eq!(rows[0].write_bytes, 2 * 2048);
        assert_eq!(rows[0].read_bytes, 2 * 4096);
        let dir = std::env::temp_dir().join("sio_fig_window");
        let _ = std::fs::remove_dir_all(&dir);
        write_window_csv(&rows, &dir, "w").unwrap();
        let txt = std::fs::read_to_string(dir.join("w.csv")).unwrap();
        assert!(txt.starts_with("t_secs,read_bytes,write_bytes,ops"));
        assert_eq!(txt.lines().count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn region_series_exposes_spatial_structure() {
        let t = Tracer::new("r");
        // Two nodes write disjoint 1 KB regions of file 7.
        for node in 0..2u32 {
            t.record(
                IoEvent::new(node, 7, IoOp::Write)
                    .span(0, 10)
                    .extent(node as u64 * 1024, 1024),
            );
        }
        let tr = t.finish();
        let rows = region_series(&tr, 7, 1024);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.nodes == 1 && r.write_bytes == 1024));
        assert!(region_series(&tr, 99, 1024).is_empty());
    }

    #[test]
    fn figure_set_writes_files() {
        let dir = std::env::temp_dir().join("sio_fig_test");
        let _ = std::fs::remove_dir_all(&dir);
        let tr = trace();
        let set = FigureSet::render(&tr);
        set.write_all(&dir).unwrap();
        assert!(dir.join("fig06-render-read-timeline.csv").exists());
        assert!(dir.join("fig08-render-file-access.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

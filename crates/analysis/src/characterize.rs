//! Qualitative access-pattern characterization — the §8 observations.
//!
//! Beyond tables and figures, the paper draws qualitative conclusions:
//!
//! * "data files were generally read or written in their entirety, in many
//!   cases by a single node";
//! * "most of the data written eventually was propagated to secondary
//!   storage" (no short-lived temporaries, little overwriting);
//! * "the majority of the request patterns are sequential";
//! * "Cyclic behavior, with repeated patterns of file open, access, and
//!   close, occur often";
//! * "Requests tend to be of fixed size".
//!
//! [`Characterization`] computes each of those as a metric from a trace, so
//! the claims can be *checked* against the three applications instead of
//! merely quoted. Used by the `repro` reports and the integration tests.

use sio_core::classify::{classify_accesses, AccessPattern};
use sio_core::event::{FileId, IoOp, NodeId};
use sio_core::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// One file's qualitative profile.
#[derive(Debug, Clone, Default)]
pub struct FileProfile {
    /// Highest byte offset touched + 1 (observed file size).
    pub observed_len: u64,
    /// Distinct bytes read (union of read extents).
    pub bytes_read_unique: u64,
    /// Distinct bytes written (union of write extents).
    pub bytes_written_unique: u64,
    /// Total bytes written (sum over writes; > unique ⇒ overwriting).
    pub bytes_written_total: u64,
    /// Nodes that touched the file.
    pub nodes: BTreeSet<NodeId>,
    /// Open events observed.
    pub opens: u64,
    /// Close events observed.
    pub closes: u64,
}

/// The paper's §2 taxonomy of why I/O happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Read but never written: compulsory input ("reading initialization
    /// files ... or reading input data sets").
    CompulsoryInput,
    /// Written and later reread in the same run: out-of-core staging or
    /// checkpoint reuse (ESCAT's quadrature files, HTF's integral files
    /// across the pipeline).
    Staging,
    /// Written but never read back: application output or checkpoint
    /// ("generating application output").
    Output,
    /// Opened or seeked but never moved data.
    Untouched,
}

impl FileRole {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FileRole::CompulsoryInput => "compulsory input",
            FileRole::Staging => "staging/out-of-core",
            FileRole::Output => "output/checkpoint",
            FileRole::Untouched => "untouched",
        }
    }
}

impl FileProfile {
    /// Classify the file into the paper's §2 I/O classes.
    pub fn role(&self) -> FileRole {
        match (self.bytes_read_unique > 0, self.bytes_written_unique > 0) {
            (true, false) => FileRole::CompulsoryInput,
            (true, true) => FileRole::Staging,
            (false, true) => FileRole::Output,
            (false, false) => FileRole::Untouched,
        }
    }

    /// Whether reads covered (almost) the whole observed file.
    pub fn read_entirely(&self, tolerance: f64) -> bool {
        self.observed_len > 0
            && self.bytes_read_unique as f64 >= self.observed_len as f64 * tolerance
    }

    /// Whether writes covered (almost) the whole observed file.
    pub fn written_entirely(&self, tolerance: f64) -> bool {
        self.observed_len > 0
            && self.bytes_written_unique as f64 >= self.observed_len as f64 * tolerance
    }

    /// Fraction of written bytes that overwrote already-written bytes
    /// (0 = every write created new data, the paper's survival claim).
    pub fn rewrite_fraction(&self) -> f64 {
        if self.bytes_written_total == 0 {
            return 0.0;
        }
        1.0 - self.bytes_written_unique as f64 / self.bytes_written_total as f64
    }
}

/// Whole-trace qualitative characterization.
#[derive(Debug, Clone, Default)]
pub struct Characterization {
    /// Per-file profiles.
    pub files: BTreeMap<FileId, FileProfile>,
    /// Per-(node, file) stream classifications.
    pub streams: BTreeMap<(NodeId, FileId), AccessPattern>,
    /// Per-(file, op) request-size mode share: how often the most common
    /// request size occurs.
    fixed_size_share: Vec<f64>,
}

fn union_bytes(extents: &mut [(u64, u64)]) -> u64 {
    extents.sort_unstable();
    let mut covered = 0u64;
    let mut end = 0u64;
    for &(s, e) in extents.iter() {
        if e <= end {
            continue;
        }
        covered += e - s.max(end);
        end = e;
    }
    covered
}

impl Characterization {
    /// Compute the characterization from a trace.
    pub fn from_trace(trace: &Trace) -> Characterization {
        let mut files: BTreeMap<FileId, FileProfile> = BTreeMap::new();
        let mut read_extents: BTreeMap<FileId, Vec<(u64, u64)>> = BTreeMap::new();
        let mut write_extents: BTreeMap<FileId, Vec<(u64, u64)>> = BTreeMap::new();
        let mut streams: BTreeMap<(NodeId, FileId), Vec<(u64, u64)>> = BTreeMap::new();
        let mut sizes: BTreeMap<(FileId, bool), BTreeMap<u64, u64>> = BTreeMap::new();

        for ev in trace.events() {
            let f = files.entry(ev.file).or_default();
            match ev.op {
                IoOp::Open => f.opens += 1,
                IoOp::Close => f.closes += 1,
                _ => {}
            }
            if !ev.op.is_data() || ev.bytes == 0 {
                continue;
            }
            f.observed_len = f.observed_len.max(ev.offset + ev.bytes);
            f.nodes.insert(ev.node);
            streams
                .entry((ev.node, ev.file))
                .or_default()
                .push((ev.offset, ev.bytes));
            *sizes
                .entry((ev.file, ev.op.is_write()))
                .or_default()
                .entry(ev.bytes)
                .or_insert(0) += 1;
            if ev.op.is_read() {
                read_extents
                    .entry(ev.file)
                    .or_default()
                    .push((ev.offset, ev.offset + ev.bytes));
            } else {
                f.bytes_written_total += ev.bytes;
                write_extents
                    .entry(ev.file)
                    .or_default()
                    .push((ev.offset, ev.offset + ev.bytes));
            }
        }
        for (file, mut extents) in read_extents {
            files.get_mut(&file).unwrap().bytes_read_unique = union_bytes(&mut extents);
        }
        for (file, mut extents) in write_extents {
            files.get_mut(&file).unwrap().bytes_written_unique = union_bytes(&mut extents);
        }
        let streams = streams
            .into_iter()
            .map(|(k, acc)| (k, classify_accesses(&acc)))
            .collect();
        let fixed_size_share = sizes
            .values()
            .map(|dist| {
                let total: u64 = dist.values().sum();
                let max = dist.values().copied().max().unwrap_or(0);
                max as f64 / total.max(1) as f64
            })
            .collect();
        Characterization {
            files,
            streams,
            fixed_size_share,
        }
    }

    /// Fraction of accessed files read or written (almost) in their
    /// entirety — §8's whole-file claim. `tolerance` is the coverage
    /// fraction that counts as "entire" (e.g. 0.75).
    pub fn whole_file_fraction(&self, tolerance: f64) -> f64 {
        let accessed: Vec<&FileProfile> =
            self.files.values().filter(|f| f.observed_len > 0).collect();
        if accessed.is_empty() {
            return 0.0;
        }
        let whole = accessed
            .iter()
            .filter(|f| f.read_entirely(tolerance) || f.written_entirely(tolerance))
            .count();
        whole as f64 / accessed.len() as f64
    }

    /// Fraction of accessed files touched by exactly one node.
    pub fn single_node_fraction(&self) -> f64 {
        let accessed: Vec<&FileProfile> =
            self.files.values().filter(|f| f.observed_len > 0).collect();
        if accessed.is_empty() {
            return 0.0;
        }
        accessed.iter().filter(|f| f.nodes.len() == 1).count() as f64 / accessed.len() as f64
    }

    /// Fraction of written bytes that survive (are not overwritten) —
    /// §8's "most of the data written eventually was propagated" claim.
    pub fn write_survival_fraction(&self) -> f64 {
        let total: u64 = self.files.values().map(|f| f.bytes_written_total).sum();
        let unique: u64 = self.files.values().map(|f| f.bytes_written_unique).sum();
        if total == 0 {
            return 1.0;
        }
        unique as f64 / total as f64
    }

    /// Fraction of (node, file) access streams classified sequential or
    /// cyclic (repeated sequential passes) — §10's "the majority of the
    /// request patterns are sequential".
    pub fn sequential_stream_fraction(&self) -> f64 {
        if self.streams.is_empty() {
            return 0.0;
        }
        let seq = self
            .streams
            .values()
            .filter(|p| matches!(p, AccessPattern::Sequential | AccessPattern::Cyclic { .. }))
            .count();
        seq as f64 / self.streams.len() as f64
    }

    /// Mean share of the most common request size per (file, direction) —
    /// §10's "requests tend to be of fixed size" (1.0 = perfectly fixed).
    pub fn fixed_size_share(&self) -> f64 {
        if self.fixed_size_share.is_empty() {
            return 0.0;
        }
        self.fixed_size_share.iter().sum::<f64>() / self.fixed_size_share.len() as f64
    }

    /// Number of files opened more than once (open/access/close cycles).
    pub fn reopened_files(&self) -> usize {
        self.files.values().filter(|f| f.opens > 1).count()
    }

    /// Byte volume per §2 I/O class: (compulsory-input read bytes,
    /// staging bytes [reads + writes on reread files], output write bytes).
    pub fn class_volumes(&self) -> (u64, u64, u64) {
        let mut compulsory = 0u64;
        let mut staging = 0u64;
        let mut output = 0u64;
        for f in self.files.values() {
            match f.role() {
                FileRole::CompulsoryInput => compulsory += f.bytes_read_unique,
                FileRole::Staging => {
                    staging += f.bytes_written_total + f.bytes_read_unique;
                }
                FileRole::Output => output += f.bytes_written_total,
                FileRole::Untouched => {}
            }
        }
        (compulsory, staging, output)
    }

    /// File counts per §2 I/O class (compulsory, staging, output).
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in self.files.values() {
            match f.role() {
                FileRole::CompulsoryInput => c.0 += 1,
                FileRole::Staging => c.1 += 1,
                FileRole::Output => c.2 += 1,
                FileRole::Untouched => {}
            }
        }
        c
    }

    /// Render a compact report of the §8 metrics and §2 class breakdown.
    pub fn render(&self) -> String {
        let (cv, sv, ov) = self.class_volumes();
        let (cc, sc, oc) = self.class_counts();
        format!(
            "whole-file access:        {:.0}% of files\n\
             single-node files:        {:.0}%\n\
             write survival:           {:.0}% of written bytes\n\
             sequential streams:       {:.0}%\n\
             fixed-size requests:      {:.0}% modal share\n\
             reopened files:           {}\n\
             I/O classes (paper S2):   compulsory {} files / {} B, \
             staging {} files / {} B, output {} files / {} B\n",
            self.whole_file_fraction(0.75) * 100.0,
            self.single_node_fraction() * 100.0,
            self.write_survival_fraction() * 100.0,
            self.sequential_stream_fraction() * 100.0,
            self.fixed_size_share() * 100.0,
            self.reopened_files(),
            cc,
            cv,
            sc,
            sv,
            oc,
            ov,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::event::IoEvent;
    use sio_core::trace::Tracer;

    fn ev(node: NodeId, file: FileId, op: IoOp, offset: u64, bytes: u64) -> IoEvent {
        IoEvent::new(node, file, op)
            .span(0, 10)
            .extent(offset, bytes)
    }

    #[test]
    fn whole_file_and_single_node() {
        let t = Tracer::new("c");
        // File 0: node 0 writes it entirely.
        for k in 0..4u64 {
            t.record(ev(0, 0, IoOp::Write, k * 100, 100));
        }
        // File 1: two nodes read only the first 10% of it.
        t.record(ev(0, 1, IoOp::Read, 0, 100));
        t.record(ev(1, 1, IoOp::Read, 900, 100));
        let c = Characterization::from_trace(&t.finish());
        assert!(c.files[&0].written_entirely(0.99));
        assert!(!c.files[&1].read_entirely(0.75));
        assert_eq!(c.whole_file_fraction(0.75), 0.5);
        assert_eq!(c.single_node_fraction(), 0.5);
    }

    #[test]
    fn write_survival_detects_overwrites() {
        let t = Tracer::new("c");
        t.record(ev(0, 0, IoOp::Write, 0, 100));
        t.record(ev(0, 0, IoOp::Write, 0, 100)); // full overwrite
        let c = Characterization::from_trace(&t.finish());
        assert!((c.write_survival_fraction() - 0.5).abs() < 1e-9);
        assert!((c.files[&0].rewrite_fraction() - 0.5).abs() < 1e-9);

        let t = Tracer::new("c2");
        t.record(ev(0, 0, IoOp::Write, 0, 100));
        t.record(ev(0, 0, IoOp::Write, 100, 100));
        let c = Characterization::from_trace(&t.finish());
        assert_eq!(c.write_survival_fraction(), 1.0);
    }

    #[test]
    fn stream_classification() {
        let t = Tracer::new("c");
        for k in 0..10u64 {
            t.record(ev(0, 0, IoOp::Read, k * 4096, 4096)); // sequential
        }
        let offs = [17u64, 3, 29, 11, 23, 5, 31, 2];
        for &o in &offs {
            t.record(ev(1, 0, IoOp::Read, o * 131072 + o * 7, 512)); // random
        }
        let c = Characterization::from_trace(&t.finish());
        assert_eq!(c.streams[&(0, 0)], AccessPattern::Sequential);
        assert_eq!(c.streams[&(1, 0)], AccessPattern::Random);
        assert!((c.sequential_stream_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fixed_size_share_and_reopens() {
        let t = Tracer::new("c");
        t.record(ev(0, 0, IoOp::Open, 0, 0));
        for _ in 0..9 {
            t.record(ev(0, 0, IoOp::Write, 0, 2048));
        }
        t.record(ev(0, 0, IoOp::Write, 0, 100));
        t.record(ev(0, 0, IoOp::Close, 0, 0));
        t.record(ev(0, 0, IoOp::Open, 0, 0));
        let c = Characterization::from_trace(&t.finish());
        assert!((c.fixed_size_share() - 0.9).abs() < 1e-9);
        assert_eq!(c.reopened_files(), 1);
    }

    #[test]
    fn file_roles_follow_section2_taxonomy() {
        let t = Tracer::new("roles");
        // File 0: input only. File 1: written then reread (staging).
        // File 2: output only. File 3: opened, never touched.
        t.record(ev(0, 0, IoOp::Read, 0, 100));
        t.record(ev(0, 1, IoOp::Write, 0, 100));
        t.record(ev(0, 1, IoOp::Read, 0, 100));
        t.record(ev(0, 2, IoOp::Write, 0, 100));
        t.record(ev(0, 3, IoOp::Open, 0, 0));
        let c = Characterization::from_trace(&t.finish());
        assert_eq!(c.files[&0].role(), FileRole::CompulsoryInput);
        assert_eq!(c.files[&1].role(), FileRole::Staging);
        assert_eq!(c.files[&2].role(), FileRole::Output);
        assert_eq!(c.files[&3].role(), FileRole::Untouched);
        assert_eq!(c.class_counts(), (1, 1, 1));
        let (cv, sv, ov) = c.class_volumes();
        assert_eq!((cv, sv, ov), (100, 200, 100));
        assert!(c.render().contains("I/O classes"));
    }

    #[test]
    fn union_handles_overlaps_and_gaps() {
        let mut ext = vec![(0u64, 100u64), (50, 150), (200, 300)];
        assert_eq!(union_bytes(&mut ext), 250);
        let mut empty: Vec<(u64, u64)> = vec![];
        assert_eq!(union_bytes(&mut empty), 0);
        let mut nested = vec![(0u64, 1000u64), (100, 200)];
        assert_eq!(union_bytes(&mut nested), 1000);
    }

    #[test]
    fn empty_trace_metrics() {
        let c = Characterization::from_trace(&Tracer::new("e").finish());
        assert_eq!(c.whole_file_fraction(0.75), 0.0);
        assert_eq!(c.write_survival_fraction(), 1.0);
        assert_eq!(c.sequential_stream_fraction(), 0.0);
        assert_eq!(c.reopened_files(), 0);
    }
}

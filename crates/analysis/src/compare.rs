//! Paper reference values and shape checks.
//!
//! The fidelity contract (DESIGN.md §3): operation counts and byte volumes
//! are workload-determined and must match the paper near-exactly; the time
//! columns are calibration-dependent and must match in *shape* — which
//! operation class dominates, and by roughly what factor. [`Check`] records
//! one paper-vs-measured comparison; the `*_shape` functions encode the
//! qualitative claims the paper's prose makes about each application.

use crate::optable::OpTable;
use crate::sizetable::SizeTable;
use sio_core::event::IoOp;

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is compared.
    pub name: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Tolerance as a relative error for `pass` (counts: tight; times:
    /// loose or shape-only).
    pub rel_tol: f64,
}

impl Check {
    /// Build a comparison.
    pub fn new(name: &str, paper: f64, measured: f64, rel_tol: f64) -> Check {
        Check {
            name: name.to_string(),
            paper,
            measured,
            rel_tol,
        }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }

    /// Whether the measured value is within tolerance.
    pub fn pass(&self) -> bool {
        if self.paper == 0.0 {
            return self.measured == 0.0;
        }
        ((self.measured - self.paper) / self.paper).abs() <= self.rel_tol
    }

    /// One rendered line.
    pub fn render(&self) -> String {
        format!(
            "{:<44} paper {:>15.0}  measured {:>15.0}  ratio {:>6.3}  {}",
            self.name,
            self.paper,
            self.measured,
            self.ratio(),
            if self.pass() { "OK" } else { "DEVIATES" }
        )
    }
}

/// A qualitative shape assertion.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// The claim, quoting the paper where possible.
    pub claim: String,
    /// Whether our run exhibits it.
    pub pass: bool,
    /// Supporting detail.
    pub detail: String,
}

impl ShapeCheck {
    fn new(claim: &str, pass: bool, detail: String) -> ShapeCheck {
        ShapeCheck {
            claim: claim.to_string(),
            pass,
            detail,
        }
    }

    /// One rendered line.
    pub fn render(&self) -> String {
        format!(
            "[{}] {} ({})",
            if self.pass { "PASS" } else { "FAIL" },
            self.claim,
            self.detail
        )
    }
}

/// Count tolerance: exact.
pub const COUNT_TOL: f64 = 0.0;
/// Volume tolerance: 3 %.
pub const VOLUME_TOL: f64 = 0.03;

/// Table 1 count/volume comparisons for an ESCAT operation table.
pub fn escat_table1_checks(t: &OpTable) -> Vec<Check> {
    vec![
        Check::new(
            "escat reads (count)",
            560.0,
            t.count(IoOp::Read) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "escat writes (count)",
            13_330.0,
            t.count(IoOp::Write) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "escat seeks (count)",
            12_034.0,
            t.count(IoOp::Seek) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "escat opens (count)",
            262.0,
            t.count(IoOp::Open) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "escat closes (count)",
            262.0,
            t.count(IoOp::Close) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "escat read volume (B)",
            34_226_048.0,
            t.volume(IoOp::Read) as f64,
            0.05,
        ),
        Check::new(
            "escat write volume (B)",
            26_757_088.0,
            t.volume(IoOp::Write) as f64,
            VOLUME_TOL,
        ),
    ]
}

/// Table 2 size-bin comparisons.
pub fn escat_table2_checks(s: &SizeTable) -> Vec<Check> {
    let [r4, r64, r256, rbig] = s.read.as_row().map(|v| v as f64);
    let [w4, w64, w256, wbig] = s.write.as_row().map(|v| v as f64);
    vec![
        Check::new("escat reads <4KB", 297.0, r4, COUNT_TOL),
        Check::new("escat reads <64KB", 3.0, r64, COUNT_TOL),
        Check::new("escat reads <256KB", 260.0, r256, COUNT_TOL),
        Check::new("escat reads >=256KB", 0.0, rbig, COUNT_TOL),
        Check::new("escat writes <4KB", 13_330.0, w4, COUNT_TOL),
        Check::new("escat writes other bins", 0.0, w64 + w256 + wbig, COUNT_TOL),
    ]
}

/// The §5 prose claims about ESCAT's time structure.
pub fn escat_shape(t: &OpTable, gaps: &[f64]) -> Vec<ShapeCheck> {
    let seek_write_pct = t.pct(IoOp::Seek) + t.pct(IoOp::Write);
    let mut checks = vec![
        ShapeCheck::new(
            "writes+seeks dominate I/O time (paper: ~96%)",
            seek_write_pct > 80.0,
            format!("measured {seek_write_pct:.1}%"),
        ),
        ShapeCheck::new(
            "reads are a negligible share of I/O time (paper: 0.21%)",
            t.pct(IoOp::Read) < 5.0,
            format!("measured {:.2}%", t.pct(IoOp::Read)),
        ),
        ShapeCheck::new(
            "read volume exceeds write volume (paper: 56% of volume)",
            t.volume(IoOp::Read) > t.volume(IoOp::Write),
            format!(
                "read {} B vs write {} B",
                t.volume(IoOp::Read),
                t.volume(IoOp::Write)
            ),
        ),
    ];
    if gaps.len() >= 4 {
        let head: f64 = gaps[..2].iter().sum::<f64>() / 2.0;
        let tail: f64 = gaps[gaps.len() - 2..].iter().sum::<f64>() / 2.0;
        checks.push(ShapeCheck::new(
            "write-burst spacing shrinks to ~half (paper: ~160s -> ~80s)",
            tail < head * 0.7,
            format!("first gaps ≈ {head:.0}s, last ≈ {tail:.0}s"),
        ));
    }
    checks
}

/// Table 3 comparisons for RENDER.
pub fn render_table3_checks(t: &OpTable) -> Vec<Check> {
    vec![
        Check::new(
            "render reads (count)",
            121.0,
            t.count(IoOp::Read) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render async reads (count)",
            436.0,
            t.count(IoOp::AsyncRead) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render iowaits (count)",
            436.0,
            t.count(IoOp::IoWait) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render writes (count)",
            300.0,
            t.count(IoOp::Write) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render seeks (count)",
            4.0,
            t.count(IoOp::Seek) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render opens (count)",
            106.0,
            t.count(IoOp::Open) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render closes (count)",
            101.0,
            t.count(IoOp::Close) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "render async read volume (B)",
            880_849_125.0,
            t.volume(IoOp::AsyncRead) as f64,
            0.01,
        ),
        Check::new(
            "render write volume (B)",
            98_305_400.0,
            t.volume(IoOp::Write) as f64,
            0.001,
        ),
        Check::new(
            "render read volume (B)",
            8_457.0,
            t.volume(IoOp::Read) as f64,
            0.01,
        ),
    ]
}

/// The §6 prose claims about RENDER.
pub fn render_shape(t: &OpTable, wall_secs: f64, init_end_secs: f64) -> Vec<ShapeCheck> {
    let read_vol = t.volume(IoOp::Read) + t.volume(IoOp::AsyncRead);
    let total_vol = read_vol + t.volume(IoOp::Write);
    let vol_share = 100.0 * read_vol as f64 / total_vol as f64;
    let throughput_mb = t.volume(IoOp::AsyncRead) as f64 / 1e6 / init_end_secs.max(1e-9);
    vec![
        ShapeCheck::new(
            "reads dominate I/O volume (paper: 89%)",
            vol_share > 80.0,
            format!("measured {vol_share:.1}%"),
        ),
        ShapeCheck::new(
            "iowait is the largest I/O time component (paper: 54%)",
            t.pct(IoOp::IoWait) >= t.pct(IoOp::Write)
                && t.pct(IoOp::IoWait) > t.pct(IoOp::AsyncRead),
            format!(
                "iowait {:.1}%, write {:.1}%, async-issue {:.1}%",
                t.pct(IoOp::IoWait),
                t.pct(IoOp::Write),
                t.pct(IoOp::AsyncRead)
            ),
        ),
        ShapeCheck::new(
            "gateway read throughput ~9.5 MB/s (paper §6.2)",
            (5.0..20.0).contains(&throughput_mb),
            format!("measured {throughput_mb:.1} MB/s over {init_end_secs:.0}s init"),
        ),
        ShapeCheck::new(
            "wall time ~470 s (paper: 8 minutes for 100 frames)",
            (200.0..900.0).contains(&wall_secs),
            format!("measured {wall_secs:.0}s"),
        ),
    ]
}

/// Table 5 comparisons for the three HTF phases.
pub fn htf_table5_checks(psetup: &OpTable, pargos: &OpTable, pscf: &OpTable) -> Vec<Check> {
    vec![
        Check::new(
            "psetup reads (count)",
            371.0,
            psetup.count(IoOp::Read) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "psetup writes (count)",
            452.0,
            psetup.count(IoOp::Write) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "psetup read volume (B)",
            3_522_497.0,
            psetup.volume(IoOp::Read) as f64,
            0.01,
        ),
        Check::new(
            "psetup write volume (B)",
            3_744_872.0,
            psetup.volume(IoOp::Write) as f64,
            0.01,
        ),
        Check::new(
            "pargos reads (count)",
            145.0,
            pargos.count(IoOp::Read) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pargos writes (count)",
            8_535.0,
            pargos.count(IoOp::Write) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pargos opens (count)",
            130.0,
            pargos.count(IoOp::Open) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pargos lsize (count)",
            128.0,
            pargos.count(IoOp::Lsize) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pargos forflush (count)",
            8_657.0,
            pargos.count(IoOp::Flush) as f64,
            0.001,
        ),
        Check::new(
            "pargos write volume (B)",
            698_958_109.0,
            pargos.volume(IoOp::Write) as f64,
            0.001,
        ),
        Check::new(
            "pscf reads (count)",
            51_499.0,
            pscf.count(IoOp::Read) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pscf writes (count)",
            207.0,
            pscf.count(IoOp::Write) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pscf seeks (count)",
            813.0,
            pscf.count(IoOp::Seek) as f64,
            0.002,
        ),
        Check::new(
            "pscf opens (count)",
            157.0,
            pscf.count(IoOp::Open) as f64,
            COUNT_TOL,
        ),
        Check::new(
            "pscf read volume (B)",
            4_201_634_304.0,
            pscf.volume(IoOp::Read) as f64,
            0.01,
        ),
        Check::new(
            "pscf seek distance volume (B)",
            3_495_198_798.0,
            pscf.volume(IoOp::Seek) as f64,
            0.01,
        ),
    ]
}

/// Table 6 size-bin comparisons.
pub fn htf_table6_checks(psetup: &SizeTable, pargos: &SizeTable, pscf: &SizeTable) -> Vec<Check> {
    let mut v = Vec::new();
    let mut bins = |name: &str, s: &SizeTable, read_ref: [f64; 4], write_ref: [f64; 4]| {
        let r = s.read.as_row().map(|x| x as f64);
        let w = s.write.as_row().map(|x| x as f64);
        for (i, label) in ["<4KB", "<64KB", "<256KB", ">=256KB"].iter().enumerate() {
            v.push(Check::new(
                &format!("{name} reads {label}"),
                read_ref[i],
                r[i],
                COUNT_TOL,
            ));
            v.push(Check::new(
                &format!("{name} writes {label}"),
                write_ref[i],
                w[i],
                COUNT_TOL,
            ));
        }
    };
    bins(
        "psetup",
        psetup,
        [151.0, 220.0, 0.0, 0.0],
        [218.0, 234.0, 0.0, 0.0],
    );
    bins(
        "pargos",
        pargos,
        [143.0, 2.0, 0.0, 0.0],
        [2.0, 1.0, 8_532.0, 0.0],
    );
    bins(
        "pscf",
        pscf,
        [165.0, 109.0, 51_225.0, 0.0],
        [43.0, 158.0, 6.0, 0.0],
    );
    v
}

/// The §7 prose claims about HTF.
pub fn htf_shape(pargos: &OpTable, pscf: &OpTable) -> Vec<ShapeCheck> {
    vec![
        ShapeCheck::new(
            "integral calculation is write-intensive (paper: 31% write vs ~0% read time)",
            pargos.secs(IoOp::Write) > 100.0 * pargos.secs(IoOp::Read),
            format!(
                "write {:.1}s vs read {:.2}s",
                pargos.secs(IoOp::Write),
                pargos.secs(IoOp::Read)
            ),
        ),
        ShapeCheck::new(
            "SCF phase is read-intensive (paper: reads are 98.4% of I/O time)",
            pscf.pct(IoOp::Read) > 80.0,
            format!("measured {:.1}%", pscf.pct(IoOp::Read)),
        ),
        ShapeCheck::new(
            "pscf local seeks are cheap (paper: 813 seeks in 1.67 s)",
            pscf.secs(IoOp::Seek) < 60.0,
            format!("measured {:.2}s", pscf.secs(IoOp::Seek)),
        ),
        ShapeCheck::new(
            "pargos opens (128 simultaneous creates) are expensive (paper: 4,057 s)",
            pargos.secs(IoOp::Open) > 100.0,
            format!("measured {:.0}s", pargos.secs(IoOp::Open)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_math() {
        let c = Check::new("x", 100.0, 103.0, 0.05);
        assert!(c.pass());
        assert!((c.ratio() - 1.03).abs() < 1e-12);
        let d = Check::new("y", 100.0, 120.0, 0.05);
        assert!(!d.pass());
        let z = Check::new("z", 0.0, 0.0, 0.0);
        assert!(z.pass());
        assert_eq!(z.ratio(), 1.0);
        let nz = Check::new("nz", 0.0, 5.0, 0.0);
        assert!(!nz.pass());
        assert!(nz.ratio().is_infinite());
    }

    #[test]
    fn renders_contain_verdicts() {
        assert!(Check::new("x", 1.0, 1.0, 0.0).render().contains("OK"));
        assert!(Check::new("x", 1.0, 9.0, 0.0).render().contains("DEVIATES"));
        let s = ShapeCheck::new("claim", true, "detail".into()).render();
        assert!(s.contains("PASS"));
    }
}

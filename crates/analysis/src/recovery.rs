//! X5: crash/recovery orchestration — restart a crashed application from
//! its last durable checkpoint inside the same deterministic simulation.
//!
//! The orchestrator runs a checkpointed workload, kills it at a chosen
//! instant (`Engine::run_until`), derives the **durable epoch** from the
//! crashed run's trace by replaying every checkpoint commit through
//! `CheckpointStore::try_commit` (a commit whose `sync` had not completed
//! leaves a torn slot whose prefix fails validation), builds the resumed
//! workload from that epoch, and runs it to completion. Reported per cell:
//! time-to-recovery vs rerunning from scratch, lost-work bytes, and the
//! checkpoint overhead against the uncheckpointed wall.
//!
//! Everything is a pure function of the configuration: the suite is
//! worker-count invariant and golden-digested (`results/golden_recover.txt`).

use crate::runner;
use paragon_sim::{FaultSchedule, MachineConfig, SimTime};
use sio_apps::checkpoint::CheckpointPlan;
use sio_apps::workload::{run_workload, run_workload_crashable, Backend};
use sio_apps::{CheckpointedWorkload, EscatParams, HtfParams, RenderParams};
use sio_core::checkpoint::CheckpointStore;
use sio_core::event::NS_PER_SEC;
use sio_core::{IoEvent, IoOp, Trace};
use sio_ppfs::PolicyConfig;

/// What the post-crash analysis recovered from the checkpoint file.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableCut {
    /// Last epoch boundary durable on every participating writer (0 = no
    /// usable checkpoint; the resumed run starts from scratch).
    pub epoch: u32,
    /// Commits that validated and advanced a slot.
    pub commits_valid: u32,
    /// Torn commits rejected by checksum/length validation.
    pub commits_torn: u32,
}

/// Checkpoint commits of one writer, in commit order: the `j`-th completed
/// checkpoint-file write pairs with the `j`-th completed checkpoint-file
/// sync. A write past the sync count was still unsynced at the crash.
pub(crate) fn commit_events<'a>(
    trace: &'a Trace,
    plan: &CheckpointPlan,
    node: u32,
) -> (Vec<&'a IoEvent>, Vec<&'a IoEvent>) {
    let mut writes: Vec<&IoEvent> = trace
        .events()
        .iter()
        .filter(|e| e.file == plan.file && e.node == node && e.op == IoOp::Write)
        .collect();
    writes.sort_by_key(|e| (e.start, e.offset));
    let mut syncs: Vec<&IoEvent> = trace
        .events()
        .iter()
        .filter(|e| e.file == plan.file && e.node == node && e.op == IoOp::Flush)
        .collect();
    syncs.sort_by_key(|e| e.start);
    (writes, syncs)
}

/// Final boundary epoch of a writer with `units` work units: the writer
/// stops checkpointing once its own work is covered, so a fully-committed
/// short writer never caps the global cut.
fn final_boundary(units: u32, interval: u32) -> u32 {
    units.div_ceil(interval)
}

/// Derive the durable epoch from a crashed run's trace.
///
/// Per writer, each completed checkpoint-file write is reconstructed
/// (`plan.image(..).encode()`) and fed through [`CheckpointStore`]: synced
/// commits arrive whole and advance the slot; a commit whose sync was still
/// outstanding at `crash` leaves a torn slot — its on-media prefix is
/// modeled as the elapsed fraction of a nominal persistence window of twice
/// the write's span, and validation rejects it. The global cut is the
/// minimum committed epoch across writers, with writers that committed
/// their own final boundary treated as complete.
pub fn durable_cut(
    trace: &Trace,
    plan: &CheckpointPlan,
    units: &[u32],
    crash: SimTime,
) -> DurableCut {
    assert_eq!(
        units.len(),
        plan.nodes as usize,
        "one unit count per writer"
    );
    let mut store = CheckpointStore::new();
    let slots = plan.slot_names();
    let (mut valid, mut torn) = (0u32, 0u32);
    let mut committed = vec![0u32; plan.nodes as usize];
    for n in 0..plan.nodes {
        let (writes, syncs) = commit_events(trace, plan, n);
        for (j, w) in writes.iter().enumerate() {
            let slot_idx = w.offset / plan.record_bytes;
            let epoch = ((slot_idx - n as u64) / plan.nodes as u64) as u32 + 1;
            let full = plan.image(n, epoch).encode();
            let bytes = if j < syncs.len() {
                full.clone()
            } else {
                // Unsynced: the write-behind path may have persisted only a
                // prefix by the crash instant.
                let span = (w.end - w.start).max(1);
                let elapsed = crash.nanos().saturating_sub(w.start);
                let len = ((full.len() as u64).saturating_mul(elapsed) / (2 * span))
                    .min(full.len() as u64 - 1) as usize;
                full[..len].to_vec()
            };
            match store.try_commit(&slots[n as usize], &bytes) {
                Ok(e) => {
                    committed[n as usize] = e;
                    valid += 1;
                }
                Err(_) => torn += 1,
            }
        }
    }
    let epoch = (0..plan.nodes as usize)
        .map(|n| {
            if committed[n] >= final_boundary(units[n], plan.interval) {
                plan.epochs
            } else {
                committed[n]
            }
        })
        .min()
        .unwrap_or(0);
    DurableCut {
        epoch,
        commits_valid: valid,
        commits_torn: torn,
    }
}

/// Derive the durable epoch from a crashed run under the **burst-log
/// tier** (DESIGN.md §5): a checkpoint record is durable iff its log frame
/// validates — the append completed by the crash, and the log device
/// commits whole checksummed frames, so in-flight appends never reach the
/// trace and traced appends never tear — **or** its drain into the wrapped
/// backend completed. Drained records were necessarily appended first, so
/// the traced-append test subsumes the union; unlike [`durable_cut`], a
/// commit does not need its `Sync` to have completed (the byte-level
/// frame-validation rule is exercised directly by the
/// `checkpoint_atomicity` proptests over the blog crate's `BurstLog`).
pub fn durable_cut_logged(
    trace: &Trace,
    plan: &CheckpointPlan,
    units: &[u32],
    crash: SimTime,
) -> DurableCut {
    assert_eq!(
        units.len(),
        plan.nodes as usize,
        "one unit count per writer"
    );
    let mut store = CheckpointStore::new();
    let slots = plan.slot_names();
    let (mut valid, mut torn) = (0u32, 0u32);
    let mut committed = vec![0u32; plan.nodes as usize];
    for n in 0..plan.nodes {
        let (writes, _) = commit_events(trace, plan, n);
        for w in writes {
            let slot_idx = w.offset / plan.record_bytes;
            let epoch = ((slot_idx - n as u64) / plan.nodes as u64) as u32 + 1;
            let full = plan.image(n, epoch).encode();
            // Appends that completed by the crash are whole frames; a
            // crashed engine abandons later completions, so anything else
            // never made the trace.
            if w.end > crash.nanos() {
                torn += 1;
                continue;
            }
            match store.try_commit(&slots[n as usize], &full) {
                Ok(e) => {
                    committed[n as usize] = e;
                    valid += 1;
                }
                Err(_) => torn += 1,
            }
        }
    }
    let epoch = (0..plan.nodes as usize)
        .map(|n| {
            if committed[n] >= final_boundary(units[n], plan.interval) {
                plan.epochs
            } else {
                committed[n]
            }
        })
        .min()
        .unwrap_or(0);
    DurableCut {
        epoch,
        commits_valid: valid,
        commits_torn: torn,
    }
}

/// Bytes of covered-file writes that landed after the durable cut: work
/// the resumed run has to redo. Counted per writer from the instant its
/// own cut-boundary sync completed (completed writes only — data still in
/// flight at the crash never reached the trace, so this is a lower bound).
pub fn lost_work_bytes(trace: &Trace, plan: &CheckpointPlan, units: &[u32], cut: u32) -> u64 {
    let mut lost = 0u64;
    for n in 0..plan.nodes {
        let (_, syncs) = commit_events(trace, plan, n);
        let eff = cut.min(final_boundary(units[n as usize], plan.interval));
        let t_n = if eff == 0 {
            0
        } else {
            syncs.get(eff as usize - 1).map(|s| s.end).unwrap_or(0)
        };
        lost += trace
            .events()
            .iter()
            .filter(|e| {
                e.node == n
                    && e.op == IoOp::Write
                    && plan.covered.contains(&e.file)
                    && e.start >= t_n
            })
            .map(|e| e.bytes)
            .sum::<u64>();
    }
    lost
}

/// One cell of the X5 recovery suite.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverRow {
    /// Workload label (`escat`, `htf-pargos`, `render`).
    pub workload: String,
    /// Checkpoint interval, work units per epoch.
    pub interval: u32,
    /// Crash scenario (`crash30`, `crash70`, `crash50-ionode`).
    pub scenario: String,
    /// Durable epoch recovered from the crashed run's checkpoint file.
    pub durable_epoch: u32,
    /// Epoch boundaries in a full run.
    pub epochs: u32,
    /// Commits that validated in the post-crash replay.
    pub commits_valid: u32,
    /// Torn commits rejected by validation.
    pub commits_torn: u32,
    /// Healthy wall of the checkpointed run, seconds.
    pub ckpt_wall_secs: f64,
    /// Checkpoint overhead vs the uncheckpointed healthy wall, percent.
    pub overhead_pct: f64,
    /// Crash instant, seconds into the run.
    pub crash_secs: f64,
    /// Wall of the resumed run, seconds.
    pub recovery_secs: f64,
    /// Time-to-recovery: crash instant + resumed wall, seconds.
    pub total_secs: f64,
    /// Restart-from-scratch baseline: crash instant + full checkpointed
    /// wall, seconds.
    pub rerun_secs: f64,
    /// `rerun_secs - total_secs`: what the checkpoints bought, seconds.
    pub saved_secs: f64,
    /// Covered-file bytes written after the durable cut (redone work), MB.
    pub lost_work_mb: f64,
    /// Write-behind bytes lost to an I/O-node crash that checkpoints had
    /// already made redundant (PPFS cells only).
    pub dirty_lost_ckpt: u64,
}

const WORKLOADS: [&str; 3] = ["escat", "htf-pargos", "render"];
const SCENARIOS: [&str; 3] = ["crash30", "crash70", "crash50-ionode"];

/// Crash fraction and optional I/O-node fault schedule for a scenario.
/// Times are relative to the healthy checkpointed wall so the windows land
/// inside the run at any scale. `crash@F` (0 < F < 1) crashes at a custom
/// fraction with healthy I/O nodes.
pub fn recover_scenario(name: &str, ckpt_wall: SimTime) -> (f64, Option<FaultSchedule>) {
    let wall = ckpt_wall.nanos().max(1);
    match name {
        "crash30" => (0.30, None),
        "crash70" => (0.70, None),
        // I/O node 0 dies at 35 % and comes back at 45 %; the application
        // itself crashes at 50 %. Write-behind data caught in flight is
        // lost — the dirty-loss accounting splits it into "covered by a
        // checkpoint" vs genuinely lost work.
        "crash50-ionode" => {
            let mut s = FaultSchedule::new();
            s.node_crash(SimTime(wall * 35 / 100), 0);
            s.node_recover(SimTime(wall * 45 / 100), 0);
            (0.50, Some(s))
        }
        other => {
            if let Some(f) = other
                .strip_prefix("crash@")
                .and_then(|s| s.parse::<f64>().ok())
            {
                // Half-open (0, 1]: crashing exactly at the healthy wall is
                // a legal boundary case (nothing is lost, recovery is pure
                // detection + replay), crashing at or before 0 is not.
                if f > 0.0 && f <= 1.0 {
                    return (f, None);
                }
            }
            panic!("unknown recover scenario '{other}'")
        }
    }
}

/// Checkpoint intervals swept per workload, derived from the work-unit
/// count so the suite keeps a sensible epoch count at any scale.
fn intervals_for(units: u32, wname: &str) -> Vec<u32> {
    if wname == "render" {
        vec![units.div_ceil(4).max(1)]
    } else {
        vec![units.div_ceil(6).max(1), units.div_ceil(3).max(1)]
    }
}

/// Run the X5 recovery suite with [`runner::configured_jobs`] workers.
pub fn recover_suite(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
) -> Vec<RecoverRow> {
    recover_suite_jobs(machine, escat, render, htf, runner::configured_jobs())
}

/// [`recover_suite`] with an explicit worker count and the canned scenario
/// set.
pub fn recover_suite_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    jobs: usize,
) -> Vec<RecoverRow> {
    let scenarios: Vec<String> = SCENARIOS.iter().map(|s| s.to_string()).collect();
    recover_suite_scenarios_jobs(machine, escat, render, htf, &scenarios, jobs)
}

/// The full suite driver. Three fan-out phases: plain healthy walls (the
/// overhead baseline), checkpointed healthy walls (the crash-fraction
/// basis and rerun baseline), then every crash-and-resume cell. Rows come
/// back in canonical order — workload × interval × scenario — and are
/// worker-count invariant.
pub fn recover_suite_scenarios_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    scenarios: &[String],
    jobs: usize,
) -> Vec<RecoverRow> {
    let build = |wname: &str, interval: u32, epoch: u32| -> CheckpointedWorkload {
        match wname {
            "escat" => escat.workload_checkpointed(interval, epoch),
            "htf-pargos" => htf.pargos_workload_checkpointed(interval, epoch),
            "render" => render.workload_checkpointed(interval, epoch),
            other => panic!("unknown recover workload '{other}'"),
        }
    };
    let backend_of = |wname: &str| -> Backend {
        match wname {
            "htf-pargos" => Backend::Ppfs(PolicyConfig::pargos_tuned()),
            _ => Backend::Pfs,
        }
    };
    let units_of = |wname: &str| -> Vec<u32> {
        match wname {
            "escat" => vec![escat.iters; escat.nodes as usize],
            "htf-pargos" => (0..htf.nodes).map(|n| htf.records_of(n)).collect(),
            "render" => vec![render.frames],
            other => panic!("unknown recover workload '{other}'"),
        }
    };
    let plain_of = |wname: &str| match wname {
        "escat" => escat.workload(),
        "htf-pargos" => htf.pargos_workload(),
        "render" => render.workload(),
        other => panic!("unknown recover workload '{other}'"),
    };

    let mut cells: Vec<(&str, u32)> = Vec::new();
    for w in WORKLOADS {
        let units = units_of(w)[0];
        for iv in intervals_for(units, w) {
            cells.push((w, iv));
        }
    }

    // Phase 1: uncheckpointed healthy walls (overhead baseline).
    let plain_walls = runner::par_map_jobs(jobs, WORKLOADS.to_vec(), |_, wname| {
        run_workload(machine, &plain_of(wname), &backend_of(wname)).wall_secs()
    });
    let plain_wall = |wname: &str| plain_walls[WORKLOADS.iter().position(|w| *w == wname).unwrap()];

    // Phase 2: checkpointed healthy walls per (workload, interval) cell.
    let ckpt_walls = runner::par_map_jobs(jobs, cells.clone(), |_, (wname, iv)| {
        let cw = build(wname, iv, 0);
        let out = run_workload_crashable(
            machine,
            &cw.workload,
            &backend_of(wname),
            None,
            None,
            &cw.plan.covered,
        );
        out.report.wall
    });
    let ckpt_wall = |wname: &str, iv: u32| -> SimTime {
        ckpt_walls[cells.iter().position(|c| *c == (wname, iv)).unwrap()]
    };

    // Phase 3: crash, derive the durable cut, resume.
    let mut cases: Vec<((&str, u32), String)> = Vec::new();
    for &(w, iv) in &cells {
        for s in scenarios {
            cases.push(((w, iv), s.clone()));
        }
    }
    runner::par_map_jobs(jobs, cases, |_, ((wname, iv), scenario)| {
        let backend = backend_of(wname);
        let units = units_of(wname);
        let wall = ckpt_wall(wname, iv);
        let (frac, io_faults) = recover_scenario(&scenario, wall);
        let t_crash = SimTime((wall.nanos() as f64 * frac) as u64);

        let cw = build(wname, iv, 0);
        let crashed = run_workload_crashable(
            machine,
            &cw.workload,
            &backend,
            io_faults.as_ref(),
            Some(t_crash),
            &cw.plan.covered,
        );
        let cut = durable_cut(&crashed.trace, &cw.plan, &units, t_crash);
        let lost = lost_work_bytes(&crashed.trace, &cw.plan, &units, cut.epoch);

        let resumed = build(wname, iv, cut.epoch);
        let out = run_workload_crashable(
            machine,
            &resumed.workload,
            &backend,
            None,
            None,
            &resumed.plan.covered,
        );

        let ckpt_secs = wall.nanos() as f64 / NS_PER_SEC;
        let crash_secs = t_crash.nanos() as f64 / NS_PER_SEC;
        let recovery_secs = out.report.wall.nanos() as f64 / NS_PER_SEC;
        let plain = plain_wall(wname);
        RecoverRow {
            workload: wname.to_string(),
            interval: iv,
            scenario,
            durable_epoch: cut.epoch,
            epochs: cw.plan.epochs,
            commits_valid: cut.commits_valid,
            commits_torn: cut.commits_torn,
            ckpt_wall_secs: ckpt_secs,
            overhead_pct: (ckpt_secs - plain) / plain.max(f64::EPSILON) * 100.0,
            crash_secs,
            recovery_secs,
            total_secs: crash_secs + recovery_secs,
            rerun_secs: crash_secs + ckpt_secs,
            saved_secs: ckpt_secs - recovery_secs,
            lost_work_mb: lost as f64 / 1e6,
            dirty_lost_ckpt: crashed
                .ppfs_stats
                .map(|s| s.dirty_bytes_lost_checkpointed)
                .unwrap_or(0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::MachineConfig;

    #[test]
    fn durable_cut_of_healthy_full_run_is_final_epoch() {
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(2, 0);
        let out = run_workload_crashable(
            &MachineConfig::tiny(4, 2),
            &cw.workload,
            &Backend::Pfs,
            None,
            None,
            &cw.plan.covered,
        );
        let units = vec![p.iters; p.nodes as usize];
        let cut = durable_cut(&out.trace, &cw.plan, &units, out.report.wall);
        assert_eq!(cut.epoch, cw.plan.epochs);
        assert_eq!(cut.commits_torn, 0);
        assert_eq!(cut.commits_valid, cw.plan.epochs * p.nodes);
        assert_eq!(lost_work_bytes(&out.trace, &cw.plan, &units, cut.epoch), 0);
    }

    #[test]
    fn crash_before_first_commit_recovers_nothing() {
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(3, 0);
        let t = SimTime(1_000_000); // 1 ms: inside phase 1
        let out = run_workload_crashable(
            &MachineConfig::tiny(4, 2),
            &cw.workload,
            &Backend::Pfs,
            None,
            Some(t),
            &cw.plan.covered,
        );
        let units = vec![p.iters; p.nodes as usize];
        let cut = durable_cut(&out.trace, &cw.plan, &units, t);
        assert_eq!(cut.epoch, 0);
        assert_eq!(cut.commits_valid, 0);
    }

    #[test]
    fn ragged_writers_do_not_cap_the_cut() {
        // 4 writers: units 10,10,10,3, interval 4. The short writer's final
        // boundary is epoch 1; once it commits that, epoch 2 can still be
        // globally durable.
        let plan = {
            let mut p = CheckpointPlan::new(9, 5, 4, 4, 10);
            p.covered = vec![1];
            p
        };
        let units = [10u32, 10, 10, 3];
        let tracer = sio_core::Tracer::new("synthetic");
        let mut t = 0u64;
        let commit = |node: u32, epoch: u32, now: &mut u64| {
            let off = plan.slot_offset(epoch, node);
            tracer.record(
                IoEvent::new(node, plan.file, IoOp::Write)
                    .extent(off, plan.record_bytes)
                    .span(*now, *now + 10),
            );
            tracer.record(IoEvent::new(node, plan.file, IoOp::Flush).span(*now + 10, *now + 20));
            *now += 30;
        };
        for node in 0..4u32 {
            commit(node, 1, &mut t);
        }
        for node in 0..3u32 {
            commit(node, 2, &mut t);
        }
        let tr = tracer.finish();
        let cut = durable_cut(&tr, &plan, &units, SimTime(t));
        assert_eq!(cut.epoch, 2);
    }

    #[test]
    fn unsynced_commit_is_torn_and_rejected() {
        let plan = CheckpointPlan::new(9, 5, 1, 4, 8);
        let units = [8u32];
        let tracer = sio_core::Tracer::new("synthetic");
        // Epoch 1: write + sync. Epoch 2: write completed, sync never did.
        tracer.record(
            IoEvent::new(0, 9, IoOp::Write)
                .extent(plan.slot_offset(1, 0), plan.record_bytes)
                .span(0, 10),
        );
        tracer.record(IoEvent::new(0, 9, IoOp::Flush).span(10, 20));
        tracer.record(
            IoEvent::new(0, 9, IoOp::Write)
                .extent(plan.slot_offset(2, 0), plan.record_bytes)
                .span(100, 110),
        );
        let tr = tracer.finish();
        let cut = durable_cut(&tr, &plan, &units, SimTime(112));
        assert_eq!(cut.epoch, 1);
        assert_eq!(cut.commits_valid, 1);
        assert_eq!(cut.commits_torn, 1);
    }
}

//! # sio-analysis — regenerating the paper's tables and figures
//!
//! Everything the paper's evaluation reports is reproduced here from
//! simulated traces:
//!
//! * [`optable`] — operation-summary tables (count / volume / node time /
//!   % I/O time): Tables 1, 3, and 5;
//! * [`sizetable`] — request-size histograms with the paper's bins: Tables
//!   2, 4, and 6;
//! * [`figures`] — timeline series (CSV + ASCII): Figures 2–17;
//! * [`compare`] — the paper's reference numbers and shape checks
//!   (who dominates, by roughly what factor);
//! * [`experiments`] — one driver per experiment in DESIGN.md's index,
//!   used by the `repro` binary, the integration tests, and the benches;
//! * [`recovery`] — the X5 crash/recovery orchestration and durable-cut
//!   analysis, and [`burst`] — the X7 burst-buffer sweep putting the
//!   `sio-blog` log tier in front of each backend and measuring commit
//!   latency, time-to-recovery, and lost work against going direct;
//! * [`chaos`] — the X8 chaos campaign engine: seeded randomized fault
//!   sweeps composing disk, node, link, and metadata faults across every
//!   registered backend, with per-cell liveness, typed-fault,
//!   byte-conservation, durable-cut, and trace invariants;
//! * [`runner`] — the parallel sweep executor: every experiment sweep
//!   fans its independent, deterministic simulations out over a bounded
//!   worker pool (`--jobs N` / `SIO_JOBS`), with results in input order;
//! * [`report`] — plain-text table rendering and CSV writers.
//!
//! The `repro` binary (`cargo run -p sio-analysis --bin repro --release`)
//! regenerates every artifact into `results/`.

pub mod burst;
pub mod chaos;
pub mod characterize;
pub mod compare;
pub mod experiments;
pub mod figures;
pub mod optable;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod sizetable;

pub use optable::OpTable;
pub use sizetable::SizeTable;

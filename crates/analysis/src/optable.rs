//! Operation-summary tables (Tables 1, 3, 5).
//!
//! Each row reports, for one operation kind: the number of operations, the
//! byte volume (data bytes for reads/writes, seek distance for seeks, `-`
//! otherwise), the *node time* (sum of the operation durations across all
//! nodes — concurrent operations count in full, exactly as Pablo summed
//! per-node instrumentation), and the percentage of total I/O time.

use sio_core::event::{IoOp, NS_PER_SEC};
use sio_core::trace::Trace;

/// One table row.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    /// Operation kind (`None` for the "All I/O" summary row).
    pub op: Option<IoOp>,
    /// Operation count.
    pub count: u64,
    /// Byte volume (data bytes; seek distance for seeks). `None` renders
    /// as `-` for operations without a meaningful volume.
    pub volume: Option<u64>,
    /// Total node time, seconds.
    pub node_secs: f64,
    /// Share of total I/O node time, percent.
    pub pct_io_time: f64,
}

/// An operation-summary table for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTable {
    /// Trace label the table was computed from.
    pub label: String,
    /// "All I/O" totals row.
    pub total: OpRow,
    /// Per-operation rows, in [`IoOp::ALL`] order, absent ops skipped.
    pub rows: Vec<OpRow>,
}

impl OpTable {
    /// Compute the table from a trace.
    pub fn from_trace(trace: &Trace) -> OpTable {
        let total_time_ns = trace.node_time().max(1);
        let mut rows = Vec::new();
        let mut total_count = 0u64;
        let mut total_volume = 0u64;
        for op in IoOp::ALL {
            let mut count = 0u64;
            let mut volume = 0u64;
            let mut time_ns = 0u64;
            for ev in trace.of_op(op) {
                count += 1;
                volume += ev.bytes;
                time_ns += ev.duration();
            }
            if count == 0 {
                continue;
            }
            total_count += count;
            let has_volume = op.is_data() || op == IoOp::Seek;
            if op.is_data() {
                total_volume += volume;
            }
            rows.push(OpRow {
                op: Some(op),
                count,
                volume: has_volume.then_some(volume),
                node_secs: time_ns as f64 / NS_PER_SEC,
                pct_io_time: 100.0 * time_ns as f64 / total_time_ns as f64,
            });
        }
        OpTable {
            label: trace.meta().label.clone(),
            total: OpRow {
                op: None,
                count: total_count,
                volume: Some(total_volume),
                node_secs: trace.node_time() as f64 / NS_PER_SEC,
                pct_io_time: 100.0,
            },
            rows,
        }
    }

    /// Row for one operation kind, if present.
    pub fn row(&self, op: IoOp) -> Option<&OpRow> {
        self.rows.iter().find(|r| r.op == Some(op))
    }

    /// Node seconds for one operation (0 when absent).
    pub fn secs(&self, op: IoOp) -> f64 {
        self.row(op).map_or(0.0, |r| r.node_secs)
    }

    /// Percent of I/O time for one operation (0 when absent).
    pub fn pct(&self, op: IoOp) -> f64 {
        self.row(op).map_or(0.0, |r| r.pct_io_time)
    }

    /// Count for one operation (0 when absent).
    pub fn count(&self, op: IoOp) -> u64 {
        self.row(op).map_or(0, |r| r.count)
    }

    /// Volume for one operation (0 when absent or volume-less).
    pub fn volume(&self, op: IoOp) -> u64 {
        self.row(op).and_then(|r| r.volume).unwrap_or(0)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<11} {:>10} {:>15} {:>14} {:>10}",
            "Operation", "Count", "Volume(Bytes)", "NodeTime(s)", "% I/O"
        );
        let fmt_row = |out: &mut String, name: &str, r: &OpRow| {
            let vol = r
                .volume
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<11} {:>10} {:>15} {:>14.2} {:>10.2}",
                name, r.count, vol, r.node_secs, r.pct_io_time
            );
        };
        fmt_row(&mut out, "All I/O", &self.total);
        for r in &self.rows {
            fmt_row(&mut out, r.op.unwrap().label(), r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::event::IoEvent;
    use sio_core::trace::{TraceMeta, Tracer};

    fn sample() -> Trace {
        let t = Tracer::new("sample");
        t.record(
            IoEvent::new(0, 1, IoOp::Read)
                .span(0, 2_000_000_000)
                .extent(0, 1000),
        );
        t.record(
            IoEvent::new(1, 1, IoOp::Write)
                .span(0, 6_000_000_000)
                .extent(0, 3000),
        );
        t.record(
            IoEvent::new(0, 1, IoOp::Seek)
                .span(0, 2_000_000_000)
                .extent(0, 500),
        );
        t.finish()
    }

    #[test]
    fn rows_and_percentages() {
        let table = OpTable::from_trace(&sample());
        assert_eq!(table.total.count, 3);
        assert_eq!(table.total.volume, Some(4000)); // seek distance excluded
        assert!((table.total.node_secs - 10.0).abs() < 1e-9);
        assert!((table.pct(IoOp::Write) - 60.0).abs() < 1e-6);
        assert!((table.pct(IoOp::Read) - 20.0).abs() < 1e-6);
        assert_eq!(table.volume(IoOp::Seek), 500);
        assert_eq!(table.count(IoOp::Open), 0);
        assert!(table.row(IoOp::Open).is_none());
    }

    #[test]
    fn render_contains_all_rows() {
        let s = OpTable::from_trace(&sample()).render();
        assert!(s.contains("All I/O"));
        assert!(s.contains("Read"));
        assert!(s.contains("Write"));
        assert!(s.contains("Seek"));
        assert!(!s.contains("Lsize"));
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = Trace::from_parts(TraceMeta::default(), vec![]);
        let table = OpTable::from_trace(&t);
        assert_eq!(table.total.count, 0);
        assert!(table.rows.is_empty());
    }
}

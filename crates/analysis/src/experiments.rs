//! Experiment drivers — one per entry in DESIGN.md's experiment index.
//!
//! Each driver runs the workload(s), derives the paper artifact(s), and
//! returns everything the `repro` binary, the integration tests, and the
//! benches need: tables, figures, paper-vs-measured checks, and shape
//! checks.
//!
//! Every multi-run sweep fans out over [`crate::runner`]: each simulation
//! is an independent pure function of its configuration, so the worker
//! count (`--jobs` / `SIO_JOBS`) affects wall time only — rows come back
//! in input order and are bit-identical to the serial path
//! (`tests/golden_traces.rs`). The `*_jobs` variants take an explicit
//! worker count; the plain functions use [`runner::configured_jobs`].

use crate::compare::{self, Check, ShapeCheck};
use crate::figures::{self, FigureSet};
use crate::optable::OpTable;
use crate::runner;
use crate::sizetable::SizeTable;
use paragon_sim::ionode::QueueDiscipline;
use paragon_sim::{FaultSchedule, MachineConfig, SimDuration, SimTime};
use sio_apps::workload::{
    cyclic_read_kernel, parallel_write_kernel, random_read_kernel, run_workload,
    run_workload_with_faults, sequential_read_kernel, strided_read_kernel, Backend, RunOutput,
};
use sio_apps::{EscatParams, HtfParams, RenderParams};
use sio_core::event::{IoOp, NS_PER_SEC};
use sio_pfs::AccessMode;
use sio_ppfs::PolicyConfig;

/// T1/T2/F2–F5: the ESCAT characterization.
pub struct EscatArtifacts {
    /// The run.
    pub out: RunOutput,
    /// Table 1.
    pub table1: OpTable,
    /// Table 2.
    pub table2: SizeTable,
    /// Figures 2–5.
    pub figures: FigureSet,
    /// Write-burst gaps (Figure 4 spacing analysis).
    pub gaps: Vec<f64>,
    /// Paper-vs-measured count/volume checks.
    pub checks: Vec<Check>,
    /// Qualitative shape checks.
    pub shapes: Vec<ShapeCheck>,
}

/// Run the ESCAT experiment (T1, T2, F2–F5).
pub fn escat(machine: &MachineConfig, params: &EscatParams) -> EscatArtifacts {
    let out = run_workload(machine, &params.workload(), &Backend::Pfs);
    let table1 = OpTable::from_trace(&out.trace);
    let table2 = SizeTable::from_trace(&out.trace);
    // Phase 1 ends when the first staging write begins.
    let init_end = out
        .trace
        .of_op(IoOp::Write)
        .map(|e| e.start)
        .min()
        .unwrap_or(0) as f64
        / NS_PER_SEC;
    let figures = FigureSet::escat(&out.trace, init_end);
    let (_, gaps) = figures::write_burst_gaps(&out.trace, 20.0);
    let checks = [
        compare::escat_table1_checks(&table1),
        compare::escat_table2_checks(&table2),
    ]
    .concat();
    let shapes = compare::escat_shape(&table1, &gaps);
    EscatArtifacts {
        out,
        table1,
        table2,
        figures,
        gaps,
        checks,
        shapes,
    }
}

/// T3/T4/F6–F8: the RENDER characterization.
pub struct RenderArtifacts {
    /// The run.
    pub out: RunOutput,
    /// Table 3.
    pub table3: OpTable,
    /// Table 4.
    pub table4: SizeTable,
    /// Figures 6–8.
    pub figures: FigureSet,
    /// End of the initialization phase (first frame write), seconds.
    pub init_end_secs: f64,
    /// Paper-vs-measured checks.
    pub checks: Vec<Check>,
    /// Shape checks.
    pub shapes: Vec<ShapeCheck>,
}

/// Run the RENDER experiment (T3, T4, F6–F8, X2).
pub fn render(machine: &MachineConfig, params: &RenderParams) -> RenderArtifacts {
    let out = run_workload(machine, &params.workload(), &Backend::Pfs);
    let table3 = OpTable::from_trace(&out.trace);
    let table4 = SizeTable::from_trace(&out.trace);
    let init_end_secs = out
        .trace
        .of_op(IoOp::Write)
        .map(|e| e.start)
        .min()
        .unwrap_or(0) as f64
        / NS_PER_SEC;
    let figures = FigureSet::render(&out.trace);
    let checks = compare::render_table3_checks(&table3);
    let shapes = compare::render_shape(&table3, out.wall_secs(), init_end_secs);
    RenderArtifacts {
        out,
        table3,
        table4,
        figures,
        init_end_secs,
        checks,
        shapes,
    }
}

/// T5/T6/F9–F17: the HTF pipeline characterization.
pub struct HtfArtifacts {
    /// psetup run.
    pub psetup: RunOutput,
    /// pargos run.
    pub pargos: RunOutput,
    /// pscf run.
    pub pscf: RunOutput,
    /// Table 5 (one operation table per phase).
    pub table5: [OpTable; 3],
    /// Table 6 (one size table per phase).
    pub table6: [SizeTable; 3],
    /// Figures 9–17.
    pub figures: FigureSet,
    /// Paper-vs-measured checks.
    pub checks: Vec<Check>,
    /// Shape checks.
    pub shapes: Vec<ShapeCheck>,
}

/// Run the HTF pipeline experiment (T5, T6, F9–F17). The three pipeline
/// programs are characterized independently in the paper, so they run as
/// three parallel jobs.
pub fn htf(machine: &MachineConfig, params: &HtfParams) -> HtfArtifacts {
    let phases = vec![
        params.psetup_workload(),
        params.pargos_workload(),
        params.pscf_workload(),
    ];
    let mut outs = runner::par_map(phases, |_, w| run_workload(machine, &w, &Backend::Pfs));
    let pscf = outs.pop().expect("pscf run");
    let pargos = outs.pop().expect("pargos run");
    let psetup = outs.pop().expect("psetup run");
    let table5 = [
        OpTable::from_trace(&psetup.trace),
        OpTable::from_trace(&pargos.trace),
        OpTable::from_trace(&pscf.trace),
    ];
    let table6 = [
        SizeTable::from_trace(&psetup.trace),
        SizeTable::from_trace(&pargos.trace),
        SizeTable::from_trace(&pscf.trace),
    ];
    let figures = FigureSet::htf(&psetup.trace, &pargos.trace, &pscf.trace);
    let checks = [
        compare::htf_table5_checks(&table5[0], &table5[1], &table5[2]),
        compare::htf_table6_checks(&table6[0], &table6[1], &table6[2]),
    ]
    .concat();
    let shapes = compare::htf_shape(&table5[1], &table5[2]);
    HtfArtifacts {
        psetup,
        pargos,
        pscf,
        table5,
        table6,
        figures,
        checks,
        shapes,
    }
}

/// X1: the §5.2 PPFS experiment — ESCAT on PFS vs PPFS with write-behind +
/// global aggregation.
pub struct PpfsAblation {
    /// ESCAT on the PFS baseline.
    pub pfs: RunOutput,
    /// ESCAT on PPFS (write-behind + aggregation).
    pub ppfs: RunOutput,
    /// Seek + write node time on PFS, seconds.
    pub pfs_write_seek_secs: f64,
    /// Seek + write node time on PPFS, seconds.
    pub ppfs_write_seek_secs: f64,
    /// Improvement factor (PFS / PPFS).
    pub speedup: f64,
    /// Dirty extents the PPFS flush path wrote back.
    pub flush_extents: u64,
    /// Application writes absorbed by the buffer.
    pub writes_buffered: u64,
}

/// Run the PPFS ablation (X1). The baseline and tuned runs are
/// independent, so they fan out as two parallel jobs.
pub fn ppfs_ablation(machine: &MachineConfig, params: &EscatParams) -> PpfsAblation {
    let backends = vec![Backend::Pfs, Backend::Ppfs(PolicyConfig::escat_tuned())];
    let mut outs = runner::par_map(backends, |_, b| {
        run_workload(machine, &params.workload(), &b)
    });
    let ppfs = outs.pop().expect("ppfs run");
    let pfs = outs.pop().expect("pfs run");
    let ws = |out: &RunOutput| -> f64 {
        let t = OpTable::from_trace(&out.trace);
        t.secs(IoOp::Write) + t.secs(IoOp::Seek)
    };
    let pfs_ws = ws(&pfs);
    let ppfs_ws = ws(&ppfs);
    let stats = ppfs.ppfs_stats.expect("ppfs stats");
    PpfsAblation {
        pfs_write_seek_secs: pfs_ws,
        ppfs_write_seek_secs: ppfs_ws,
        speedup: pfs_ws / ppfs_ws.max(1e-9),
        flush_extents: stats.flush_extents,
        writes_buffered: stats.writes_buffered,
        pfs,
        ppfs,
    }
}

/// X3: the §7.2 read-vs-recompute crossover model.
///
/// Reading a precomputed two-electron integral beats recomputing it when
/// `integral_bytes / io_rate < flops_per_integral / flop_rate`. The paper
/// states the break-even at roughly 5–10 MB/s per node for ~500 flops per
/// integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverRow {
    /// Per-node sustained I/O rate, MB/s.
    pub io_rate_mb_s: f64,
    /// Time to read one integral, microseconds.
    pub read_us: f64,
    /// Time to recompute one integral, microseconds.
    pub compute_us: f64,
    /// Whether reading wins at this rate.
    pub io_preferred: bool,
}

/// Sweep per-node I/O rates and report the crossover (X3).
pub fn htf_crossover(
    integral_bytes: f64,
    flops_per_integral: f64,
    flop_rate: f64,
    rates_mb_s: &[f64],
) -> Vec<CrossoverRow> {
    htf_crossover_jobs(
        integral_bytes,
        flops_per_integral,
        flop_rate,
        rates_mb_s,
        runner::configured_jobs(),
    )
}

/// [`htf_crossover`] with an explicit worker count.
pub fn htf_crossover_jobs(
    integral_bytes: f64,
    flops_per_integral: f64,
    flop_rate: f64,
    rates_mb_s: &[f64],
    jobs: usize,
) -> Vec<CrossoverRow> {
    let compute_us = flops_per_integral / flop_rate * 1e6;
    runner::par_map_jobs(jobs, rates_mb_s.to_vec(), |_, r| {
        let read_us = integral_bytes / (r * 1e6) * 1e6;
        CrossoverRow {
            io_rate_mb_s: r,
            read_us,
            compute_us,
            io_preferred: read_us < compute_us,
        }
    })
}

/// The paper's crossover sweep: ~100-byte integrals, 500 flops each, a
/// 20 MFLOPS sustained node.
pub fn htf_crossover_paper() -> Vec<CrossoverRow> {
    htf_crossover(
        100.0,
        500.0,
        20.0e6,
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0],
    )
}

/// A1: access-mode cost ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeRow {
    /// The mode.
    pub mode: AccessMode,
    /// Total write node time, seconds.
    pub write_secs: f64,
    /// Wall time, seconds.
    pub wall_secs: f64,
}

/// Run the access-mode ablation (A1): synchronized parallel writers under
/// every non-collective mode, one parallel job per mode.
pub fn mode_ablation(
    machine: &MachineConfig,
    nodes: u32,
    per_node: u32,
    bytes: u64,
) -> Vec<ModeRow> {
    mode_ablation_jobs(machine, nodes, per_node, bytes, runner::configured_jobs())
}

/// [`mode_ablation`] with an explicit worker count.
pub fn mode_ablation_jobs(
    machine: &MachineConfig,
    nodes: u32,
    per_node: u32,
    bytes: u64,
    jobs: usize,
) -> Vec<ModeRow> {
    let modes: Vec<AccessMode> = AccessMode::ALL
        .into_iter()
        .filter(|m| *m != AccessMode::MGlobal) // M_GLOBAL is read-collective
        .collect();
    runner::par_map_jobs(jobs, modes, |_, mode| {
        let w = parallel_write_kernel(nodes, per_node, bytes, mode);
        let out = run_workload(machine, &w, &Backend::Pfs);
        let t = OpTable::from_trace(&out.trace);
        ModeRow {
            mode,
            write_secs: t.secs(IoOp::Write),
            wall_secs: out.wall_secs(),
        }
    })
}

/// A2: cache/prefetch policy-matrix row.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Workload kernel name.
    pub kernel: &'static str,
    /// Policy name.
    pub policy: &'static str,
    /// Total read node time, seconds.
    pub read_secs: f64,
    /// Whole-read cache-hit count.
    pub reads_hit: u64,
}

/// Run the policy matrix (A2): four access patterns × three policies, one
/// parallel job per cell. The paper's thesis (§8/§10): no single policy
/// wins everywhere.
pub fn policy_matrix(machine: &MachineConfig) -> Vec<PolicyRow> {
    policy_matrix_jobs(machine, runner::configured_jobs())
}

/// [`policy_matrix`] with an explicit worker count.
pub fn policy_matrix_jobs(machine: &MachineConfig, jobs: usize) -> Vec<PolicyRow> {
    let kernels: Vec<(&'static str, sio_apps::Workload)> = vec![
        (
            "sequential",
            sequential_read_kernel(64, 65536, AccessMode::MUnix),
        ),
        ("strided", strided_read_kernel(64, 4096, 262_144)),
        ("random", random_read_kernel(64, 4096, 32 << 20, 11)),
        ("cyclic", cyclic_read_kernel(4, 16, 65536)),
    ];
    let policies: Vec<(&'static str, PolicyConfig)> = vec![
        ("none", PolicyConfig::write_through()),
        ("readahead4", PolicyConfig::readahead(4)),
        ("adaptive4", PolicyConfig::adaptive(4)),
    ];
    let cells: Vec<(&'static str, sio_apps::Workload, &'static str, PolicyConfig)> = kernels
        .iter()
        .flat_map(|(kname, kernel)| {
            policies
                .iter()
                .map(|(pname, policy)| (*kname, kernel.clone(), *pname, *policy))
        })
        .collect();
    runner::par_map_jobs(jobs, cells, |_, (kernel, workload, policy, config)| {
        let out = run_workload(machine, &workload, &Backend::Ppfs(config));
        let t = OpTable::from_trace(&out.trace);
        PolicyRow {
            kernel,
            policy,
            read_secs: t.secs(IoOp::Read),
            reads_hit: out.ppfs_stats.unwrap().reads_hit,
        }
    })
}

/// A3: disk queue-discipline ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueRow {
    /// Discipline.
    pub discipline: QueueDiscipline,
    /// Total read node time, seconds.
    pub read_secs: f64,
    /// Wall seconds.
    pub wall_secs: f64,
}

/// Run the queue-discipline ablation (A3): an offset-scattered concurrent
/// read burst under FIFO vs C-SCAN.
///
/// The kernel issues explicit-offset reads (no seek calls, so nothing
/// throttles the burst) from many nodes against a machine with only two I/O
/// nodes — deep queues are exactly where the discipline matters.
pub fn queue_discipline(machine: &MachineConfig, nodes: u32) -> Vec<QueueRow> {
    queue_discipline_jobs(machine, nodes, runner::configured_jobs())
}

/// [`queue_discipline`] with an explicit worker count (one job per
/// discipline).
pub fn queue_discipline_jobs(machine: &MachineConfig, nodes: u32, jobs: usize) -> Vec<QueueRow> {
    use paragon_sim::program::{IoRequest, ScriptOp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sio_pfs::FileSpec;

    let file_len: u64 = 512 << 20;
    let build = || -> sio_apps::Workload {
        let scripts = (0..nodes)
            .map(|node| {
                let mut rng = StdRng::seed_from_u64(1000 + node as u64);
                let mut ops = vec![
                    ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                    ScriptOp::Barrier(0),
                ];
                for _ in 0..24 {
                    let mut req = IoRequest::read(0, 65536);
                    req.offset = Some(rng.random_range(0..file_len - 65536));
                    ops.push(ScriptOp::Io(req));
                }
                ops
            })
            .collect();
        sio_apps::Workload {
            label: "queue-discipline".to_string(),
            files: vec![FileSpec::input("hot", file_len)],
            scripts,
            groups: Vec::new(),
        }
    };
    let disciplines = vec![
        QueueDiscipline::Fifo,
        QueueDiscipline::CScan,
        QueueDiscipline::Sstf,
    ];
    runner::par_map_jobs(jobs, disciplines, |_, d| {
        let mut m = machine.clone().with_discipline(d);
        m.io_nodes = 2;
        let out = run_workload(&m, &build(), &Backend::Pfs);
        let t = OpTable::from_trace(&out.trace);
        QueueRow {
            discipline: d,
            read_secs: t.secs(IoOp::Read),
            wall_secs: out.wall_secs(),
        }
    })
}

/// S1: ESCAT weak scaling — same per-node quadrature work, growing node
/// counts on the fixed 16-I/O-node machine. The serialized shared-file
/// operations make I/O node-time grow superlinearly: the paper's framing
/// that "input/output is emerging as a major performance bottleneck" for
/// scalable applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleRow {
    /// Compute nodes.
    pub nodes: u32,
    /// Total I/O node time, seconds.
    pub io_secs: f64,
    /// Wall time, seconds.
    pub wall_secs: f64,
    /// I/O share of aggregate node time (io_secs / (wall × nodes)).
    pub io_fraction: f64,
}

/// Run the ESCAT weak-scaling sweep (S1), one parallel job per node count.
pub fn escat_scaling(machine: &MachineConfig, node_counts: &[u32]) -> Vec<ScaleRow> {
    escat_scaling_jobs(machine, node_counts, runner::configured_jobs())
}

/// [`escat_scaling`] with an explicit worker count.
pub fn escat_scaling_jobs(
    machine: &MachineConfig,
    node_counts: &[u32],
    jobs: usize,
) -> Vec<ScaleRow> {
    runner::par_map_jobs(jobs, node_counts.to_vec(), |_, nodes| {
        let mut params = EscatParams::paper();
        params.nodes = nodes;
        let mut m = machine.clone();
        m.compute_nodes = m.compute_nodes.max(nodes);
        let out = run_workload(&m, &params.workload(), &Backend::Pfs);
        let io_secs = out.trace.node_time() as f64 / 1e9;
        let wall_secs = out.wall_secs();
        ScaleRow {
            nodes,
            io_secs,
            wall_secs,
            io_fraction: io_secs / (wall_secs * nodes as f64),
        }
    })
}

/// S2: quadrature-data growth. §5.2: the quadrature volume grows as
/// O(N³) in the number of scattering outcomes; the developers' target
/// (N ≈ 50) means two orders of magnitude more data, at which point
/// "research practice and the behavior of this code would change
/// dramatically were higher performance input/output possible". We scale
/// the number of quadrature records at fixed *total* compute, isolating
/// the I/O growth, and watch the I/O share of the run take over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthRow {
    /// Multiplier on the quadrature record count.
    pub scale: u32,
    /// Total bytes written.
    pub write_volume: u64,
    /// I/O share of aggregate node time.
    pub io_fraction: f64,
    /// Wall seconds.
    pub wall_secs: f64,
}

/// Run the quadrature-growth sweep (S2), one parallel job per scale.
pub fn escat_growth(
    machine: &MachineConfig,
    params: &EscatParams,
    scales: &[u32],
) -> Vec<GrowthRow> {
    escat_growth_jobs(machine, params, scales, runner::configured_jobs())
}

/// [`escat_growth`] with an explicit worker count.
pub fn escat_growth_jobs(
    machine: &MachineConfig,
    params: &EscatParams,
    scales: &[u32],
    jobs: usize,
) -> Vec<GrowthRow> {
    runner::par_map_jobs(jobs, scales.to_vec(), |_, scale| {
        let mut p = params.clone();
        // More integrals: more records per node, same record size.
        p.iters = params.iters * scale;
        p.seek_iters = params.seek_iters * scale;
        // Total compute held fixed (what-if isolating the I/O term).
        p.compute_start = params.compute_start / scale as f64;
        p.compute_end = params.compute_end / scale as f64;
        let out = run_workload(machine, &p.workload(), &Backend::Pfs);
        let t = OpTable::from_trace(&out.trace);
        let io_secs = out.trace.node_time() as f64 / 1e9;
        let wall_secs = out.wall_secs();
        GrowthRow {
            scale,
            write_volume: t.volume(IoOp::Write),
            io_fraction: io_secs / (wall_secs * p.nodes as f64),
            wall_secs,
        }
    })
}

/// M1: application-mix interference (paper §8) — one application's I/O
/// time inflates when another shares the I/O nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MixRow {
    /// Application label.
    pub app: String,
    /// I/O nodes in this configuration.
    pub io_nodes: u32,
    /// Total I/O node time running alone, seconds.
    pub isolated_io_secs: f64,
    /// Total I/O node time in the mix, seconds.
    pub mixed_io_secs: f64,
}

impl MixRow {
    /// mixed / isolated.
    pub fn inflation(&self) -> f64 {
        self.mixed_io_secs / self.isolated_io_secs.max(1e-9)
    }
}

/// Run the workload-mix experiment (M1): ESCAT and HTF-pscf side by side on
/// one machine, sharing the metadata server and I/O nodes.
/// Mix ESCAT and HTF-pscf on machines with the full and a constrained
/// I/O-node count. At the CCSF configuration (16 I/O nodes) the arrays
/// have headroom and interference is mild; constraining the I/O nodes puts
/// the mix into the contention regime.
pub fn workload_mix(
    machine: &MachineConfig,
    escat_params: &EscatParams,
    htf_params: &HtfParams,
) -> Vec<MixRow> {
    workload_mix_jobs(machine, escat_params, htf_params, runner::configured_jobs())
}

/// Which simulation a mix job runs.
#[derive(Debug, Clone, Copy)]
enum MixTask {
    IsoEscat,
    IsoPscf,
    Mixed,
}

/// [`workload_mix`] with an explicit worker count. The two I/O-node
/// configurations × (two isolated runs + one mixed run) flatten into six
/// independent jobs.
pub fn workload_mix_jobs(
    machine: &MachineConfig,
    escat_params: &EscatParams,
    htf_params: &HtfParams,
    jobs: usize,
) -> Vec<MixRow> {
    use sio_apps::mix;
    let w_escat = escat_params.workload();
    let w_pscf = htf_params.pscf_workload();

    let io_secs = |events: &[sio_core::IoEvent]| -> f64 {
        events.iter().map(|e| e.duration()).sum::<u64>() as f64 / 1e9
    };

    let configs = [machine.io_nodes, (machine.io_nodes / 4).max(1)];
    let tasks: Vec<(u32, MixTask)> = configs
        .iter()
        .flat_map(|&io_nodes| {
            [MixTask::IsoEscat, MixTask::IsoPscf, MixTask::Mixed]
                .into_iter()
                .map(move |t| (io_nodes, t))
        })
        .collect();
    let outs = runner::par_map_jobs(jobs, tasks, |_, (io_nodes, task)| {
        let mut m = machine.clone();
        m.io_nodes = io_nodes;
        match task {
            MixTask::IsoEscat => run_workload(&m, &w_escat, &Backend::Pfs),
            MixTask::IsoPscf => run_workload(&m, &w_pscf, &Backend::Pfs),
            MixTask::Mixed => {
                let mixed_w = mix::combine("escat+pscf", &[&w_escat, &w_pscf]);
                let mut big = m.clone();
                big.compute_nodes = big.compute_nodes.max(mixed_w.scripts.len() as u32);
                run_workload(&big, &mixed_w, &Backend::Pfs)
            }
        }
    });

    let mut rows = Vec::new();
    for (c, chunk) in outs.chunks_exact(3).enumerate() {
        let (iso_escat, iso_pscf, mixed) = (&chunk[0], &chunk[1], &chunk[2]);
        let io_nodes = configs[c];
        let parts = [&w_escat, &w_pscf];
        let r_escat = mix::node_range(&parts, 0);
        let r_pscf = mix::node_range(&parts, 1);
        let in_range = |r: &std::ops::Range<u32>| -> Vec<sio_core::IoEvent> {
            mixed
                .trace
                .events()
                .iter()
                .filter(|e| r.contains(&e.node))
                .copied()
                .collect()
        };
        rows.push(MixRow {
            app: "escat".to_string(),
            io_nodes,
            isolated_io_secs: io_secs(iso_escat.trace.events()),
            mixed_io_secs: io_secs(&in_range(&r_escat)),
        });
        rows.push(MixRow {
            app: "htf-pscf".to_string(),
            io_nodes,
            isolated_io_secs: io_secs(iso_pscf.trace.events()),
            mixed_io_secs: io_secs(&in_range(&r_pscf)),
        });
    }
    rows
}

/// B1: two-level buffering (paper §8) — N nodes stream the same file in
/// turn; the server cache at the I/O nodes serves every node after the
/// first from memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelRow {
    /// Server cache blocks per I/O node (0 = client-only baseline).
    pub server_blocks: u32,
    /// Total read node time, seconds.
    pub read_secs: f64,
    /// Server-cache block hits.
    pub server_hits: u64,
}

/// Run the two-level buffering experiment (B1).
pub fn two_level_buffering(machine: &MachineConfig, nodes: u32) -> Vec<TwoLevelRow> {
    two_level_buffering_jobs(machine, nodes, runner::configured_jobs())
}

/// [`two_level_buffering`] with an explicit worker count (one job per
/// server-cache configuration).
pub fn two_level_buffering_jobs(
    machine: &MachineConfig,
    nodes: u32,
    jobs: usize,
) -> Vec<TwoLevelRow> {
    use paragon_sim::program::{IoRequest, ScriptOp};
    use paragon_sim::SimDuration;
    use sio_pfs::FileSpec;

    let reads_per_node = 16u32;
    let bytes = 65_536u64;
    let build = || -> sio_apps::Workload {
        let scripts = (0..nodes)
            .map(|node| {
                // Stagger the nodes so later readers find warm server caches.
                let mut ops = vec![
                    ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                    ScriptOp::Compute(SimDuration::from_millis(1500 * node as u64)),
                ];
                for _ in 0..reads_per_node {
                    ops.push(ScriptOp::Io(IoRequest::read(0, bytes)));
                }
                ops
            })
            .collect();
        sio_apps::Workload {
            label: "two-level".to_string(),
            files: vec![FileSpec::input("shared", reads_per_node as u64 * bytes)],
            scripts,
            groups: Vec::new(),
        }
    };
    runner::par_map_jobs(jobs, vec![0u32, 256], |_, server_blocks| {
        let policy = if server_blocks == 0 {
            PolicyConfig::write_through()
        } else {
            PolicyConfig::two_level(64, server_blocks)
        };
        let out = run_workload(machine, &build(), &Backend::Ppfs(policy));
        let t = OpTable::from_trace(&out.trace);
        let stats = out.ppfs_stats.unwrap();
        TwoLevelRow {
            server_blocks,
            read_secs: t.secs(IoOp::Read),
            server_hits: stats.server_hits,
        }
    })
}

/// A4: RAID-3 degraded-mode read penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaidRow {
    /// Whether a data disk was failed before the run.
    pub degraded: bool,
    /// Total read node time, seconds.
    pub read_secs: f64,
}

/// Run the RAID degraded-mode experiment (A4).
pub fn raid_degraded(machine: &MachineConfig) -> Vec<RaidRow> {
    raid_degraded_jobs(machine, runner::configured_jobs())
}

/// [`raid_degraded`] with an explicit worker count (healthy and degraded
/// runs in parallel).
pub fn raid_degraded_jobs(machine: &MachineConfig, jobs: usize) -> Vec<RaidRow> {
    use paragon_sim::mesh::Mesh;
    use paragon_sim::program::{NodeProgram, ScriptProgram};
    use paragon_sim::Engine;
    use sio_core::trace::TraceSink;
    use sio_pfs::Pfs;

    runner::par_map_jobs(jobs, vec![false, true], |_, degraded| {
        let w = sequential_read_kernel(64, 262_144, AccessMode::MUnix);
        let mut fs = Pfs::new(machine, TraceSink::new("raid"));
        for f in &w.files {
            fs.register(f.clone());
        }
        if degraded {
            for io in 0..machine.io_nodes {
                fs.fail_disk(io, 0)
                    .expect("first failure on a healthy array");
            }
        }
        let programs: Vec<Box<dyn NodeProgram>> = w
            .scripts
            .iter()
            .map(|s| Box::new(ScriptProgram::new(s.clone())) as Box<dyn NodeProgram>)
            .collect();
        let mut engine = Engine::new(
            Mesh::for_nodes(machine.compute_nodes, machine.io_nodes),
            machine.comm,
            programs,
            fs,
        );
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean());
        let trace = engine.into_service().finish_trace();
        let read_ns: u64 = trace.of_op(IoOp::Read).map(|e| e.duration()).sum();
        RaidRow {
            degraded,
            read_secs: read_ns as f64 / NS_PER_SEC,
        }
    })
}

/// X4: one cell of the fault-injection suite (workload × fault scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Workload label (`escat`, `render`, `htf-pscf`, `escat-wb`).
    pub workload: String,
    /// Fault scenario (`healthy`, `degraded`, `rebuild`, `stalls`, `crash`).
    pub scenario: String,
    /// Simulated wall seconds (includes any rebuild tail: the run is over
    /// when the machine is quiet, not when the programs exit).
    pub wall_secs: f64,
    /// Total read node time, seconds.
    pub read_secs: f64,
    /// Total write node time, seconds.
    pub write_secs: f64,
    /// Backoff retries after explicit rejections (PFS path).
    pub retries: u64,
    /// Segments failed over to the buddy node (PFS path).
    pub failovers: u64,
    /// Segments lost to node crashes.
    pub lost_segments: u64,
    /// Requests failed by the per-request deadline.
    pub timeouts: u64,
    /// Background rebuild chunks serviced.
    pub rebuild_chunks: u64,
    /// Member bytes rebuilt, MB.
    pub rebuilt_mb: f64,
    /// Arrays still degraded when the run ended.
    pub degraded_at_end: u32,
    /// Write-behind bytes exposed to an I/O-node crash (PPFS path).
    pub dirty_bytes_lost: u64,
    /// Segments replayed after node recovery (PPFS path).
    pub replayed_segments: u64,
}

/// The canned fault schedule for one X4 scenario (`None` = healthy run,
/// keeping the fault machinery fully dormant). Time-relative scenarios
/// (`stalls`, `crash`) are scaled to `healthy_wall` — the workload's
/// fault-free wall time — so the fault window always overlaps the
/// workload's actual I/O, whatever its scale. Events landing after the
/// faulted run finishes are deterministic no-ops.
pub fn fault_scenario_schedule(
    name: &str,
    io_nodes: u32,
    seed: u64,
    healthy_wall: SimTime,
) -> Option<FaultSchedule> {
    let wall = healthy_wall.nanos().max(1);
    let mut s = FaultSchedule::new();
    match name {
        "healthy" => return None,
        // Every array loses one member before the first request: the whole
        // run pays the degraded-read reconstruction penalty.
        "degraded" => s = FaultSchedule::all_disks_fail(SimTime::ZERO, io_nodes, 0),
        // As above, but a hot spare arrives at t=1s: background rebuild
        // traffic competes with foreground requests at member spindle rate
        // until every array heals (~546 s of member time per array).
        "rebuild" => {
            s = FaultSchedule::all_disks_fail(SimTime::ZERO, io_nodes, 0);
            for io in 0..io_nodes {
                s.disk_repair(SimTime(1_000_000_000), io);
            }
        }
        // Seeded background flakiness: 24 two-second server stalls scattered
        // over the whole (healthy) duration of the run.
        "stalls" => {
            s = FaultSchedule::scattered_stalls(
                seed,
                io_nodes,
                24,
                SimDuration(wall),
                SimDuration::from_secs(2),
            );
        }
        // I/O node 0 crashes a quarter of the way into the run and returns
        // at the halfway mark: in-flight segments are lost, PFS retries
        // then fails over to the buddy node, PPFS parks write-behind
        // segments for replay.
        "crash" => {
            s.node_crash(SimTime(wall / 4), 0);
            s.node_recover(SimTime(wall / 2), 0);
        }
        // Write-behind exposure: the node goes down three quarters of the
        // way in and stays down past the healthy end of the run, so the
        // close-driven flush tail finds it dead — dirty segments park and
        // replay on recovery instead of completing in place.
        "wb-crash" => {
            s.node_crash(SimTime(wall * 3 / 4), 0);
            s.node_recover(SimTime(wall * 3 / 2), 0);
        }
        other => panic!("unknown fault scenario '{other}'"),
    }
    Some(s)
}

/// Run the fault-injection suite (X4): ESCAT, RENDER, and HTF-pscf on PFS
/// under every canned scenario, plus ESCAT on PPFS write-behind under a
/// crash (the dirty-data exposure case).
pub fn fault_suite(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
) -> Vec<FaultRow> {
    fault_suite_jobs(machine, escat, render, htf, runner::configured_jobs())
}

/// [`fault_suite`] with an explicit worker count (one job per cell; rows
/// come back in canonical order and are worker-count invariant).
///
/// Two fan-out phases: the healthy baselines run first (they are the
/// suite's `healthy` rows *and* supply each workload's wall time), then
/// every faulted cell runs with its schedule scaled to that wall, so the
/// crash and stall windows always land inside the run they perturb.
pub fn fault_suite_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    jobs: usize,
) -> Vec<FaultRow> {
    const WORKLOADS: [&str; 4] = ["escat", "render", "htf-pscf", "escat-wb"];
    const PFS_FAULTED: [&str; 4] = ["degraded", "rebuild", "stalls", "crash"];

    let run_cell = |wname: &str, scenario: &str, schedule: Option<&FaultSchedule>| {
        let (workload, backend) = match wname {
            "escat" => (escat.workload(), Backend::Pfs),
            "render" => (render.workload(), Backend::Pfs),
            "htf-pscf" => (htf.pscf_workload(), Backend::Pfs),
            "escat-wb" => (escat.workload(), Backend::Ppfs(PolicyConfig::escat_tuned())),
            other => panic!("unknown fault workload '{other}'"),
        };
        let out = run_workload_with_faults(machine, &workload, &backend, schedule);
        let t = OpTable::from_trace(&out.trace);
        let pf = out.pfs_faults.unwrap_or_default();
        let ps = out.ppfs_stats.unwrap_or_default();
        let row = FaultRow {
            workload: wname.to_string(),
            scenario: scenario.to_string(),
            wall_secs: out.wall_secs(),
            read_secs: t.secs(IoOp::Read),
            write_secs: t.secs(IoOp::Write),
            retries: pf.retries,
            failovers: pf.failovers,
            lost_segments: pf.lost_segments,
            timeouts: pf.timeouts,
            rebuild_chunks: out.rebuild.0,
            rebuilt_mb: out.rebuild.1 as f64 / 1e6,
            degraded_at_end: out.degraded_nodes,
            dirty_bytes_lost: ps.dirty_bytes_lost,
            replayed_segments: ps.replayed_segments,
        };
        (row, out.report.wall)
    };

    // Phase 1: healthy baselines.
    let healthy = runner::par_map_jobs(jobs, WORKLOADS.to_vec(), |_, wname| {
        run_cell(wname, "healthy", None)
    });
    let wall_of =
        |wname: &str| -> SimTime { healthy[WORKLOADS.iter().position(|w| *w == wname).unwrap()].1 };

    // Phase 2: faulted cells, schedules scaled to the healthy wall.
    let mut cases: Vec<(&str, &str)> = Vec::new();
    for w in ["escat", "render", "htf-pscf"] {
        for s in PFS_FAULTED {
            cases.push((w, s));
        }
    }
    cases.push(("escat-wb", "crash"));
    let faulted = runner::par_map_jobs(jobs, cases.clone(), |_, (wname, scenario)| {
        // The write-behind cell needs the crash to overlap its flush tail.
        let sname = if wname == "escat-wb" {
            "wb-crash"
        } else {
            scenario
        };
        let schedule =
            fault_scenario_schedule(sname, machine.io_nodes, machine.seed, wall_of(wname));
        run_cell(wname, scenario, schedule.as_ref()).0
    });

    // Canonical order: per workload, healthy first, then the faulted
    // scenarios in schedule order.
    let mut by_case: std::collections::HashMap<(&str, &str), FaultRow> =
        cases.iter().copied().zip(faulted).collect();
    let mut rows = Vec::with_capacity(WORKLOADS.len() + by_case.len());
    for (i, wname) in WORKLOADS.iter().enumerate() {
        rows.push(healthy[i].0.clone());
        let scenarios: &[&str] = if *wname == "escat-wb" {
            &["crash"]
        } else {
            &PFS_FAULTED
        };
        for s in scenarios {
            rows.push(by_case.remove(&(*wname, *s)).expect("cell ran"));
        }
    }
    rows
}

/// X6: one cell of the collective-I/O comparison (workload × scale ×
/// backend).
#[derive(Debug, Clone, PartialEq)]
pub struct CioRow {
    /// Workload label (`escat`, `render`, `htf-pint`).
    pub workload: String,
    /// Backend name (`pfs`, `ppfs`, `cio`).
    pub backend: String,
    /// Compute nodes the workload ran on.
    pub nodes: u32,
    /// Simulated end-to-end wall seconds.
    pub wall_secs: f64,
    /// Mean accepted write requests per I/O node.
    pub write_reqs_per_io: f64,
    /// Mean accepted write-request size, KB.
    pub mean_write_kb: f64,
    /// Mean accepted read requests per I/O node.
    pub read_reqs_per_io: f64,
    /// Mean accepted read-request size, KB.
    pub mean_read_kb: f64,
    /// Summed extent-exchange delay, seconds (CIO only; 0 elsewhere).
    pub exchange_secs: f64,
    /// Multi-member collectives dispatched (CIO only; 0 elsewhere).
    pub collectives: u64,
}

/// The X6 cell grid: workloads × scales × backends, in canonical order.
fn cio_cases(scales: &[u32]) -> Vec<(&'static str, u32, &'static str)> {
    let mut cases = Vec::new();
    for w in ["escat", "render", "htf-pint"] {
        for &n in scales {
            for b in ["pfs", "ppfs", "cio"] {
                cases.push((w, n, b));
            }
        }
    }
    cases
}

/// Run the collective-I/O comparison (X6): ESCAT, RENDER, and the HTF
/// shared-integrals phase on PFS, PPFS, and CIO at each node scale,
/// reporting per-I/O-node request counts, mean accepted request sizes, and
/// end-to-end time. The interleaved shared-file write phases (ESCAT
/// staging, HTF pint) are where two-phase aggregation pays; RENDER's
/// gateway-funneled I/O is the control — its singleton collectives buy
/// nothing.
pub fn cio_suite(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    scales: &[u32],
) -> Vec<CioRow> {
    cio_suite_jobs(
        machine,
        escat,
        render,
        htf,
        scales,
        runner::configured_jobs(),
    )
}

/// [`cio_suite`] with an explicit worker count (one job per cell; rows come
/// back in canonical order and are worker-count invariant). Each scale
/// reuses the given params with the node count overridden, so the per-node
/// work shape stays fixed while membership grows.
pub fn cio_suite_jobs(
    machine: &MachineConfig,
    escat: &EscatParams,
    render: &RenderParams,
    htf: &HtfParams,
    scales: &[u32],
    jobs: usize,
) -> Vec<CioRow> {
    let cases = cio_cases(scales);
    runner::par_map_jobs(jobs, cases, |_, (wname, nodes, bname)| {
        let workload = match wname {
            "escat" => EscatParams {
                nodes,
                ..escat.clone()
            }
            .interleaved_workload(),
            "render" => RenderParams {
                nodes,
                ..render.clone()
            }
            .workload(),
            "htf-pint" => HtfParams {
                nodes,
                ..htf.clone()
            }
            .pint_workload(),
            other => panic!("unknown cio workload '{other}'"),
        };
        let backend = Backend::parse(bname).expect("known backend");
        let out = run_workload(machine, &workload, &backend);
        let io_nodes = out.node_loads.len().max(1) as f64;
        let (wr, wb, rr, rb) = out.node_loads.iter().fold((0, 0, 0, 0), |acc, l| {
            (
                acc.0 + l.write_reqs,
                acc.1 + l.write_bytes,
                acc.2 + l.read_reqs,
                acc.3 + l.read_bytes,
            )
        });
        let cs = out.cio.unwrap_or_default();
        CioRow {
            workload: wname.to_string(),
            backend: bname.to_string(),
            nodes,
            wall_secs: out.wall_secs(),
            write_reqs_per_io: wr as f64 / io_nodes,
            mean_write_kb: wb as f64 / wr.max(1) as f64 / 1024.0,
            read_reqs_per_io: rr as f64 / io_nodes,
            mean_read_kb: rb as f64 / rr.max(1) as f64 / 1024.0,
            exchange_secs: cs.exchange.as_secs_f64(),
            collectives: cs.collectives,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    #[test]
    fn escat_small_end_to_end() {
        let a = escat(&tiny(), &EscatParams::small(4, 6));
        assert_eq!(a.table1.count(IoOp::Write), 54); // 4*6*2 + 6
        assert_eq!(a.figures.figures.len(), 4);
        assert!(!a.checks.is_empty());
        // Small run: counts differ from paper, checks may fail — but the
        // write/seek dominance shape should already hold.
        assert!(a.shapes.iter().any(|s| s.claim.contains("dominate")));
    }

    #[test]
    fn render_small_end_to_end() {
        let a = render(&tiny(), &RenderParams::small(4, 3));
        assert_eq!(a.figures.figures.len(), 3);
        assert!(a.init_end_secs > 0.0);
        assert_eq!(
            a.table3.count(IoOp::IoWait),
            a.table3.count(IoOp::AsyncRead)
        );
    }

    #[test]
    fn htf_small_end_to_end() {
        let a = htf(&tiny(), &HtfParams::small(4));
        assert_eq!(a.figures.figures.len(), 9);
        // pargos writes more than it reads; pscf the reverse.
        assert!(a.table5[1].volume(IoOp::Write) > a.table5[1].volume(IoOp::Read));
        assert!(a.table5[2].volume(IoOp::Read) > a.table5[2].volume(IoOp::Write));
    }

    #[test]
    fn ppfs_ablation_improves_write_seek_time() {
        let r = ppfs_ablation(&tiny(), &EscatParams::small(4, 8));
        assert!(
            r.speedup > 2.0,
            "write-behind+aggregation speedup only {:.2}x ({} -> {} s)",
            r.speedup,
            r.pfs_write_seek_secs,
            r.ppfs_write_seek_secs
        );
        assert!(r.writes_buffered > 0);
        assert!(r.flush_extents > 0);
    }

    #[test]
    fn crossover_lands_in_papers_band() {
        let rows = htf_crossover_paper();
        // Find the lowest rate where reading wins.
        let first_win = rows.iter().find(|r| r.io_preferred).unwrap();
        assert!(
            (2.0..=10.0).contains(&first_win.io_rate_mb_s),
            "crossover at {} MB/s",
            first_win.io_rate_mb_s
        );
        // Below the crossover, recomputation is preferred.
        assert!(!rows[0].io_preferred);
        assert!(rows.last().unwrap().io_preferred);
    }

    #[test]
    fn mode_ablation_ranks_coordination_costs() {
        let rows = mode_ablation(&tiny(), 4, 4, 2048);
        assert_eq!(rows.len(), 5);
        let get = |m: AccessMode| rows.iter().find(|r| r.mode == m).unwrap().write_secs;
        // M_SYNC writes block for their node-order turn, so their measured
        // durations exceed the uncoordinated M_ASYNC writes.
        assert!(get(AccessMode::MAsync) <= get(AccessMode::MSync));
        // M_LOG serializes on the shared-pointer token: at least as slow as
        // M_ASYNC too.
        assert!(get(AccessMode::MAsync) <= get(AccessMode::MLog) * 1.01);
    }

    #[test]
    fn policy_matrix_shows_no_single_winner() {
        let rows = policy_matrix(&tiny());
        assert_eq!(rows.len(), 12);
        let time = |k: &str, p: &str| {
            rows.iter()
                .find(|r| r.kernel == k && r.policy == p)
                .unwrap()
                .read_secs
        };
        // Readahead helps sequential...
        assert!(time("sequential", "readahead4") < time("sequential", "none"));
        // ...but is not helpful (or harmful) for random: adaptive matches
        // or beats readahead there by staying quiet.
        assert!(time("random", "adaptive4") <= time("random", "readahead4") * 1.05);
    }

    #[test]
    fn queue_discipline_cscan_and_sstf_not_worse() {
        let rows = queue_discipline(&tiny(), 4);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].wall_secs <= rows[0].wall_secs * 1.02, "cscan");
        assert!(rows[2].wall_secs <= rows[0].wall_secs * 1.02, "sstf");
    }

    #[test]
    fn escat_scaling_io_grows_superlinearly() {
        let mut m = tiny();
        m.compute_nodes = 16;
        let rows = escat_scaling(&m, &[4, 16]);
        assert_eq!(rows.len(), 2);
        // 4x the nodes, same per-node work: I/O node time grows by more
        // than 4x (serialized shared-file operations).
        let ratio = rows[1].io_secs / rows[0].io_secs;
        assert!(ratio > 4.0, "io time ratio {ratio}");
    }

    #[test]
    fn escat_growth_shifts_share_to_io() {
        let rows = escat_growth(&tiny(), &EscatParams::small(4, 5), &[1, 16]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].write_volume > rows[0].write_volume * 10);
        assert!(
            rows[1].io_fraction > rows[0].io_fraction,
            "io share did not grow: {rows:?}"
        );
    }

    #[test]
    fn workload_mix_shows_interference() {
        let rows = workload_mix(&tiny(), &EscatParams::small(4, 5), &HtfParams::small(4));
        assert_eq!(rows.len(), 4);
        // At least one application pays for the contention.
        assert!(
            rows.iter().any(|r| r.inflation() > 1.01),
            "no interference: {rows:?}"
        );
    }

    #[test]
    fn two_level_buffering_helps_later_readers() {
        let rows = two_level_buffering(&tiny(), 4);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].server_hits, 0);
        assert!(rows[1].server_hits >= 16, "hits {}", rows[1].server_hits);
        assert!(
            rows[1].read_secs < rows[0].read_secs,
            "two-level {} !< baseline {}",
            rows[1].read_secs,
            rows[0].read_secs
        );
    }

    #[test]
    fn fault_suite_small_is_clean_and_ordered() {
        let rows = fault_suite(
            &tiny(),
            &EscatParams::small(4, 4),
            &RenderParams::small(4, 2),
            &HtfParams::small(4),
        );
        assert_eq!(rows.len(), 17);
        let get = |w: &str, s: &str| -> &FaultRow {
            rows.iter()
                .find(|r| r.workload == w && r.scenario == s)
                .expect("row present")
        };
        // Healthy rows keep the fault machinery fully dormant.
        for w in ["escat", "render", "htf-pscf"] {
            let h = get(w, "healthy");
            assert_eq!(h.retries + h.failovers + h.lost_segments + h.timeouts, 0);
            assert_eq!(h.rebuild_chunks, 0);
            assert_eq!(h.degraded_at_end, 0);
        }
        // Degraded arrays slow the read-heavy pipeline phase down.
        assert!(get("htf-pscf", "degraded").read_secs > get("htf-pscf", "healthy").read_secs);
        assert_eq!(get("htf-pscf", "degraded").degraded_at_end, 2);
        // The rebuild scenario actually rebuilds — timed, not instantaneous:
        // the wall extends to the member-capacity / spindle-rate heal time.
        let reb = get("escat", "rebuild");
        assert!(reb.rebuild_chunks > 0);
        assert_eq!(reb.degraded_at_end, 0);
        assert!(
            reb.wall_secs > 500.0,
            "rebuild tail missing: {}",
            reb.wall_secs
        );
    }

    #[test]
    fn raid_degraded_costs_more() {
        let rows = raid_degraded(&tiny());
        assert!(rows[1].read_secs > rows[0].read_secs);
    }

    #[test]
    fn cio_suite_small_shows_aggregation_on_interleaved_writes() {
        let m = MachineConfig::tiny(8, 4);
        let rows = cio_suite(
            &m,
            &EscatParams::small(8, 4),
            &RenderParams::small(8, 2),
            &HtfParams::small(8),
            &[4, 8],
        );
        // 3 workloads x 2 scales x 3 backends, canonical order.
        assert_eq!(rows.len(), 18);
        let get = |w: &str, n: u32, b: &str| -> &CioRow {
            rows.iter()
                .find(|r| r.workload == w && r.nodes == n && r.backend == b)
                .expect("row present")
        };
        assert_eq!(
            (
                rows[0].workload.as_str(),
                rows[0].nodes,
                rows[0].backend.as_str()
            ),
            ("escat", 4, "pfs")
        );
        // Two-phase aggregation pays on the interleaved shared-file write
        // phases: fewer, larger accepted requests per I/O node.
        for w in ["escat", "htf-pint"] {
            let pfs = get(w, 8, "pfs");
            let cio = get(w, 8, "cio");
            assert!(
                cio.mean_write_kb >= 4.0 * pfs.mean_write_kb,
                "{w}: cio {} KB vs pfs {} KB",
                cio.mean_write_kb,
                pfs.mean_write_kb
            );
            assert!(cio.write_reqs_per_io < pfs.write_reqs_per_io);
            assert!(cio.exchange_secs > 0.0);
            assert!(cio.collectives > 0);
        }
        // RENDER funnels I/O through gateways, so its collectives are all
        // singletons: no exchange delay, request shape unchanged vs PFS.
        let rc = get("render", 8, "cio");
        assert_eq!(rc.collectives, 0);
        assert_eq!(rc.exchange_secs, 0.0);
        // Non-CIO backends report no collective machinery at all.
        for r in rows.iter().filter(|r| r.backend != "cio") {
            assert_eq!(r.collectives, 0);
            assert_eq!(r.exchange_secs, 0.0);
        }
    }
}

//! Parallel sweep executor for deterministic simulations.
//!
//! Every experiment sweep in [`crate::experiments`] runs a set of
//! *independent, deterministic* simulations — each `run_workload` call is a
//! pure function of its configuration (`tests/determinism.rs`), so fanning
//! the sweep out across a bounded worker pool changes nothing but wall
//! time. This module is the one place that fan-out happens:
//!
//! * [`par_map`] / [`par_map_jobs`] — map a function over a job list on a
//!   bounded pool of scoped worker threads, returning results **in input
//!   order** regardless of completion order;
//! * [`try_par_map_jobs`] — same, but a panicking job surfaces as a
//!   [`JobPanic`] error instead of tearing down the process, without
//!   poisoning or deadlocking the pool;
//! * [`set_jobs`] / [`configured_jobs`] — the process-wide worker-count
//!   knob, fed by `--jobs N` on the `repro` binary or the `SIO_JOBS`
//!   environment variable (default: available hardware parallelism).
//!
//! Determinism contract: the pool only controls *where* a job executes.
//! Job `i` always receives index `i` and its own input, results are stored
//! by index, and no state is shared between jobs, so the output of
//! `par_map_jobs(n, items, f)` is bit-identical for every `n ≥ 1`
//! (`tests/parallel_determinism.rs` and `tests/golden_traces.rs` pin this).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A job panicked during a parallel sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Input-order index of the first panicking job.
    pub index: usize,
    /// Rendered panic payload.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Result alias for fallible sweeps.
pub type Result<T> = std::result::Result<T, JobPanic>;

/// Process-wide worker-count override; 0 means "unset, use the default".
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Default worker count: `SIO_JOBS` if set to a positive integer, else the
/// host's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("SIO_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("[runner] ignoring invalid SIO_JOBS={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Set the process-wide worker count (the `repro --jobs N` knob).
/// `0` clears the override back to [`default_jobs`].
pub fn set_jobs(jobs: usize) {
    CONFIGURED_JOBS.store(jobs, Ordering::Relaxed);
}

/// Worker count sweeps use when none is passed explicitly.
pub fn configured_jobs() -> usize {
    match CONFIGURED_JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// Map `f` over `items` on up to [`configured_jobs`] workers; results in
/// input order. Panics if a job panics (see [`try_par_map_jobs`] to handle
/// that as an error).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_jobs(configured_jobs(), items, f)
}

/// Map `f` over `items` on up to `jobs` workers; results in input order.
/// Panics with the first job's panic message if any job panics.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    match try_par_map_jobs(jobs, items, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Map `f` over `items` on a bounded pool of `jobs` scoped worker threads.
///
/// * Results are returned in **input order**, regardless of which worker
///   finishes first: worker threads claim indices from a shared cursor and
///   store each result in its input slot.
/// * `jobs` is clamped to `1..=items.len()`; `jobs <= 1` (and the
///   single-item case) runs on the calling thread with identical
///   semantics, including panic capture.
/// * A panicking job is caught on its worker; the remaining jobs still
///   run, the pool joins cleanly (no deadlock, no poisoned locks — item
///   and result locks are never held across `f`), and the error reports
///   the **first panicking index in input order** with its payload.
/// * A worker-thread *spawn* failure (OS resource exhaustion) is not
///   fatal: the pool degrades to however many workers did spawn — serial
///   on the calling thread at worst — with a logged warning. The calling
///   thread always participates, so the sweep completes even when every
///   spawn fails; an error return is reserved for panicking jobs.
pub fn try_par_map_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // Take the item and drop the slot lock *before* running the job,
        // so a panic inside `f` can never poison shared state.
        let item = slots[i]
            .lock()
            .expect("item slot lock")
            .take()
            .expect("each index is claimed exactly once");
        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)));
        *results[i].lock().expect("result slot lock") = Some(outcome);
    };

    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            // Spawn `jobs - 1` helpers; the calling thread is the last
            // worker. If the OS refuses a thread (fd/memory exhaustion),
            // degrade to the workers already running instead of killing
            // the whole sweep — correctness never depends on pool width,
            // only wall time does.
            for w in 1..jobs {
                if let Err(e) = spawn_scoped_worker(scope, w, &worker) {
                    eprintln!(
                        "[runner] worker spawn failed ({e}); \
                         degrading sweep to {w} of {jobs} workers"
                    );
                    break;
                }
            }
            worker();
        });
    }

    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<JobPanic> = None;
    for (index, cell) in results.into_iter().enumerate() {
        let outcome = cell
            .into_inner()
            .expect("result slot lock")
            .expect("every index was executed");
        match outcome {
            Ok(r) => out.push(r),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(JobPanic {
                        index,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
    match first_panic {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Spawn one pool worker on a scoped thread, reporting OS failure as a
/// typed `io::Error` instead of panicking (the `Scope::spawn` default).
/// Tests inject failures through [`FORCED_SPAWN_FAILURES`] to pin the
/// degradation path.
fn spawn_scoped_worker<'scope, F>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    index: usize,
    worker: &'scope F,
) -> std::io::Result<()>
where
    F: Fn() + Sync,
{
    if take_forced_spawn_failure() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "forced spawn failure (test hook)",
        ));
    }
    std::thread::Builder::new()
        .name(format!("sweep-{index}"))
        .spawn_scoped(scope, worker)
        .map(|_| ())
}

/// Remaining forced spawn failures (test hook; always zero in production).
static FORCED_SPAWN_FAILURES: AtomicUsize = AtomicUsize::new(0);

/// Make the next `n` worker spawns fail as if the OS were out of threads.
#[doc(hidden)]
pub fn force_spawn_failures(n: usize) {
    FORCED_SPAWN_FAILURES.store(n, Ordering::Relaxed);
}

fn take_forced_spawn_failure() -> bool {
    FORCED_SPAWN_FAILURES
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Run a batch of heterogeneous tasks (e.g. the `repro all` experiment
/// drivers) on up to `jobs` workers.
pub fn par_run<'a>(jobs: usize, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
    par_map_jobs(jobs, tasks, |_, task| task());
}

/// Render a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Silence the default panic hook while intentionally panicking jobs
    /// run (worker threads are not output-captured by the test harness);
    /// restores default printing on drop. Swaps are serialized.
    fn quiet_panics() -> impl Drop {
        use std::sync::MutexGuard;
        static HOOK: Mutex<()> = Mutex::new(());
        struct Restore(Option<MutexGuard<'static, ()>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let _ = std::panic::take_hook();
                self.0.take();
            }
        }
        let guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        std::panic::set_hook(Box::new(|_| {}));
        Restore(Some(guard))
    }

    #[test]
    fn maps_in_input_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map_jobs(jobs, (0..50u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(
                out,
                (0..50u64).map(|x| x * x).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_jobs(8, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_serial() {
        let out = par_map_jobs(0, vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn panic_surfaces_as_error_with_first_index() {
        let _quiet = quiet_panics();
        let err = try_par_map_jobs(4, (0..20).collect::<Vec<u32>>(), |_, x| {
            if x % 7 == 3 {
                panic!("boom at {x}");
            }
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 3);
        assert!(err.message.contains("boom at 3"), "{}", err.message);
    }

    #[test]
    fn pool_survives_panics_and_completes_other_jobs() {
        // A panicking job must not prevent later jobs from running.
        let _quiet = quiet_panics();
        let done = AtomicUsize::new(0);
        let err = try_par_map_jobs(2, (0..10).collect::<Vec<u32>>(), |_, x| {
            if x == 0 {
                panic!("first job dies");
            }
            done.fetch_add(1, Ordering::Relaxed);
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 0);
        assert_eq!(done.load(Ordering::Relaxed), 9);
    }

    /// Serializes the tests that poke the process-global forced-failure
    /// counter, so the parallel test harness cannot interleave them.
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spawn_failure_degrades_to_fewer_workers() {
        let _serial = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // First spawn attempt fails: the pool proceeds with the calling
        // thread plus whatever spawned (here: calling thread only), and
        // the sweep still completes with bit-identical results.
        force_spawn_failures(1);
        let out = par_map_jobs(4, (0..40u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..40u64).map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(FORCED_SPAWN_FAILURES.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn total_spawn_failure_still_completes_serially() {
        let _serial = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Every spawn fails: serial execution on the calling thread, and
        // job panics still surface as the typed error, not a process kill.
        let _quiet = quiet_panics();
        force_spawn_failures(usize::MAX);
        let out = par_map_jobs(8, (0..10u32).collect(), |_, x| x + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        let err = try_par_map_jobs(8, (0..10u32).collect(), |_, x| {
            if x == 4 {
                panic!("job blew up");
            }
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 4);
        force_spawn_failures(0);
    }

    #[test]
    fn configured_jobs_round_trips() {
        // Serialized via the env-var-free path: set, read, clear.
        set_jobs(3);
        assert_eq!(configured_jobs(), 3);
        set_jobs(0);
        assert!(configured_jobs() >= 1);
    }

    #[test]
    fn par_run_executes_every_task() {
        use std::sync::atomic::AtomicU32;
        static HITS: AtomicU32 = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..5)
            .map(|_| {
                Box::new(|| {
                    HITS.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        par_run(3, tasks);
        assert_eq!(HITS.load(Ordering::Relaxed), 5);
    }
}

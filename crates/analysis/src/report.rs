//! Plain-text report rendering and file output helpers.

use crate::compare::{Check, ShapeCheck};
use std::io::Write as _;
use std::path::Path;

/// A titled text section.
pub fn section(title: &str, body: &str) -> String {
    let bar = "=".repeat(title.len().max(8));
    format!("{title}\n{bar}\n{body}\n")
}

/// Render a list of paper-vs-measured checks.
pub fn render_checks(checks: &[Check]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&c.render());
        out.push('\n');
    }
    let passed = checks.iter().filter(|c| c.pass()).count();
    out.push_str(&format!("-- {passed}/{} within tolerance\n", checks.len()));
    out
}

/// Render a list of shape checks.
pub fn render_shapes(shapes: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for s in shapes {
        out.push_str(&s.render());
        out.push('\n');
    }
    let passed = shapes.iter().filter(|s| s.pass).count();
    out.push_str(&format!("-- {passed}/{} shape claims hold\n", shapes.len()));
    out
}

/// Write a text report to `dir/<name>.txt` (creating `dir`).
pub fn write_text(dir: &Path, name: &str, body: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.txt")))?;
    f.write_all(body.as_bytes())
}

/// Write CSV rows (`header` then `rows`) to `dir/<name>.csv`.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::Check;

    #[test]
    fn section_renders() {
        let s = section("Title", "body");
        assert!(s.contains("Title\n====="));
        assert!(s.ends_with("body\n"));
    }

    #[test]
    fn checks_summary_counts() {
        let checks = vec![
            Check::new("a", 1.0, 1.0, 0.0),
            Check::new("b", 1.0, 2.0, 0.0),
        ];
        let s = render_checks(&checks);
        assert!(s.contains("-- 1/2 within tolerance"));
    }

    #[test]
    fn files_written() {
        let dir = std::env::temp_dir().join("sio_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_text(&dir, "t", "hello").unwrap();
        write_csv(&dir, "c", "a,b", &["1,2".to_string()]).unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("t.txt")).unwrap(), "hello");
        let csv = std::fs::read_to_string(dir.join("c.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

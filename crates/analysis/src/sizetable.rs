//! Request-size tables (Tables 2, 4, 6).
//!
//! Two rows — Read and Write — with the paper's four bins: `< 4 KB`,
//! `< 64 KB`, `< 256 KB`, `≥ 256 KB`. The Read row combines synchronous and
//! asynchronous reads (Table 4 counts RENDER's 436 asynchronous 3 MB/1.5 MB
//! reads in the Read row's `≥ 256 KB` bin).

use sio_core::stats::SizeHistogram;
use sio_core::trace::Trace;

/// Read/write size histograms for one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeTable {
    /// Read requests (sync + async).
    pub read: SizeHistogram,
    /// Write requests.
    pub write: SizeHistogram,
}

impl SizeTable {
    /// Compute the table from a trace.
    pub fn from_trace(trace: &Trace) -> SizeTable {
        let mut t = SizeTable::default();
        for ev in trace.events() {
            if ev.op.is_read() {
                t.read.push(ev.bytes);
            } else if ev.op.is_write() {
                t.write.push(ev.bytes);
            }
        }
        t
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<9} {:>8} {:>8} {:>9} {:>9}\n",
            "Operation", "<4KB", "<64KB", "<256KB", ">=256KB"
        ));
        for (name, h) in [("Read", &self.read), ("Write", &self.write)] {
            let [a, b, c, d] = h.as_row();
            out.push_str(&format!("{name:<9} {a:>8} {b:>8} {c:>9} {d:>9}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::event::{IoEvent, IoOp};
    use sio_core::trace::Tracer;

    #[test]
    fn bins_and_async_reads_combined() {
        let t = Tracer::new("s");
        t.record(IoEvent::new(0, 1, IoOp::Read).span(0, 1).extent(0, 100));
        t.record(
            IoEvent::new(0, 1, IoOp::AsyncRead)
                .span(1, 2)
                .extent(0, 3_000_000),
        );
        t.record(IoEvent::new(0, 1, IoOp::Write).span(2, 3).extent(0, 5_000));
        t.record(IoEvent::new(0, 1, IoOp::Seek).span(3, 4).extent(0, 999));
        t.record(IoEvent::new(0, 1, IoOp::IoWait).span(4, 5));
        let table = SizeTable::from_trace(&t.finish());
        assert_eq!(table.read.as_row(), [1, 0, 0, 1]);
        assert_eq!(table.write.as_row(), [0, 1, 0, 0]);
        let s = table.render();
        assert!(s.contains("Read"));
        assert!(s.contains("Write"));
    }
}

//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--fast] [--perf] [--jobs N] [--shards N] [--out DIR] [--crash-frac F] [--log-mb MB] [--drain-mbps R]
//!       [escat|render|htf|ppfs-ablation|crossover|ablations|scaling|faults|recover|cio|blog|all]...
//! ```
//!
//! Paper-scale runs (`escat`, `render`, `htf`) use the 128-node Caltech
//! Paragon partition and the `paper()` parameters; `--fast` substitutes the
//! scaled-down parameters (for smoke tests). Outputs land in `results/`
//! (override with `--out`): one `.txt` report and one `.csv` per figure.
//!
//! `--jobs N` (or the `SIO_JOBS` environment variable) bounds the worker
//! pool every sweep fans out over; the default is the host's available
//! parallelism. Each simulation is deterministic, so the worker count only
//! changes wall time, never output.
//!
//! `--shards N` (or the `SIO_SHARDS` environment variable) additionally
//! shards every run's event heap by mesh region (intra-run PDES,
//! `paragon_sim::pdes`). The sharded engine commits in the serial engine's
//! own event order, so traces, tables, and perf counters are byte-identical
//! for any shard count — the golden digests hold at `--shards 1`, `2`,
//! and `8`.
//!
//! `--perf` enables the process-wide performance counters
//! (`sio_core::perf`) and appends a `== perf counters ==` block after the
//! experiments finish: engine events, heap/channel peaks, trace volume, and
//! per-experiment wall times. The counters aggregate with sums and maxima
//! only, so they are identical for any `--jobs` value; the phase wall times
//! measure the host and are the one non-deterministic line.

use paragon_sim::MachineConfig;
use sio_analysis::burst;
use sio_analysis::chaos;
use sio_analysis::characterize::Characterization;
use sio_analysis::experiments;
use sio_analysis::figures;
use sio_analysis::recovery;
use sio_analysis::report;
use sio_analysis::runner;
use sio_apps::{EscatParams, HtfParams, RenderParams};
use std::fmt;
use std::path::PathBuf;

/// Every experiment name `repro` accepts.
const EXPERIMENTS: [&str; 13] = [
    "escat",
    "render",
    "htf",
    "ppfs-ablation",
    "crossover",
    "ablations",
    "scaling",
    "faults",
    "recover",
    "cio",
    "blog",
    "chaos",
    "all",
];

const USAGE: &str = "usage: repro [--fast] [--perf] [--jobs N] [--shards N] [--out DIR] [--crash-frac F] \
     [--log-mb MB] [--drain-mbps R] [--chaos-seed N] [--cells N] \
     [escat|render|htf|ppfs-ablation|crossover|ablations|scaling|faults|recover|cio|blog|chaos|all]...";

/// Why an argument list was rejected. A typed error rather than a bare
/// message: tests assert on the failure class and the offending option,
/// and `main` renders every class through one `Display` path.
#[derive(Debug, PartialEq)]
enum CliError {
    /// An option that takes a value appeared last on the command line.
    MissingValue {
        option: &'static str,
        expected: &'static str,
    },
    /// An option's value failed validation — out of range, wrong type, or
    /// non-finite. Nothing is silently clamped into range.
    InvalidValue {
        option: &'static str,
        expected: &'static str,
        got: String,
    },
    UnknownOption(String),
    UnknownExperiment(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { option, expected } => {
                write!(f, "{option} requires {expected}")
            }
            CliError::InvalidValue {
                option,
                expected,
                got,
            } => write!(f, "{option} requires {expected}, got '{got}'"),
            CliError::UnknownOption(o) => write!(f, "unknown option '{o}'"),
            CliError::UnknownExperiment(e) => write!(
                f,
                "unknown experiment '{}' (expected one of: {})",
                e,
                EXPERIMENTS.join(", ")
            ),
        }
    }
}

#[derive(Debug, PartialEq)]
struct Cli {
    fast: bool,
    /// Collect and print `sio_core::perf` counters.
    perf: bool,
    help: bool,
    out: PathBuf,
    jobs: Option<usize>,
    /// Intra-run PDES shard count (`paragon_sim::pdes`); `None` leaves the
    /// `SIO_SHARDS` default in force.
    shards: Option<u32>,
    /// Custom crash fraction for the `recover` and `blog` suites (replaces
    /// the canned scenarios with a single `crash@F` cell; `1` crashes at
    /// the healthy wall, i.e. at the last possible instant).
    crash_frac: Option<f64>,
    /// Per-node burst-log capacity override for the `blog` suite, MB.
    log_mb: Option<u64>,
    /// Burst-log drain bandwidth override for the `blog` suite, MB/s.
    drain_mbps: Option<f64>,
    /// Campaign seed for the `chaos` suite (default 42 — the golden seed).
    chaos_seed: Option<u64>,
    /// Campaign size for the `chaos` suite (default 50 cells). Zero-cell
    /// campaigns are rejected at parse time: a sweep that runs nothing
    /// would "pass" its invariants vacuously.
    cells: Option<u32>,
    what: Vec<String>,
}

/// Parse and validate an argument list. Every rejection is a typed
/// [`CliError`] naming the bad argument and what would be accepted; the
/// caller prints it and exits non-zero.
fn parse_args_from(argv: impl IntoIterator<Item = String>) -> Result<Cli, CliError> {
    let mut cli = Cli {
        fast: false,
        perf: false,
        help: false,
        out: PathBuf::from("results"),
        jobs: None,
        shards: None,
        crash_frac: None,
        log_mb: None,
        drain_mbps: None,
        chaos_seed: None,
        cells: None,
        what: Vec::new(),
    };
    let mut args = argv.into_iter();
    let value = |args: &mut dyn Iterator<Item = String>,
                 option: &'static str,
                 expected: &'static str|
     -> Result<String, CliError> {
        args.next()
            .ok_or(CliError::MissingValue { option, expected })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => cli.fast = true,
            "--perf" => cli.perf = true,
            "-h" | "--help" => cli.help = true,
            "--jobs" => {
                let expected = "a positive integer";
                let v = value(&mut args, "--jobs", expected)?;
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cli.jobs = Some(n),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--jobs",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--shards" => {
                let expected = "a positive integer";
                let v = value(&mut args, "--shards", expected)?;
                match v.parse::<u32>() {
                    Ok(n) if n > 0 => cli.shards = Some(n),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--shards",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--out" => {
                let dir = value(&mut args, "--out", "a directory argument")?;
                cli.out = PathBuf::from(dir);
            }
            "--crash-frac" => {
                let expected = "a fraction in (0, 1]";
                let v = value(&mut args, "--crash-frac", expected)?;
                match v.parse::<f64>() {
                    Ok(f) if f > 0.0 && f <= 1.0 => cli.crash_frac = Some(f),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--crash-frac",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--log-mb" => {
                let expected = "a positive whole number of megabytes";
                let v = value(&mut args, "--log-mb", expected)?;
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => cli.log_mb = Some(n),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--log-mb",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--drain-mbps" => {
                let expected = "a positive finite MB/s rate";
                let v = value(&mut args, "--drain-mbps", expected)?;
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => cli.drain_mbps = Some(r),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--drain-mbps",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--chaos-seed" => {
                let expected = "a 64-bit unsigned integer";
                let v = value(&mut args, "--chaos-seed", expected)?;
                match v.parse::<u64>() {
                    Ok(n) => cli.chaos_seed = Some(n),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--chaos-seed",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            "--cells" => {
                let expected = "a positive cell count";
                let v = value(&mut args, "--cells", expected)?;
                match v.parse::<u32>() {
                    Ok(n) if n > 0 => cli.cells = Some(n),
                    _ => {
                        return Err(CliError::InvalidValue {
                            option: "--cells",
                            expected,
                            got: v,
                        })
                    }
                }
            }
            other if other.starts_with('-') => {
                return Err(CliError::UnknownOption(other.to_string()));
            }
            other => {
                if !EXPERIMENTS.contains(&other) {
                    return Err(CliError::UnknownExperiment(other.to_string()));
                }
                cli.what.push(other.to_string());
            }
        }
    }
    if cli.what.is_empty() {
        cli.what.push("all".to_string());
    }
    Ok(cli)
}

fn parse_args() -> Cli {
    match parse_args_from(std::env::args().skip(1)) {
        Ok(cli) => {
            if cli.help {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            if let Some(n) = cli.jobs {
                runner::set_jobs(n);
            }
            if let Some(n) = cli.shards {
                paragon_sim::set_shards(n);
            }
            if cli.perf {
                sio_core::perf::enable();
            }
            cli
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn machine(fast: bool) -> MachineConfig {
    if fast {
        MachineConfig::tiny(8, 4)
    } else {
        MachineConfig::paragon_128()
    }
}

fn run_escat(cli: &Cli) {
    let _phase = sio_core::perf::phase("escat");
    let params = if cli.fast {
        EscatParams::small(8, 8)
    } else {
        EscatParams::paper()
    };
    eprintln!(
        "[repro] escat: {} nodes, {} iterations...",
        params.nodes, params.iters
    );
    let a = experiments::escat(&machine(cli.fast), &params);
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    body.push_str(&report::section(
        "Table 1 — ESCAT I/O operations",
        &a.table1.render(),
    ));
    body.push_str(&report::section(
        "Table 2 — ESCAT request sizes",
        &a.table2.render(),
    ));
    body.push_str(&report::section(
        "Paper vs measured",
        &report::render_checks(&a.checks),
    ));
    body.push_str(&report::section(
        "Shape checks",
        &report::render_shapes(&a.shapes),
    ));
    body.push_str(&report::section(
        "Figure 4 burst spacing (s)",
        &format!("{:.1?}\n(wall {:.0}s)", a.gaps, a.out.wall_secs()),
    ));
    body.push_str(&report::section(
        "Qualitative characterization (paper §8)",
        &Characterization::from_trace(&a.out.trace).render(),
    ));
    for f in &a.figures.figures {
        body.push_str(&f.to_ascii());
        body.push('\n');
    }
    a.figures.write_all(&cli.out).expect("write figures");
    // Reduction-derived artifacts: windowed intensity and the staging
    // file's spatial (region) profile.
    let win = figures::window_series(&a.out.trace, 10.0);
    figures::write_window_csv(&win, &cli.out, "escat-window-10s").expect("window csv");
    let region = figures::region_series(&a.out.trace, 7, 64 * 1024);
    figures::write_region_csv(&region, &cli.out, "escat-staging-regions").expect("region csv");
    report::write_text(&cli.out, "escat", &body).expect("write report");
    println!("{body}");
}

fn run_render(cli: &Cli) {
    let _phase = sio_core::perf::phase("render");
    let params = if cli.fast {
        RenderParams::small(8, 4)
    } else {
        RenderParams::paper()
    };
    eprintln!(
        "[repro] render: {} nodes, {} frames...",
        params.nodes, params.frames
    );
    let a = experiments::render(&machine(cli.fast), &params);
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    body.push_str(&report::section(
        "Table 3 — RENDER I/O operations",
        &a.table3.render(),
    ));
    body.push_str(&report::section(
        "Table 4 — RENDER request sizes",
        &a.table4.render(),
    ));
    body.push_str(&report::section(
        "Paper vs measured",
        &report::render_checks(&a.checks),
    ));
    body.push_str(&report::section(
        "Shape checks",
        &report::render_shapes(&a.shapes),
    ));
    body.push_str(&format!(
        "init phase ends at {:.0}s; wall {:.0}s\n",
        a.init_end_secs,
        a.out.wall_secs()
    ));
    body.push_str(&report::section(
        "Qualitative characterization (paper §8)",
        &Characterization::from_trace(&a.out.trace).render(),
    ));
    for f in &a.figures.figures {
        body.push_str(&f.to_ascii());
        body.push('\n');
    }
    a.figures.write_all(&cli.out).expect("write figures");
    let win = figures::window_series(&a.out.trace, 5.0);
    figures::write_window_csv(&win, &cli.out, "render-window-5s").expect("window csv");
    report::write_text(&cli.out, "render", &body).expect("write report");
    println!("{body}");
}

fn run_htf(cli: &Cli) {
    let _phase = sio_core::perf::phase("htf");
    let params = if cli.fast {
        HtfParams::small(8)
    } else {
        HtfParams::paper()
    };
    eprintln!("[repro] htf: {} nodes, 3-program pipeline...", params.nodes);
    let a = experiments::htf(&machine(cli.fast), &params);
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    for (name, table, sizes, out) in [
        (
            "HTF Initialization (psetup)",
            &a.table5[0],
            &a.table6[0],
            &a.psetup,
        ),
        (
            "HTF Integral Calculation (pargos)",
            &a.table5[1],
            &a.table6[1],
            &a.pargos,
        ),
        (
            "HTF Self-Consistent Field (pscf)",
            &a.table5[2],
            &a.table6[2],
            &a.pscf,
        ),
    ] {
        body.push_str(&report::section(
            &format!("Table 5 — {name}"),
            &format!("{}\n(wall {:.0}s)", table.render(), out.wall_secs()),
        ));
        body.push_str(&report::section(
            &format!("Table 6 — {name} sizes"),
            &sizes.render(),
        ));
    }
    body.push_str(&report::section(
        "Paper vs measured",
        &report::render_checks(&a.checks),
    ));
    body.push_str(&report::section(
        "Shape checks",
        &report::render_shapes(&a.shapes),
    ));
    let pipeline = sio_core::Trace::concat_pipeline(
        "htf-pipeline",
        &[&a.psetup.trace, &a.pargos.trace, &a.pscf.trace],
    );
    body.push_str(&report::section(
        "Qualitative characterization (paper §8, whole pipeline)",
        &Characterization::from_trace(&pipeline).render(),
    ));
    for f in &a.figures.figures {
        body.push_str(&f.to_ascii());
        body.push('\n');
    }
    a.figures.write_all(&cli.out).expect("write figures");
    for (trace, name) in [
        (&a.psetup.trace, "htf-psetup-window-5s"),
        (&a.pargos.trace, "htf-pargos-window-10s"),
        (&a.pscf.trace, "htf-pscf-window-10s"),
    ] {
        let width = if name.ends_with("5s") { 5.0 } else { 10.0 };
        let win = figures::window_series(trace, width);
        figures::write_window_csv(&win, &cli.out, name).expect("window csv");
    }
    report::write_text(&cli.out, "htf", &body).expect("write report");
    println!("{body}");
}

fn run_ppfs_ablation(cli: &Cli) {
    let _phase = sio_core::perf::phase("ppfs-ablation");
    let params = if cli.fast {
        EscatParams::small(8, 8)
    } else {
        EscatParams::paper()
    };
    eprintln!("[repro] ppfs ablation (ESCAT on PFS vs PPFS)...");
    let r = experiments::ppfs_ablation(&machine(cli.fast), &params);
    let note = if cli.fast {
        "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n"
    } else {
        ""
    };
    let body = note.to_string()
        + &report::section(
            "X1 — §5.2 PPFS write-behind + aggregation on ESCAT",
            &format!(
                "PFS  write+seek node time: {:>12.1} s\n\
             PPFS write+seek node time: {:>12.1} s\n\
             improvement:               {:>12.1} x\n\
             application writes buffered: {}\n\
             flush extents written back:  {}\n",
                r.pfs_write_seek_secs,
                r.ppfs_write_seek_secs,
                r.speedup,
                r.writes_buffered,
                r.flush_extents,
            ),
        );
    report::write_text(&cli.out, "ppfs_ablation", &body).expect("write report");
    println!("{body}");
}

fn run_crossover(cli: &Cli) {
    let _phase = sio_core::perf::phase("crossover");
    eprintln!("[repro] htf read-vs-recompute crossover...");
    let rows = experiments::htf_crossover_paper();
    let mut b = String::new();
    b.push_str("rate(MB/s)  read(us)  recompute(us)  preferred\n");
    for r in &rows {
        b.push_str(&format!(
            "{:>9.1} {:>9.2} {:>14.2}  {}\n",
            r.io_rate_mb_s,
            r.read_us,
            r.compute_us,
            if r.io_preferred { "read" } else { "recompute" }
        ));
    }
    let body = report::section("X3 — §7.2 integral read vs recompute crossover", &b);
    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{}",
                r.io_rate_mb_s, r.read_us, r.compute_us, r.io_preferred
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "htf_crossover",
        "rate_mb_s,read_us,compute_us,io_preferred",
        &csv_rows,
    )
    .expect("write csv");
    report::write_text(&cli.out, "htf_crossover", &body).expect("write report");
    println!("{body}");
}

fn run_scaling(cli: &Cli) {
    let _phase = sio_core::perf::phase("scaling");
    eprintln!("[repro] scaling studies (S1 weak scaling, S2 data growth)...");
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }

    let big_machine = if cli.fast {
        MachineConfig::tiny(16, 4)
    } else {
        MachineConfig::caltech_paragon()
    };
    let counts: &[u32] = if cli.fast {
        &[4, 8, 16]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let rows = experiments::escat_scaling(&big_machine, counts);
    let mut b = String::new();
    b.push_str(
        "nodes   io node-time(s)   wall(s)   io share of node-time
",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:>5} {:>17.1} {:>9.0} {:>10.2}%
",
            r.nodes,
            r.io_secs,
            r.wall_secs,
            r.io_fraction * 100.0
        ));
    }
    body.push_str(&report::section(
        "S1 — ESCAT weak scaling (same per-node work, 16 I/O nodes)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{}",
                r.nodes, r.io_secs, r.wall_secs, r.io_fraction
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "escat_scaling",
        "nodes,io_secs,wall_secs,io_fraction",
        &csv,
    )
    .expect("csv");

    let params = if cli.fast {
        EscatParams::small(8, 6)
    } else {
        EscatParams::paper()
    };
    let scales: &[u32] = if cli.fast { &[1, 8] } else { &[1, 4, 16] };
    let rows = experiments::escat_growth(&machine(cli.fast), &params, scales);
    let mut b = String::new();
    b.push_str(
        "scale   write volume(B)   io share   wall(s)
",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:>5}x {:>17} {:>9.2}% {:>9.0}
",
            r.scale,
            r.write_volume,
            r.io_fraction * 100.0,
            r.wall_secs
        ));
    }
    body.push_str(&report::section(
        "S2 — ESCAT quadrature growth (S5.2: O(N^3) data at fixed compute)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{}",
                r.scale, r.write_volume, r.io_fraction, r.wall_secs
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "escat_growth",
        "scale,write_volume,io_fraction,wall_secs",
        &csv,
    )
    .expect("csv");

    report::write_text(&cli.out, "scaling", &body).expect("write report");
    println!("{body}");
}

fn run_faults(cli: &Cli) {
    let _phase = sio_core::perf::phase("faults");
    let m = machine(cli.fast);
    let (ep, rp, hp) = if cli.fast {
        (
            EscatParams::small(8, 8),
            RenderParams::small(8, 4),
            HtfParams::small(8),
        )
    } else {
        (
            EscatParams::paper(),
            RenderParams::paper(),
            HtfParams::paper(),
        )
    };
    eprintln!("[repro] fault suite (X4: degraded / rebuild / stalls / crash)...");
    let rows = experiments::fault_suite(&m, &ep, &rp, &hp);
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    let mut b = String::new();
    b.push_str(
        "workload   scenario    wall(s)   read(s)  write(s)  retry  failover  lost  timeout  rebuild(MB)  degraded  dirty(KB)  replayed\n",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:<10} {:<9} {:>9.1} {:>9.2} {:>9.2} {:>6} {:>9} {:>5} {:>8} {:>12.1} {:>9} {:>10.1} {:>9}\n",
            r.workload,
            r.scenario,
            r.wall_secs,
            r.read_secs,
            r.write_secs,
            r.retries,
            r.failovers,
            r.lost_segments,
            r.timeouts,
            r.rebuilt_mb,
            r.degraded_at_end,
            r.dirty_bytes_lost as f64 / 1024.0,
            r.replayed_segments,
        ));
    }
    body.push_str(&report::section(
        "X4 — fault-injection suite (timed RAID rebuild, stalls, crash + failover)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.workload,
                r.scenario,
                r.wall_secs,
                r.read_secs,
                r.write_secs,
                r.retries,
                r.failovers,
                r.lost_segments,
                r.timeouts,
                r.rebuilt_mb,
                r.degraded_at_end,
                r.dirty_bytes_lost,
                r.replayed_segments
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "faults",
        "workload,scenario,wall_secs,read_secs,write_secs,retries,failovers,lost_segments,timeouts,rebuilt_mb,degraded_at_end,dirty_bytes_lost,replayed_segments",
        &csv,
    )
    .expect("write csv");
    report::write_text(&cli.out, "faults", &body).expect("write report");
    println!("{body}");
}

fn run_cio(cli: &Cli) {
    let _phase = sio_core::perf::phase("cio");
    let m = machine(cli.fast);
    let (ep, rp, hp, scales) = if cli.fast {
        (
            EscatParams::small(8, 8),
            RenderParams::small(8, 4),
            HtfParams::small(8),
            vec![4u32, 8],
        )
    } else {
        (
            EscatParams::paper(),
            RenderParams::paper(),
            HtfParams::paper(),
            vec![64u32, 128],
        )
    };
    eprintln!("[repro] collective I/O suite (X6: PFS vs PPFS vs CIO)...");
    let rows = experiments::cio_suite(&m, &ep, &rp, &hp, &scales);
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    let mut b = String::new();
    b.push_str(
        "workload         backend  nodes   wall(s)  wreq/io  wmean(KB)  rreq/io  rmean(KB)  exch(s)  collectives\n",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:<16} {:<8} {:>5} {:>9.1} {:>8.1} {:>10.2} {:>8.1} {:>10.2} {:>8.3} {:>12}\n",
            r.workload,
            r.backend,
            r.nodes,
            r.wall_secs,
            r.write_reqs_per_io,
            r.mean_write_kb,
            r.read_reqs_per_io,
            r.mean_read_kb,
            r.exchange_secs,
            r.collectives,
        ));
    }
    body.push_str(&report::section(
        "X6 — collective two-phase I/O (request shape per I/O node, exchange cost)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{}",
                r.workload,
                r.backend,
                r.nodes,
                r.wall_secs,
                r.write_reqs_per_io,
                r.mean_write_kb,
                r.read_reqs_per_io,
                r.mean_read_kb,
                r.exchange_secs,
                r.collectives
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "cio",
        "workload,backend,nodes,wall_secs,write_reqs_per_io,mean_write_kb,read_reqs_per_io,mean_read_kb,exchange_secs,collectives",
        &csv,
    )
    .expect("write csv");
    report::write_text(&cli.out, "cio", &body).expect("write report");
    println!("{body}");
}

fn run_recover(cli: &Cli) {
    let _phase = sio_core::perf::phase("recover");
    let m = machine(cli.fast);
    let (ep, rp, hp) = if cli.fast {
        (
            EscatParams::small(8, 8),
            RenderParams::small(8, 4),
            HtfParams::small(8),
        )
    } else {
        (
            EscatParams::paper(),
            RenderParams::paper(),
            HtfParams::paper(),
        )
    };
    let scenarios: Vec<String> = match cli.crash_frac {
        Some(f) => vec![format!("crash@{f}")],
        None => ["crash30", "crash70", "crash50-ionode"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    eprintln!("[repro] recovery suite (X5: checkpoint interval x crash scenario)...");
    let rows = recovery::recover_suite_scenarios_jobs(
        &m,
        &ep,
        &rp,
        &hp,
        &scenarios,
        runner::configured_jobs(),
    );
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    let mut b = String::new();
    b.push_str(
        "workload    iv scenario        epoch  ckpt(s)  ovh(%)  crash(s)  recov(s)  ttr(s)  rerun(s)  saved(s)  lost(MB)  torn  dirty_ck(KB)\n",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:<11} {:>2} {:<14} {:>2}/{:<2} {:>8.1} {:>7.2} {:>9.1} {:>9.1} {:>7.1} {:>9.1} {:>9.1} {:>9.3} {:>5} {:>13.1}\n",
            r.workload,
            r.interval,
            r.scenario,
            r.durable_epoch,
            r.epochs,
            r.ckpt_wall_secs,
            r.overhead_pct,
            r.crash_secs,
            r.recovery_secs,
            r.total_secs,
            r.rerun_secs,
            r.saved_secs,
            r.lost_work_mb,
            r.commits_torn,
            r.dirty_lost_ckpt as f64 / 1024.0,
        ));
    }
    body.push_str(&report::section(
        "X5 — crash/recovery suite (checkpoint commit protocol, restart from last durable epoch)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.workload,
                r.interval,
                r.scenario,
                r.durable_epoch,
                r.epochs,
                r.commits_valid,
                r.commits_torn,
                r.ckpt_wall_secs,
                r.overhead_pct,
                r.crash_secs,
                r.recovery_secs,
                r.total_secs,
                r.rerun_secs,
                r.saved_secs,
                r.lost_work_mb
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "recover",
        "workload,interval,scenario,durable_epoch,epochs,commits_valid,commits_torn,ckpt_wall_secs,overhead_pct,crash_secs,recovery_secs,total_secs,rerun_secs,saved_secs,lost_work_mb",
        &csv,
    )
    .expect("write csv");
    report::write_text(&cli.out, "recover", &body).expect("write report");
    println!("{body}");
}

fn run_blog(cli: &Cli) {
    let _phase = sio_core::perf::phase("blog");
    let m = machine(cli.fast);
    let (ep, rp, hp) = if cli.fast {
        (
            EscatParams::small(8, 8),
            RenderParams::small(8, 4),
            HtfParams::small(8),
        )
    } else {
        (
            EscatParams::paper(),
            RenderParams::paper(),
            HtfParams::paper(),
        )
    };
    eprintln!("[repro] burst-buffer suite (X7: log tier over pfs/ppfs/cio)...");
    let rows = burst::blog_suite_overrides_jobs(
        &m,
        &ep,
        &rp,
        &hp,
        cli.log_mb,
        cli.drain_mbps,
        runner::configured_jobs(),
    );
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    let mut b = String::new();
    b.push_str(
        "workload    inner  log(MB)  drain(MB/s)  crash  commit(ms)  direct(ms)  speedup  epoch  pend(MB)  replay(s)  ttr(s)  dttr(s)  lost(MB)  occ(MB)  stall(s)\n",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:<11} {:<6} {:>7} {:>12.1} {:>6.2} {:>11.3} {:>11.3} {:>7.1}x {:>3}/{:<2} {:>8.1} {:>10.1} {:>7.1} {:>8.1} {:>9.3} {:>8.1} {:>8.3}\n",
            r.workload,
            r.inner,
            r.log_mb,
            r.drain_mbps,
            r.crash_frac,
            r.commit_ms,
            r.direct_commit_ms,
            r.commit_speedup,
            r.durable_epoch,
            r.epochs,
            r.pending_mb,
            r.replay_secs,
            r.ttr_secs,
            r.direct_ttr_secs,
            r.lost_mb,
            r.occ_peak_mb,
            r.stall_secs,
        ));
    }
    body.push_str(&report::section(
        "X7 — burst-buffer tier (log-speed commits, crash-consistent drain, recovery replay)",
        &b,
    ));
    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.workload,
                r.inner,
                r.log_mb,
                r.drain_mbps,
                r.crash_frac,
                r.commit_ms,
                r.direct_commit_ms,
                r.commit_speedup,
                r.wall_secs,
                r.direct_wall_secs,
                r.durable_epoch,
                r.direct_epoch,
                r.epochs,
                r.pending_mb,
                r.replay_secs,
                r.ttr_secs,
                r.direct_ttr_secs,
                r.lost_mb,
                r.direct_lost_mb,
                r.occ_peak_mb,
                r.stall_secs
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "blog",
        "workload,inner,log_mb,drain_mbps,crash_frac,commit_ms,direct_commit_ms,commit_speedup,wall_secs,direct_wall_secs,durable_epoch,direct_epoch,epochs,pending_mb,replay_secs,ttr_secs,direct_ttr_secs,lost_mb,direct_lost_mb,occ_peak_mb,stall_secs",
        &csv,
    )
    .expect("write csv");
    report::write_text(&cli.out, "blog", &body).expect("write report");
    println!("{body}");
}

fn run_chaos(cli: &Cli) {
    let _phase = sio_core::perf::phase("chaos");
    let m = machine(cli.fast);
    let (ep, rp, hp) = if cli.fast {
        (
            EscatParams::small(8, 8),
            RenderParams::small(8, 4),
            HtfParams::small(8),
        )
    } else {
        (
            EscatParams::paper(),
            RenderParams::paper(),
            HtfParams::paper(),
        )
    };
    let seed = cli.chaos_seed.unwrap_or(42);
    let cells = cli.cells.unwrap_or(50);
    eprintln!(
        "[repro] chaos campaign (X8: seed {seed}, {cells} cells over every backend x fault domain)..."
    );
    let rows = chaos::chaos_suite_jobs(&m, &ep, &rp, &hp, seed, cells, runner::configured_jobs());
    let violations = rows.iter().filter(|r| !r.invariants_ok()).count();

    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }
    let mut b = String::new();
    b.push_str(&format!("campaign seed {seed}, {cells} cells\n"));
    b.push_str(
        "cell  workload    backend     domains          ev  crash  wall(s)    slow   ops    fault  avail   p99(ms)  retry  fo  unavail  epoch  ok\n",
    );
    for r in &rows {
        b.push_str(&format!(
            "{:>4}  {:<10} {:<11} {:<16} {:>3} {:>6.2} {:>9.2} {:>7.2}x {:>6} {:>6} {:>6.3} {:>9.3} {:>6} {:>3} {:>8} {:>3}/{:<2} {:>3}\n",
            r.cell,
            r.workload,
            r.backend,
            r.domains,
            r.events,
            r.crash_frac,
            r.wall_secs,
            r.slowdown,
            r.ops,
            r.faulted,
            r.availability,
            r.p99_ms,
            r.retries,
            r.failovers,
            r.unavailable,
            r.durable_epoch,
            r.epochs,
            if r.invariants_ok() { "yes" } else { "NO" },
        ));
    }
    body.push_str(&report::section(
        "X8 — chaos campaign (randomized fault sweeps, per-cell invariants)",
        &b,
    ));

    let summary = chaos::domain_summary(&rows);
    let mut b = String::new();
    b.push_str("domain  cells  avail    p99(ms)   fault  ok\n");
    for s in &summary {
        b.push_str(&format!(
            "{:<7} {:>5} {:>6.3} {:>10.3} {:>7} {:>3}/{}\n",
            s.domain, s.cells, s.availability, s.mean_p99_ms, s.faulted, s.cells_ok, s.cells
        ));
    }
    b.push_str(&format!(
        "\ninvariant violations: {violations} of {} cells\n",
        rows.len()
    ));
    body.push_str(&report::section("X8 — per-domain summary", &b));

    let csv: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.cell,
                r.workload,
                r.backend,
                r.domains,
                r.events,
                r.crash_frac,
                r.healthy_wall_secs,
                r.wall_secs,
                r.slowdown,
                r.ops,
                r.faulted,
                r.availability,
                r.p99_ms,
                r.retries,
                r.failovers,
                r.unavailable,
                r.timeouts,
                r.durable_epoch,
                r.epochs,
                r.hang_clean,
                r.typed_ok,
                r.conserved,
                r.cut_ok
            )
        })
        .collect();
    report::write_csv(
        &cli.out,
        "chaos",
        "cell,workload,backend,domains,events,crash_frac,healthy_wall_secs,wall_secs,slowdown,ops,faulted,availability,p99_ms,retries,failovers,unavailable,timeouts,durable_epoch,epochs,hang_clean,typed_ok,conserved,cut_ok",
        &csv,
    )
    .expect("write csv");
    report::write_text(&cli.out, "chaos", &body).expect("write report");
    println!("{body}");
    assert_eq!(violations, 0, "chaos campaign found invariant violations");
}

fn run_ablations(cli: &Cli) {
    let _phase = sio_core::perf::phase("ablations");
    let m = machine(cli.fast);
    eprintln!("[repro] ablations (A1 modes, A2 policies, A3 queue, A4 raid)...");
    let mut body = String::new();
    if cli.fast {
        body.push_str(
            "NOTE: --fast uses scaled-down parameters; paper-vs-measured checks are expected to deviate.\n\n",
        );
    }

    let (nodes, per_node) = if cli.fast { (4, 4) } else { (32, 16) };
    let rows = experiments::mode_ablation(&m, nodes, per_node, 2048);
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "{:<9} write {:>9.2} s   wall {:>8.2} s\n",
            r.mode.name(),
            r.write_secs,
            r.wall_secs
        ));
    }
    body.push_str(&report::section(
        "A1 — access-mode costs (synchronized writers)",
        &b,
    ));

    let rows = experiments::policy_matrix(&m);
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "{:<11} {:<11} read {:>9.3} s   hits {:>5}\n",
            r.kernel, r.policy, r.read_secs, r.reads_hit
        ));
    }
    body.push_str(&report::section(
        "A2 — policy matrix (pattern x policy)",
        &b,
    ));

    let rows = experiments::queue_discipline(&m, if cli.fast { 4 } else { 16 });
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "{:<7?} read {:>9.2} s   wall {:>8.2} s\n",
            r.discipline, r.read_secs, r.wall_secs
        ));
    }
    body.push_str(&report::section("A3 — I/O-node queue discipline", &b));

    let rows = experiments::raid_degraded(&m);
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "degraded={:<5} read {:>9.3} s\n",
            r.degraded, r.read_secs
        ));
    }
    body.push_str(&report::section("A4 — RAID-3 degraded-mode reads", &b));

    let rows = experiments::two_level_buffering(&m, if cli.fast { 4 } else { 8 });
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "server cache {:>4} blocks: read {:>9.3} s   server hits {:>5}\n",
            r.server_blocks, r.read_secs, r.server_hits
        ));
    }
    body.push_str(&report::section(
        "B1 — two-level buffering (paper §8: compute-node + I/O-node caches)",
        &b,
    ));

    let (ep, hp) = if cli.fast {
        (EscatParams::small(4, 5), HtfParams::small(4))
    } else {
        (EscatParams::paper(), HtfParams::paper())
    };
    let rows = experiments::workload_mix(&m, &ep, &hp);
    let mut b = String::new();
    for r in &rows {
        b.push_str(&format!(
            "{:<10} ({:>2} I/O nodes) isolated {:>10.1} s   mixed {:>10.1} s   inflation {:>5.2}x\n",
            r.app,
            r.io_nodes,
            r.isolated_io_secs,
            r.mixed_io_secs,
            r.inflation()
        ));
    }
    body.push_str(&report::section(
        "M1 — application-mix interference (paper §8: workload mixes)",
        &b,
    ));

    report::write_text(&cli.out, "ablations", &body).expect("write report");
    println!("{body}");
}

fn main() {
    let cli = parse_args();
    for what in cli.what.clone() {
        match what.as_str() {
            "escat" => run_escat(&cli),
            "render" => run_render(&cli),
            "htf" => run_htf(&cli),
            "ppfs-ablation" => run_ppfs_ablation(&cli),
            "crossover" => run_crossover(&cli),
            "ablations" => run_ablations(&cli),
            "scaling" => run_scaling(&cli),
            "faults" => run_faults(&cli),
            "recover" => run_recover(&cli),
            "cio" => run_cio(&cli),
            "blog" => run_blog(&cli),
            "chaos" => run_chaos(&cli),
            "all" => {
                // Independent experiments fan out over the sweep runner;
                // each simulation is single-threaded and deterministic, so
                // parallelism changes nothing but wall time.
                let cli = &cli;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                    Box::new(move || run_escat(cli)),
                    Box::new(move || run_render(cli)),
                    Box::new(move || run_htf(cli)),
                    Box::new(move || run_ppfs_ablation(cli)),
                    Box::new(move || run_crossover(cli)),
                    Box::new(move || run_ablations(cli)),
                    Box::new(move || run_scaling(cli)),
                    Box::new(move || run_faults(cli)),
                    Box::new(move || run_recover(cli)),
                    Box::new(move || run_cio(cli)),
                    Box::new(move || run_blog(cli)),
                    Box::new(move || run_chaos(cli)),
                ];
                runner::par_run(runner::configured_jobs(), tasks);
            }
            other => unreachable!("experiment '{other}' validated in parse_args"),
        }
    }
    if cli.perf {
        print!("{}", sio_core::perf::snapshot().render());
    }
    eprintln!("[repro] artifacts written to {}", cli.out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_all_experiments() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.what, vec!["all"]);
        assert!(!cli.fast);
        assert!(!cli.perf);
        assert_eq!(cli.out, PathBuf::from("results"));
        assert_eq!(cli.jobs, None);
        assert_eq!(cli.shards, None);
        assert_eq!(cli.crash_frac, None);
    }

    #[test]
    fn accepts_known_experiments_and_flags() {
        let cli = parse(&[
            "--fast",
            "--perf",
            "--jobs",
            "4",
            "--shards",
            "8",
            "--out",
            "tmp",
            "--crash-frac",
            "0.4",
            "recover",
            "faults",
        ])
        .unwrap();
        assert!(cli.fast);
        assert!(cli.perf);
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.shards, Some(8));
        assert_eq!(cli.out, PathBuf::from("tmp"));
        assert_eq!(cli.crash_frac, Some(0.4));
        assert_eq!(cli.what, vec!["recover", "faults"]);
    }

    #[test]
    fn rejects_unknown_experiment_with_suggestions() {
        let err = parse(&["recoverr"]).unwrap_err();
        assert_eq!(err, CliError::UnknownExperiment("recoverr".to_string()));
        let msg = err.to_string();
        assert!(msg.contains("unknown experiment 'recoverr'"), "{msg}");
        assert!(msg.contains("recover"), "{msg}");
        assert!(msg.contains("blog"), "{msg}");
    }

    #[test]
    fn rejects_unknown_option() {
        let err = parse(&["--job", "4"]).unwrap_err();
        assert_eq!(err, CliError::UnknownOption("--job".to_string()));
        assert!(err.to_string().contains("unknown option '--job'"), "{err}");
    }

    #[test]
    fn rejects_bad_jobs_values() {
        assert!(matches!(
            parse(&["--jobs"]).unwrap_err(),
            CliError::MissingValue {
                option: "--jobs",
                ..
            }
        ));
        for bad in ["0", "many"] {
            let err = parse(&["--jobs", bad]).unwrap_err();
            assert_eq!(
                err,
                CliError::InvalidValue {
                    option: "--jobs",
                    expected: "a positive integer",
                    got: bad.to_string(),
                }
            );
        }
    }

    #[test]
    fn rejects_bad_shards_values() {
        assert!(matches!(
            parse(&["--shards"]).unwrap_err(),
            CliError::MissingValue {
                option: "--shards",
                ..
            }
        ));
        for bad in ["0", "lots"] {
            let err = parse(&["--shards", bad]).unwrap_err();
            assert_eq!(
                err,
                CliError::InvalidValue {
                    option: "--shards",
                    expected: "a positive integer",
                    got: bad.to_string(),
                }
            );
        }
    }

    #[test]
    fn accepts_crash_frac_up_to_one() {
        // The interval is half-open: crashing exactly at the healthy wall
        // (the last possible instant) is meaningful, crashing at 0 is not.
        assert_eq!(parse(&["--crash-frac", "1"]).unwrap().crash_frac, Some(1.0));
        assert_eq!(
            parse(&["--crash-frac", "0.5"]).unwrap().crash_frac,
            Some(0.5)
        );
    }

    #[test]
    fn rejects_malformed_crash_frac() {
        assert!(matches!(
            parse(&["--crash-frac"]).unwrap_err(),
            CliError::MissingValue {
                option: "--crash-frac",
                ..
            }
        ));
        for bad in ["0", "1.5", "-0.2", "half", "NaN"] {
            let err = parse(&["--crash-frac", bad]).unwrap_err();
            assert_eq!(
                err,
                CliError::InvalidValue {
                    option: "--crash-frac",
                    expected: "a fraction in (0, 1]",
                    got: bad.to_string(),
                },
                "'{bad}' must be rejected, not clamped"
            );
        }
    }

    #[test]
    fn accepts_and_validates_blog_knobs() {
        let cli = parse(&["--log-mb", "128", "--drain-mbps", "12.5", "blog"]).unwrap();
        assert_eq!(cli.log_mb, Some(128));
        assert_eq!(cli.drain_mbps, Some(12.5));
        assert_eq!(cli.what, vec!["blog"]);

        assert!(matches!(
            parse(&["--log-mb"]).unwrap_err(),
            CliError::MissingValue {
                option: "--log-mb",
                ..
            }
        ));
        for bad in ["0", "-4", "64.5", "big"] {
            assert!(matches!(
                parse(&["--log-mb", bad]).unwrap_err(),
                CliError::InvalidValue {
                    option: "--log-mb",
                    ..
                }
            ));
        }
        assert!(matches!(
            parse(&["--drain-mbps"]).unwrap_err(),
            CliError::MissingValue {
                option: "--drain-mbps",
                ..
            }
        ));
        for bad in ["0", "-8", "inf", "NaN", "slow"] {
            assert!(matches!(
                parse(&["--drain-mbps", bad]).unwrap_err(),
                CliError::InvalidValue {
                    option: "--drain-mbps",
                    ..
                }
            ));
        }
    }

    #[test]
    fn accepts_and_validates_chaos_knobs() {
        let cli = parse(&["--chaos-seed", "7", "--cells", "12", "chaos"]).unwrap();
        assert_eq!(cli.chaos_seed, Some(7));
        assert_eq!(cli.cells, Some(12));
        assert_eq!(cli.what, vec!["chaos"]);

        assert!(matches!(
            parse(&["--chaos-seed"]).unwrap_err(),
            CliError::MissingValue {
                option: "--chaos-seed",
                ..
            }
        ));
        for bad in ["-1", "7.5", "lucky"] {
            assert!(matches!(
                parse(&["--chaos-seed", bad]).unwrap_err(),
                CliError::InvalidValue {
                    option: "--chaos-seed",
                    ..
                }
            ));
        }
        assert!(matches!(
            parse(&["--cells"]).unwrap_err(),
            CliError::MissingValue {
                option: "--cells",
                ..
            }
        ));
        // A zero-cell campaign passes every invariant vacuously — reject
        // it rather than report a hollow success.
        for bad in ["0", "-3", "4.5", "some"] {
            let err = parse(&["--cells", bad]).unwrap_err();
            assert_eq!(
                err,
                CliError::InvalidValue {
                    option: "--cells",
                    expected: "a positive cell count",
                    got: bad.to_string(),
                },
                "'{bad}' must be rejected, not clamped"
            );
        }
    }

    #[test]
    fn rejects_missing_out_dir() {
        assert!(matches!(
            parse(&["--out"]).unwrap_err(),
            CliError::MissingValue {
                option: "--out",
                ..
            }
        ));
    }
}

//! Zero-cost-when-disabled performance counters.
//!
//! The hot paths (engine event loop, trace capture) maintain plain integer
//! counters on state they already touch — that always runs and costs nothing
//! measurable. This module is the *publishing* side: once per simulated run
//! the driver submits those per-run totals ([`submit`]) and they aggregate
//! into process-wide atomics. When disabled — the default — [`submit`]
//! returns immediately and nothing is recorded, so instrumented and
//! uninstrumented runs are byte-identical (the paper's Pablo standard:
//! capture must not perturb the thing measured).
//!
//! Aggregation uses only sums and maxima, which commute, so totals are
//! identical no matter how a sweep's runs are spread across worker threads
//! (`SIO_JOBS=1` and `SIO_JOBS=8` report the same counters). Phase wall
//! times ([`phase`]) are the one intentionally non-deterministic output —
//! they measure the host, not the simulation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

static RUNS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static HEAP_PEAK: AtomicU64 = AtomicU64::new(0);
static CHANNEL_PEAK: AtomicU64 = AtomicU64::new(0);
static TRACE_EVENTS: AtomicU64 = AtomicU64::new(0);
static TRACE_BYTES: AtomicU64 = AtomicU64::new(0);
static LOG_OCC_PEAK: AtomicU64 = AtomicU64::new(0);
static LOG_STALL_NS: AtomicU64 = AtomicU64::new(0);

static PHASES: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

/// Turn collection on (e.g. from `repro --perf`).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn collection off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Hot-path totals for one simulated run, submitted once at run end.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunPerf {
    /// Events the engine processed.
    pub events: u64,
    /// Peak event-heap size.
    pub heap_peak: u64,
    /// Peak buffered eager messages.
    pub channel_peak: u64,
    /// Trace events captured.
    pub trace_events: u64,
    /// In-memory bytes of the captured trace.
    pub trace_bytes: u64,
    /// Highest burst-log occupancy any node reached (0 without the tier).
    pub log_occ_peak: u64,
    /// Time appends spent parked on a full burst log, ns.
    pub log_stall_ns: u64,
}

/// Fold one run's totals into the process-wide aggregate. No-op (one relaxed
/// load) when collection is disabled.
pub fn submit(run: RunPerf) {
    if !enabled() {
        return;
    }
    RUNS.fetch_add(1, Ordering::Relaxed);
    EVENTS.fetch_add(run.events, Ordering::Relaxed);
    HEAP_PEAK.fetch_max(run.heap_peak, Ordering::Relaxed);
    CHANNEL_PEAK.fetch_max(run.channel_peak, Ordering::Relaxed);
    TRACE_EVENTS.fetch_add(run.trace_events, Ordering::Relaxed);
    TRACE_BYTES.fetch_add(run.trace_bytes, Ordering::Relaxed);
    LOG_OCC_PEAK.fetch_max(run.log_occ_peak, Ordering::Relaxed);
    LOG_STALL_NS.fetch_add(run.log_stall_ns, Ordering::Relaxed);
}

/// Times a named phase from creation to drop; records nothing when
/// collection is disabled. Phases with the same name accumulate.
pub struct PhaseGuard {
    name: String,
    start: Option<Instant>,
}

/// Start timing a phase (e.g. one `repro` experiment).
pub fn phase(name: &str) -> PhaseGuard {
    PhaseGuard {
        name: name.to_string(),
        start: enabled().then(Instant::now),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            PHASES
                .lock()
                .unwrap()
                .push((std::mem::take(&mut self.name), ns));
        }
    }
}

/// Record an already-measured wall share under a phase name (e.g. the
/// sharded engine's internal pre-step/commit split, measured where the
/// phases actually run). Accumulates like [`phase`]; a no-op when
/// collection is disabled.
pub fn phase_ns(name: &str, ns: u64) {
    if enabled() {
        PHASES.lock().unwrap().push((name.to_string(), ns));
    }
}

/// A point-in-time copy of the aggregate counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Simulated runs submitted.
    pub runs: u64,
    /// Engine events across all runs.
    pub events: u64,
    /// Max event-heap size across all runs.
    pub heap_peak: u64,
    /// Max buffered eager messages across all runs.
    pub channel_peak: u64,
    /// Trace events captured across all runs.
    pub trace_events: u64,
    /// In-memory trace bytes across all runs.
    pub trace_bytes: u64,
    /// Max burst-log occupancy across all runs (0 without the log tier).
    pub log_occ_peak: u64,
    /// Burst-log full-log stall time across all runs, ns.
    pub log_stall_ns: u64,
    /// (phase name, wall ns), merged by name and sorted by name.
    pub phases: Vec<(String, u64)>,
}

impl PerfSnapshot {
    /// The deterministic part of the snapshot: everything except host wall
    /// times. Two sweeps of the same work must agree on this exactly,
    /// whatever the worker count.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            self.runs,
            self.events,
            self.heap_peak,
            self.channel_peak,
            self.trace_events,
            self.trace_bytes,
            self.log_occ_peak,
            self.log_stall_ns,
        )
    }

    /// Human-readable stats block (the `repro --perf` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== perf counters ==\n");
        out.push_str(&format!("{:<24} {}\n", "simulated runs", self.runs));
        out.push_str(&format!("{:<24} {}\n", "engine events", self.events));
        out.push_str(&format!("{:<24} {}\n", "event heap peak", self.heap_peak));
        out.push_str(&format!(
            "{:<24} {}\n",
            "channel buffer peak", self.channel_peak
        ));
        out.push_str(&format!("{:<24} {}\n", "trace events", self.trace_events));
        out.push_str(&format!("{:<24} {}\n", "trace bytes", self.trace_bytes));
        if self.log_occ_peak > 0 || self.log_stall_ns > 0 {
            out.push_str(&format!("{:<24} {}\n", "burst-log peak", self.log_occ_peak));
            out.push_str(&format!(
                "{:<24} {:.1} ms\n",
                "burst-log stall",
                self.log_stall_ns as f64 / 1e6
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("phase wall times:\n");
            for (name, ns) in &self.phases {
                out.push_str(&format!("  {:<22} {:>10.1} ms\n", name, *ns as f64 / 1e6));
            }
        }
        out
    }
}

/// Copy out the current aggregate.
pub fn snapshot() -> PerfSnapshot {
    let mut phases: Vec<(String, u64)> = Vec::new();
    for (name, ns) in PHASES.lock().unwrap().iter() {
        match phases.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += ns,
            None => phases.push((name.clone(), *ns)),
        }
    }
    phases.sort();
    PerfSnapshot {
        runs: RUNS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
        heap_peak: HEAP_PEAK.load(Ordering::Relaxed),
        channel_peak: CHANNEL_PEAK.load(Ordering::Relaxed),
        trace_events: TRACE_EVENTS.load(Ordering::Relaxed),
        trace_bytes: TRACE_BYTES.load(Ordering::Relaxed),
        log_occ_peak: LOG_OCC_PEAK.load(Ordering::Relaxed),
        log_stall_ns: LOG_STALL_NS.load(Ordering::Relaxed),
        phases,
    }
}

/// Zero every counter and drop recorded phases (collection state is kept).
pub fn reset() {
    RUNS.store(0, Ordering::SeqCst);
    EVENTS.store(0, Ordering::SeqCst);
    HEAP_PEAK.store(0, Ordering::SeqCst);
    CHANNEL_PEAK.store(0, Ordering::SeqCst);
    TRACE_EVENTS.store(0, Ordering::SeqCst);
    TRACE_BYTES.store(0, Ordering::SeqCst);
    LOG_OCC_PEAK.store(0, Ordering::SeqCst);
    LOG_STALL_NS.store(0, Ordering::SeqCst);
    PHASES.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global; exercise everything in one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn lifecycle_submit_snapshot_reset() {
        reset();
        // Disabled: submissions vanish.
        disable();
        submit(RunPerf {
            events: 100,
            ..RunPerf::default()
        });
        assert_eq!(snapshot().runs, 0);

        enable();
        submit(RunPerf {
            events: 10,
            heap_peak: 4,
            channel_peak: 2,
            trace_events: 3,
            trace_bytes: 96,
            log_occ_peak: 70,
            log_stall_ns: 400,
        });
        submit(RunPerf {
            events: 5,
            heap_peak: 9,
            channel_peak: 1,
            trace_events: 2,
            trace_bytes: 64,
            log_occ_peak: 30,
            log_stall_ns: 100,
        });
        {
            let _g = phase("demo");
        }
        {
            let _g = phase("demo");
        }
        let snap = snapshot();
        // Sums for additive counters, maxima for the peaks.
        assert_eq!(snap.counters(), (2, 15, 9, 2, 5, 160, 70, 500));
        assert_eq!(snap.phases.len(), 1, "same-name phases merge");
        assert_eq!(snap.phases[0].0, "demo");
        let text = snap.render();
        assert!(text.contains("engine events"));
        assert!(text.contains("15"));
        assert!(text.contains("demo"));

        // Disabled phases record nothing.
        disable();
        {
            let _g = phase("ghost");
        }
        assert_eq!(snapshot().phases.len(), 1);

        reset();
        assert_eq!(snapshot(), PerfSnapshot::default());
    }
}

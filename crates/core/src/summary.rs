//! Whole-trace characterization summaries.
//!
//! The paper's off-line analyses (§3.1) provide "means, variances, minima,
//! maxima, and distributions of file operation durations and sizes".
//! [`TraceSummary`] computes exactly that, per operation kind, plus the
//! per-node aggregates that the tables' "node time" columns are built from.

use crate::event::{IoOp, NodeId};
use crate::stats::{Pow2Histogram, SummaryStats};
use crate::trace::Trace;
use std::collections::BTreeMap;

/// Duration and size statistics for one operation kind.
#[derive(Debug, Clone, Default)]
pub struct OpSummary {
    /// Duration statistics, seconds.
    pub duration_secs: SummaryStats,
    /// Size statistics, bytes (data operations only; zero-filled otherwise).
    pub size_bytes: SummaryStats,
    /// Power-of-two distribution of request sizes.
    pub size_dist: Pow2Histogram,
    /// Power-of-two distribution of durations in microseconds.
    pub duration_dist_us: Pow2Histogram,
}

/// Per-node activity aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeSummary {
    /// Operations issued by the node.
    pub ops: u64,
    /// Bytes moved by the node's data operations.
    pub bytes: u64,
    /// Total blocking time, nanoseconds.
    pub time_ns: u64,
}

/// Off-line statistics over a whole trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    per_op: BTreeMap<u8, OpSummary>,
    per_node: BTreeMap<NodeId, NodeSummary>,
}

impl TraceSummary {
    /// Compute the summary from a trace.
    pub fn from_trace(trace: &Trace) -> TraceSummary {
        let mut s = TraceSummary::default();
        for ev in trace.events() {
            let op = s.per_op.entry(ev.op as u8).or_default();
            op.duration_secs.push(ev.duration_secs());
            op.duration_dist_us.push(ev.duration() / 1_000);
            if ev.op.is_data() {
                op.size_bytes.push(ev.bytes as f64);
                op.size_dist.push(ev.bytes);
            }
            let node = s.per_node.entry(ev.node).or_default();
            node.ops += 1;
            node.time_ns += ev.duration();
            if ev.op.is_data() {
                node.bytes += ev.bytes;
            }
        }
        s
    }

    /// Statistics for one operation kind, if any occurred.
    pub fn op(&self, op: IoOp) -> Option<&OpSummary> {
        self.per_op.get(&(op as u8))
    }

    /// Per-node aggregates in node order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeSummary)> {
        self.per_node.iter().map(|(k, v)| (*k, v))
    }

    /// Number of nodes that performed any I/O.
    pub fn active_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Load imbalance across active nodes: max node time / mean node time
    /// (1.0 = perfectly balanced; large values indicate a gateway-style
    /// asymmetry like RENDER's).
    pub fn node_time_imbalance(&self) -> f64 {
        if self.per_node.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self.per_node.values().map(|n| n.time_ns as f64).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        times.iter().fold(0.0_f64, |a, &b| a.max(b)) / mean
    }

    /// Render a compact text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<11} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "op", "count", "mean dur(s)", "max dur(s)", "mean size", "max size"
        );
        for op in IoOp::ALL {
            let Some(s) = self.op(op) else { continue };
            let _ = writeln!(
                out,
                "{:<11} {:>8} {:>12.6} {:>12.6} {:>12.0} {:>12.0}",
                op.label(),
                s.duration_secs.count(),
                s.duration_secs.mean(),
                s.duration_secs.max().unwrap_or(0.0),
                s.size_bytes.mean(),
                s.size_bytes.max().unwrap_or(0.0),
            );
        }
        let _ = writeln!(
            out,
            "active nodes: {}; node-time imbalance (max/mean): {:.2}",
            self.active_nodes(),
            self.node_time_imbalance()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoEvent;
    use crate::trace::Tracer;

    fn trace() -> Trace {
        let t = Tracer::new("s");
        // Node 0: 2 reads of 1 KB and 3 KB taking 1 s and 3 s.
        t.record(
            IoEvent::new(0, 1, IoOp::Read)
                .span(0, 1_000_000_000)
                .extent(0, 1024),
        );
        t.record(
            IoEvent::new(0, 1, IoOp::Read)
                .span(0, 3_000_000_000)
                .extent(0, 3072),
        );
        // Node 1: a seek (no size stats).
        t.record(
            IoEvent::new(1, 1, IoOp::Seek)
                .span(0, 500_000_000)
                .extent(0, 777),
        );
        t.finish()
    }

    #[test]
    fn per_op_stats() {
        let s = TraceSummary::from_trace(&trace());
        let reads = s.op(IoOp::Read).unwrap();
        assert_eq!(reads.duration_secs.count(), 2);
        assert!((reads.duration_secs.mean() - 2.0).abs() < 1e-9);
        assert_eq!(reads.size_bytes.max(), Some(3072.0));
        assert_eq!(reads.size_dist.count(), 2);
        // Seeks have durations but no sizes.
        let seeks = s.op(IoOp::Seek).unwrap();
        assert_eq!(seeks.duration_secs.count(), 1);
        assert_eq!(seeks.size_bytes.count(), 0);
        assert!(s.op(IoOp::Write).is_none());
    }

    #[test]
    fn per_node_aggregates_and_imbalance() {
        let s = TraceSummary::from_trace(&trace());
        assert_eq!(s.active_nodes(), 2);
        let nodes: Vec<_> = s.nodes().collect();
        assert_eq!(nodes[0].1.ops, 2);
        assert_eq!(nodes[0].1.bytes, 4096);
        assert_eq!(nodes[1].1.bytes, 0);
        // Node 0: 4 s, node 1: 0.5 s -> mean 2.25, max 4 -> 1.78.
        assert!((s.node_time_imbalance() - 4.0 / 2.25).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let s = TraceSummary::from_trace(&Tracer::new("e").finish());
        assert_eq!(s.active_nodes(), 0);
        assert_eq!(s.node_time_imbalance(), 1.0);
        assert!(s.render().contains("active nodes: 0"));
    }

    #[test]
    fn render_lists_present_ops_only() {
        let r = TraceSummary::from_trace(&trace()).render();
        assert!(r.contains("Read"));
        assert!(r.contains("Seek"));
        assert!(!r.contains("Write"));
    }
}

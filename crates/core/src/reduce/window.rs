//! Time-window summaries.
//!
//! Pablo's time-window reduction aggregates operation data per fixed-width
//! window of run time, "defin\[ing\] the granularity at which data is
//! summarized" (§3.1). This drives the temporal analyses of the paper:
//! the ESCAT write-burst spacing of Figure 4, the RENDER phase transition at
//! ~210 s (Figures 6–7), and the HTF phase intensities (Figures 9–14) all
//! show up directly in windowed aggregates.

use super::{OpAgg, Reducer};
use crate::event::{IoEvent, IoOp, Ns};

/// Aggregates for one time window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowAgg {
    /// Per-operation aggregates, indexed by `IoOp as u8`.
    ops: [OpAgg; IoOp::ALL.len()],
}

impl WindowAgg {
    /// Aggregate for one operation kind.
    pub fn op(&self, op: IoOp) -> &OpAgg {
        &self.ops[op as usize]
    }

    /// Total operations of any kind in the window.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|a| a.count).sum()
    }

    /// Bytes read in the window.
    pub fn bytes_read(&self) -> u64 {
        self.ops[IoOp::Read as usize].bytes + self.ops[IoOp::AsyncRead as usize].bytes
    }

    /// Bytes written in the window.
    pub fn bytes_written(&self) -> u64 {
        self.ops[IoOp::Write as usize].bytes
    }
}

/// Fixed-width time-window reduction. Events are binned by *start* time.
#[derive(Debug)]
pub struct WindowReducer {
    width_ns: Ns,
    windows: Vec<WindowAgg>,
}

impl WindowReducer {
    /// New reduction with the given window width (must be nonzero).
    pub fn new(width_ns: Ns) -> WindowReducer {
        assert!(width_ns > 0, "window width must be nonzero");
        WindowReducer {
            width_ns,
            windows: Vec::new(),
        }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> Ns {
        self.width_ns
    }

    /// All windows from t=0, in order. Trailing windows with no events exist
    /// only up to the last event seen.
    pub fn windows(&self) -> &[WindowAgg] {
        &self.windows
    }

    /// The window covering time `t`, if any events created it.
    pub fn at(&self, t: Ns) -> Option<&WindowAgg> {
        self.windows.get((t / self.width_ns) as usize)
    }

    /// Indices of windows whose total op count is a local burst: at least
    /// `min_ops` operations and strictly greater than both neighbors. Used to
    /// find the synchronized ESCAT write clusters of Figure 4.
    pub fn burst_windows(&self, min_ops: u64) -> Vec<usize> {
        let w = &self.windows;
        (0..w.len())
            .filter(|&i| {
                let c = w[i].total_ops();
                if c < min_ops {
                    return false;
                }
                let prev = if i > 0 { w[i - 1].total_ops() } else { 0 };
                let next = if i + 1 < w.len() {
                    w[i + 1].total_ops()
                } else {
                    0
                };
                c > prev && c >= next
            })
            .collect()
    }
}

impl Reducer for WindowReducer {
    fn observe(&mut self, ev: &IoEvent) {
        let idx = (ev.start / self.width_ns) as usize;
        if self.windows.len() <= idx {
            self.windows.resize_with(idx + 1, WindowAgg::default);
        }
        self.windows[idx].ops[ev.op as usize].add(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: IoOp, start: Ns, bytes: u64) -> IoEvent {
        IoEvent::new(0, 1, op)
            .span(start, start + 5)
            .extent(0, bytes)
    }

    #[test]
    fn events_bin_by_start_time() {
        let mut r = WindowReducer::new(100);
        r.observe(&ev(IoOp::Read, 0, 10));
        r.observe(&ev(IoOp::Read, 99, 10));
        r.observe(&ev(IoOp::Write, 100, 20));
        r.observe(&ev(IoOp::Write, 250, 20));
        assert_eq!(r.windows().len(), 3);
        assert_eq!(r.windows()[0].op(IoOp::Read).count, 2);
        assert_eq!(r.windows()[1].op(IoOp::Write).count, 1);
        assert_eq!(r.windows()[2].op(IoOp::Write).count, 1);
        assert_eq!(r.windows()[0].bytes_read(), 20);
        assert_eq!(r.windows()[1].bytes_written(), 20);
        assert_eq!(r.at(150).unwrap().total_ops(), 1);
        assert!(r.at(10_000).is_none());
    }

    #[test]
    fn async_reads_count_as_read_bytes() {
        let mut r = WindowReducer::new(10);
        r.observe(&ev(IoOp::AsyncRead, 0, 64));
        assert_eq!(r.windows()[0].bytes_read(), 64);
    }

    #[test]
    fn burst_detection_finds_clusters() {
        let mut r = WindowReducer::new(10);
        // Bursts at windows 2 and 6, noise elsewhere.
        for t in [20, 21, 22, 23, 24] {
            r.observe(&ev(IoOp::Write, t, 1));
        }
        r.observe(&ev(IoOp::Write, 40, 1));
        for t in [60, 61, 62, 63] {
            r.observe(&ev(IoOp::Write, t, 1));
        }
        let bursts = r.burst_windows(3);
        assert_eq!(bursts, vec![2, 6]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_panics() {
        let _ = WindowReducer::new(0);
    }
}

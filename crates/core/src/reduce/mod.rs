//! Real-time performance-data reductions.
//!
//! Pablo supported reducing I/O performance data *on the fly* instead of (or
//! in addition to) capturing full event traces, trading computation
//! perturbation for I/O perturbation (§3.1). Three reductions were offered,
//! and all three are implemented here:
//!
//! * **file lifetime** ([`lifetime`]) — per-file operation counts, durations,
//!   byte volumes, and total open time;
//! * **time window** ([`window`]) — the same aggregates per fixed-width time
//!   window;
//! * **file region** ([`region`]) — the spatial analog: aggregates per
//!   fixed-size region of each file.
//!
//! Every reducer implements [`Reducer`] and can be driven either online (one
//! event at a time, as the tracer sees them) or offline over a frozen
//! [`crate::trace::Trace`].

pub mod lifetime;
pub mod region;
pub mod window;

use crate::event::IoEvent;

/// An online reduction over a stream of I/O events.
pub trait Reducer {
    /// Fold one event into the reduction.
    fn observe(&mut self, event: &IoEvent);

    /// Fold an entire trace (convenience; order follows the trace).
    fn observe_trace(&mut self, trace: &crate::trace::Trace) {
        for ev in trace.events() {
            self.observe(ev);
        }
    }
}

/// Per-operation aggregate shared by all three reductions: count, total
/// blocking time, and byte volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpAgg {
    /// Number of operations.
    pub count: u64,
    /// Sum of operation durations, nanoseconds.
    pub time_ns: u64,
    /// Bytes moved (or seek distance for seeks).
    pub bytes: u64,
}

impl OpAgg {
    /// Fold one event in.
    pub fn add(&mut self, ev: &IoEvent) {
        self.count += 1;
        self.time_ns += ev.duration();
        self.bytes += ev.bytes;
    }

    /// Merge another aggregate.
    pub fn merge(&mut self, other: &OpAgg) {
        self.count += other.count;
        self.time_ns += other.time_ns;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{IoEvent, IoOp};

    #[test]
    fn op_agg_accumulates() {
        let mut agg = OpAgg::default();
        agg.add(&IoEvent::new(0, 1, IoOp::Read).span(0, 10).extent(0, 100));
        agg.add(&IoEvent::new(0, 1, IoOp::Read).span(20, 25).extent(100, 50));
        assert_eq!(agg.count, 2);
        assert_eq!(agg.time_ns, 15);
        assert_eq!(agg.bytes, 150);
        let mut other = OpAgg::default();
        other.add(&IoEvent::new(1, 1, IoOp::Read).span(0, 1).extent(0, 1));
        agg.merge(&other);
        assert_eq!(agg.count, 3);
        assert_eq!(agg.bytes, 151);
    }
}

//! File-region summaries — the spatial analog of time-window summaries.
//!
//! Pablo's file-region reduction "define\[s\] a summary over the accesses to a
//! file region" (§3.1). Each file is divided into fixed-size regions; data
//! operations are charged to every region their extent overlaps (a 3 MB
//! RENDER read spanning 48 stripe-sized regions counts in all 48). This is
//! the reduction that exposes spatial locality: ESCAT's disjoint per-node
//! staging regions, HTF's whole-file scans.

use super::{OpAgg, Reducer};
use crate::event::{FileId, IoEvent};
use std::collections::BTreeMap;

/// Aggregates for one region of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionAgg {
    /// Read aggregate (sync + async).
    pub reads: OpAgg,
    /// Write aggregate.
    pub writes: OpAgg,
    /// Distinct nodes that touched the region (exact, small sets expected).
    touchers: Vec<u32>,
}

impl RegionAgg {
    /// Number of distinct nodes that touched this region.
    pub fn node_count(&self) -> usize {
        self.touchers.len()
    }

    fn touch(&mut self, node: u32) {
        if let Err(pos) = self.touchers.binary_search(&node) {
            self.touchers.insert(pos, node);
        }
    }
}

/// Fixed-size file-region reduction.
#[derive(Debug)]
pub struct RegionReducer {
    region_bytes: u64,
    files: BTreeMap<FileId, BTreeMap<u64, RegionAgg>>,
}

impl RegionReducer {
    /// New reduction with the given region size (must be nonzero). A natural
    /// choice on the Paragon is the PFS stripe unit, 64 KB.
    pub fn new(region_bytes: u64) -> RegionReducer {
        assert!(region_bytes > 0, "region size must be nonzero");
        RegionReducer {
            region_bytes,
            files: BTreeMap::new(),
        }
    }

    /// Region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Regions of one file: (region index, aggregate), ordered by index.
    pub fn file_regions(&self, file: FileId) -> impl Iterator<Item = (u64, &RegionAgg)> {
        self.files
            .get(&file)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (*k, v)))
    }

    /// Aggregate for one (file, region index), if touched.
    pub fn region(&self, file: FileId, idx: u64) -> Option<&RegionAgg> {
        self.files.get(&file).and_then(|m| m.get(&idx))
    }

    /// Number of touched regions of a file.
    pub fn touched_regions(&self, file: FileId) -> usize {
        self.files.get(&file).map_or(0, |m| m.len())
    }

    /// Fraction of a file's touched regions accessed by exactly one node —
    /// a disjointness measure (1.0 for ESCAT's staging files, where each
    /// node owns its region).
    pub fn single_writer_fraction(&self, file: FileId) -> f64 {
        let Some(regions) = self.files.get(&file) else {
            return 0.0;
        };
        if regions.is_empty() {
            return 0.0;
        }
        let single = regions.values().filter(|r| r.node_count() == 1).count();
        single as f64 / regions.len() as f64
    }
}

impl Reducer for RegionReducer {
    fn observe(&mut self, ev: &IoEvent) {
        if !ev.op.is_data() || ev.bytes == 0 {
            return;
        }
        let first = ev.offset / self.region_bytes;
        let last = (ev.offset + ev.bytes - 1) / self.region_bytes;
        let file = self.files.entry(ev.file).or_default();
        for idx in first..=last {
            let region = file.entry(idx).or_default();
            let agg = if ev.op.is_read() {
                &mut region.reads
            } else {
                &mut region.writes
            };
            // Charge the full event to each overlapped region for counts and
            // time; charge only the overlapping bytes for volume.
            let rb_start = idx * self.region_bytes;
            let rb_end = rb_start + self.region_bytes;
            let ov_start = ev.offset.max(rb_start);
            let ov_end = (ev.offset + ev.bytes).min(rb_end);
            agg.count += 1;
            agg.time_ns += ev.duration();
            agg.bytes += ov_end - ov_start;
            region.touch(ev.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoOp;

    fn ev(node: u32, file: FileId, op: IoOp, offset: u64, bytes: u64) -> IoEvent {
        IoEvent::new(node, file, op)
            .span(0, 10)
            .extent(offset, bytes)
    }

    #[test]
    fn extent_spanning_regions_charges_each() {
        let mut r = RegionReducer::new(100);
        // Write [50, 250): overlaps regions 0, 1, 2.
        r.observe(&ev(0, 1, IoOp::Write, 50, 200));
        assert_eq!(r.touched_regions(1), 3);
        assert_eq!(r.region(1, 0).unwrap().writes.bytes, 50);
        assert_eq!(r.region(1, 1).unwrap().writes.bytes, 100);
        assert_eq!(r.region(1, 2).unwrap().writes.bytes, 50);
        // Volume is conserved across regions.
        let total: u64 = r.file_regions(1).map(|(_, a)| a.writes.bytes).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn reads_and_writes_separate() {
        let mut r = RegionReducer::new(64);
        r.observe(&ev(0, 2, IoOp::Read, 0, 64));
        r.observe(&ev(0, 2, IoOp::AsyncRead, 0, 64));
        r.observe(&ev(0, 2, IoOp::Write, 0, 64));
        let region = r.region(2, 0).unwrap();
        assert_eq!(region.reads.count, 2);
        assert_eq!(region.writes.count, 1);
    }

    #[test]
    fn non_data_ops_ignored() {
        let mut r = RegionReducer::new(64);
        r.observe(&ev(0, 1, IoOp::Seek, 0, 4096));
        r.observe(&ev(0, 1, IoOp::Open, 0, 0));
        assert_eq!(r.touched_regions(1), 0);
    }

    #[test]
    fn zero_byte_data_ops_ignored() {
        let mut r = RegionReducer::new(64);
        r.observe(&ev(0, 1, IoOp::Read, 128, 0));
        assert_eq!(r.touched_regions(1), 0);
    }

    #[test]
    fn single_writer_fraction_detects_disjoint_layout() {
        let mut r = RegionReducer::new(100);
        // ESCAT-style: node i owns region i.
        for node in 0..4u32 {
            r.observe(&ev(node, 7, IoOp::Write, node as u64 * 100, 100));
        }
        assert_eq!(r.single_writer_fraction(7), 1.0);
        // Shared region drops the fraction.
        r.observe(&ev(9, 7, IoOp::Write, 0, 100));
        assert_eq!(r.single_writer_fraction(7), 0.75);
        assert_eq!(r.single_writer_fraction(99), 0.0);
    }

    #[test]
    fn node_count_deduplicates() {
        let mut r = RegionReducer::new(100);
        r.observe(&ev(3, 1, IoOp::Write, 0, 10));
        r.observe(&ev(3, 1, IoOp::Write, 20, 10));
        r.observe(&ev(5, 1, IoOp::Read, 30, 10));
        assert_eq!(r.region(1, 0).unwrap().node_count(), 2);
    }
}

//! File-lifetime summaries.
//!
//! Pablo's file-lifetime reduction recorded, per file, "the number and total
//! duration of file reads, writes, seeks, opens, and closes, as well as the
//! number of bytes accessed for each file, and the total time each file was
//! open" (§3.1). [`LifetimeReducer`] computes exactly that, per file, with
//! open time tracked per (node, file) open interval.

use super::{OpAgg, Reducer};
use crate::event::{FileId, IoEvent, IoOp, NodeId, Ns};
use std::collections::BTreeMap;

/// Lifetime summary for one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileLifetime {
    /// Per-operation aggregates, indexed by `IoOp as u8`.
    ops: [OpAgg; IoOp::ALL.len()],
    /// Bytes read from the file (sync + async reads).
    pub bytes_read: u64,
    /// Bytes written to the file.
    pub bytes_written: u64,
    /// Sum over all (node, open-interval) pairs of time the file was open.
    pub open_time_ns: Ns,
    /// Number of nodes currently holding the file open (transient; useful
    /// when the reduction is consulted mid-run).
    pub open_handles: u32,
    /// First time the file was touched.
    pub first_access_ns: Option<Ns>,
    /// Last time the file was touched.
    pub last_access_ns: Option<Ns>,
}

impl FileLifetime {
    /// Aggregate for one operation kind.
    pub fn op(&self, op: IoOp) -> &OpAgg {
        &self.ops[op as usize]
    }

    /// Total number of operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|a| a.count).sum()
    }

    /// Total blocking time across all operation kinds.
    pub fn total_time_ns(&self) -> Ns {
        self.ops.iter().map(|a| a.time_ns).sum()
    }
}

/// Per-file lifetime reduction.
#[derive(Debug, Default)]
pub struct LifetimeReducer {
    files: BTreeMap<FileId, FileLifetime>,
    /// Open timestamps per (node, file), to charge open intervals.
    open_since: BTreeMap<(NodeId, FileId), Ns>,
}

impl LifetimeReducer {
    /// Empty reduction.
    pub fn new() -> LifetimeReducer {
        LifetimeReducer::default()
    }

    /// Summary for one file, if it was ever touched.
    pub fn file(&self, file: FileId) -> Option<&FileLifetime> {
        self.files.get(&file)
    }

    /// All (file, summary) pairs, ordered by file id.
    pub fn files(&self) -> impl Iterator<Item = (FileId, &FileLifetime)> {
        self.files.iter().map(|(k, v)| (*k, v))
    }

    /// Number of distinct files touched.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Close out any still-open handles at time `now`, charging their open
    /// time. Call at end of run for programs that never close some files
    /// (RENDER leaves its data files open).
    pub fn finish(&mut self, now: Ns) {
        let open = std::mem::take(&mut self.open_since);
        for ((_, file), since) in open {
            let entry = self.files.entry(file).or_default();
            entry.open_time_ns += now.saturating_sub(since);
            entry.open_handles = entry.open_handles.saturating_sub(1);
        }
    }
}

impl Reducer for LifetimeReducer {
    fn observe(&mut self, ev: &IoEvent) {
        let entry = self.files.entry(ev.file).or_default();
        entry.ops[ev.op as usize].add(ev);
        if ev.op.is_read() {
            entry.bytes_read += ev.bytes;
        }
        if ev.op.is_write() {
            entry.bytes_written += ev.bytes;
        }
        entry.first_access_ns = Some(entry.first_access_ns.map_or(ev.start, |t| t.min(ev.start)));
        entry.last_access_ns = Some(entry.last_access_ns.map_or(ev.end, |t| t.max(ev.end)));
        match ev.op {
            IoOp::Open => {
                entry.open_handles += 1;
                self.open_since.insert((ev.node, ev.file), ev.end);
            }
            IoOp::Close => {
                if let Some(since) = self.open_since.remove(&(ev.node, ev.file)) {
                    entry.open_time_ns += ev.start.saturating_sub(since);
                }
                entry.open_handles = entry.open_handles.saturating_sub(1);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: NodeId, file: FileId, op: IoOp, start: Ns, end: Ns, bytes: u64) -> IoEvent {
        IoEvent::new(node, file, op)
            .span(start, end)
            .extent(0, bytes)
    }

    #[test]
    fn per_file_counts_and_bytes() {
        let mut r = LifetimeReducer::new();
        r.observe(&ev(0, 7, IoOp::Open, 0, 10, 0));
        r.observe(&ev(0, 7, IoOp::Write, 10, 30, 2048));
        r.observe(&ev(0, 7, IoOp::Read, 30, 40, 1024));
        r.observe(&ev(0, 7, IoOp::AsyncRead, 40, 41, 512));
        r.observe(&ev(0, 7, IoOp::Close, 50, 55, 0));
        r.observe(&ev(1, 8, IoOp::Write, 0, 5, 9));

        let f7 = r.file(7).unwrap();
        assert_eq!(f7.op(IoOp::Write).count, 1);
        assert_eq!(f7.op(IoOp::Read).count, 1);
        assert_eq!(f7.bytes_written, 2048);
        assert_eq!(f7.bytes_read, 1024 + 512);
        assert_eq!(f7.open_time_ns, 40); // open end 10 -> close start 50
        assert_eq!(f7.open_handles, 0);
        assert_eq!(f7.total_ops(), 5);
        assert_eq!(f7.first_access_ns, Some(0));
        assert_eq!(f7.last_access_ns, Some(55));

        assert_eq!(r.file(8).unwrap().bytes_written, 9);
        assert_eq!(r.file_count(), 2);
        assert!(r.file(99).is_none());
    }

    #[test]
    fn open_time_per_node_handle() {
        // Two nodes holding the same file open concurrently both accrue time.
        let mut r = LifetimeReducer::new();
        r.observe(&ev(0, 1, IoOp::Open, 0, 1, 0));
        r.observe(&ev(1, 1, IoOp::Open, 0, 1, 0));
        r.observe(&ev(0, 1, IoOp::Close, 11, 12, 0));
        r.observe(&ev(1, 1, IoOp::Close, 21, 22, 0));
        assert_eq!(r.file(1).unwrap().open_time_ns, 10 + 20);
    }

    #[test]
    fn finish_closes_dangling_handles() {
        let mut r = LifetimeReducer::new();
        r.observe(&ev(0, 1, IoOp::Open, 0, 2, 0));
        assert_eq!(r.file(1).unwrap().open_handles, 1);
        r.finish(100);
        let f = r.file(1).unwrap();
        assert_eq!(f.open_time_ns, 98);
        assert_eq!(f.open_handles, 0);
    }

    #[test]
    fn close_without_open_is_tolerated() {
        let mut r = LifetimeReducer::new();
        r.observe(&ev(0, 1, IoOp::Close, 5, 6, 0));
        let f = r.file(1).unwrap();
        assert_eq!(f.open_time_ns, 0);
        assert_eq!(f.open_handles, 0);
        assert_eq!(f.op(IoOp::Close).count, 1);
    }

    #[test]
    fn seek_distance_counts_as_bytes_but_not_volume() {
        let mut r = LifetimeReducer::new();
        r.observe(&ev(0, 1, IoOp::Seek, 0, 1, 4096));
        let f = r.file(1).unwrap();
        assert_eq!(f.op(IoOp::Seek).bytes, 4096);
        assert_eq!(f.bytes_read, 0);
        assert_eq!(f.bytes_written, 0);
    }
}

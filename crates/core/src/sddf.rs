//! Self-describing trace (de)serialization.
//!
//! Pablo stored performance data in SDDF, a *self-describing data format*:
//! each file carries descriptors for the record layout, so analysis tools can
//! decode data whose semantics they do not know (§3.1). This module is a
//! compact binary homage: an encoded trace carries a field-descriptor table
//! (name + type code per field) ahead of the packed records, and the decoder
//! verifies the descriptors before trusting the payload. A change to the
//! event layout therefore fails loudly at decode time instead of silently
//! misparsing.
//!
//! A plain-text export ([`to_text`]) is also provided for human inspection
//! and for diffing traces in tests.

use crate::event::{IoEvent, IoOp};
use crate::trace::{Trace, TraceMeta};
use crate::{Error, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SDDF";
const VERSION: u16 = 1;

/// Field type codes understood by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum FieldType {
    U32 = 1,
    U64 = 2,
    U8 = 3,
}

/// The record schema for [`IoEvent`], in serialization order.
const SCHEMA: [(&str, FieldType); 7] = [
    ("node", FieldType::U32),
    ("file", FieldType::U32),
    ("op", FieldType::U8),
    ("offset", FieldType::U64),
    ("bytes", FieldType::U64),
    ("start_ns", FieldType::U64),
    ("end_ns", FieldType::U64),
];

/// Encode a trace into the self-describing binary format.
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.len() * 37);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);

    // --- metadata ---
    let label = trace.meta().label.as_bytes();
    buf.put_u32(label.len() as u32);
    buf.put_slice(label);
    buf.put_u32(trace.meta().nodes);
    buf.put_u64(trace.meta().wall_ns);

    // --- field descriptor table (the "self-describing" part) ---
    buf.put_u16(SCHEMA.len() as u16);
    for (name, ty) in SCHEMA {
        buf.put_u8(name.len() as u8);
        buf.put_slice(name.as_bytes());
        buf.put_u8(ty as u8);
    }

    // --- records ---
    buf.put_u64(trace.len() as u64);
    for ev in trace.events() {
        buf.put_u32(ev.node);
        buf.put_u32(ev.file);
        buf.put_u8(ev.op as u8);
        buf.put_u64(ev.offset);
        buf.put_u64(ev.bytes);
        buf.put_u64(ev.start);
        buf.put_u64(ev.end);
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(Error::Decode(format!(
            "truncated while reading {what}: need {n} bytes, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Decode a trace previously produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<Trace> {
    need(&buf, 6, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Decode(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(Error::Decode(format!("unsupported version {version}")));
    }

    need(&buf, 4, "label length")?;
    let label_len = buf.get_u32() as usize;
    need(&buf, label_len, "label")?;
    let label = String::from_utf8(buf.copy_to_bytes(label_len).to_vec())
        .map_err(|e| Error::Decode(format!("label not utf-8: {e}")))?;
    need(&buf, 12, "run info")?;
    let nodes = buf.get_u32();
    let wall_ns = buf.get_u64();

    // Verify the descriptor table matches the schema we know how to decode.
    need(&buf, 2, "field count")?;
    let nfields = buf.get_u16() as usize;
    if nfields != SCHEMA.len() {
        return Err(Error::Decode(format!(
            "schema mismatch: {nfields} fields, expected {}",
            SCHEMA.len()
        )));
    }
    for (name, ty) in SCHEMA {
        need(&buf, 1, "field name length")?;
        let nlen = buf.get_u8() as usize;
        need(&buf, nlen + 1, "field descriptor")?;
        let fname = buf.copy_to_bytes(nlen);
        if fname.as_ref() != name.as_bytes() {
            return Err(Error::Decode(format!(
                "field name mismatch: got {:?}, expected {name}",
                String::from_utf8_lossy(&fname)
            )));
        }
        let fty = buf.get_u8();
        if fty != ty as u8 {
            return Err(Error::Decode(format!(
                "field {name} type mismatch: got {fty}, expected {}",
                ty as u8
            )));
        }
    }

    need(&buf, 8, "record count")?;
    let count = buf.get_u64() as usize;
    let record_size: usize = 4 + 4 + 1 + 8 + 8 + 8 + 8;
    let total = count
        .checked_mul(record_size)
        .ok_or_else(|| Error::Decode(format!("record count {count} overflows")))?;
    need(&buf, total, "records")?;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let node = buf.get_u32();
        let file = buf.get_u32();
        let opb = buf.get_u8();
        let op = IoOp::from_u8(opb).ok_or_else(|| Error::Decode(format!("bad op code {opb}")))?;
        let offset = buf.get_u64();
        let bytes = buf.get_u64();
        let start = buf.get_u64();
        let end = buf.get_u64();
        let ev = IoEvent {
            node,
            file,
            op,
            offset,
            bytes,
            start,
            end,
        };
        ev.validate()?;
        events.push(ev);
    }
    if buf.has_remaining() {
        return Err(Error::Decode(format!(
            "{} trailing bytes after records",
            buf.remaining()
        )));
    }
    Ok(Trace::from_parts(
        TraceMeta {
            label,
            nodes,
            wall_ns,
        },
        events,
    ))
}

/// Render a trace as tab-separated text (one event per line, with header).
pub fn to_text(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 48 + 128);
    let _ = writeln!(
        out,
        "# trace {} nodes={} wall_ns={}",
        trace.meta().label,
        trace.meta().nodes,
        trace.meta().wall_ns
    );
    out.push_str("node\tfile\top\toffset\tbytes\tstart_ns\tend_ns\n");
    for ev in trace.events() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ev.node,
            ev.file,
            ev.op.label(),
            ev.offset,
            ev.bytes,
            ev.start,
            ev.end
        );
    }
    out
}

/// 64-bit FNV-1a digest of a trace's binary (SDDF) encoding.
///
/// The digest covers every event field plus the run metadata, so two traces
/// fingerprint equal iff their SDDF encodings are byte-identical. The
/// golden-trace regression tests pin these digests: they are stable across
/// platforms (the codec is fixed-width big-endian) and cheap enough to
/// compute at full paper scale.
pub fn fingerprint(trace: &Trace) -> u64 {
    fingerprint_bytes(&to_bytes(trace))
}

/// 64-bit FNV-1a digest of an arbitrary byte string (the same hash
/// [`fingerprint`] applies to a trace's SDDF encoding).
pub fn fingerprint_bytes(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Write a trace to a file in the binary format.
pub fn write_file(trace: &Trace, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, to_bytes(trace))?;
    Ok(())
}

/// Read a trace from a binary-format file.
pub fn read_file(path: &std::path::Path) -> Result<Trace> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample() -> Trace {
        let t = Tracer::new("sample");
        for i in 0..10u64 {
            t.record(
                IoEvent::new(
                    (i % 3) as u32,
                    7,
                    if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                )
                .span(i * 100, i * 100 + 50)
                .extent(i * 4096, 2048),
            );
        }
        t.set_run_info(3, 1000);
        t.finish()
    }

    #[test]
    fn roundtrip_binary() {
        let trace = sample();
        let bytes = to_bytes(&trace);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn roundtrip_empty() {
        let trace = Tracer::new("empty").finish();
        let back = from_bytes(&to_bytes(&trace)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(Error::Decode(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = to_bytes(&sample()).to_vec();
        // Any strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_op_code() {
        let trace = sample();
        let bytes = to_bytes(&trace).to_vec();
        // Find the first record's op byte: header + meta + descriptors + count.
        // Easier: corrupt every byte position and require no panics.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] = 0xFF;
            let _ = from_bytes(&b); // must not panic; Err or (rarely) Ok
        }
    }

    #[test]
    fn text_export_contains_rows() {
        let txt = to_text(&sample());
        assert!(txt.contains("node\tfile\top"));
        assert_eq!(txt.lines().count(), 2 + 10);
        assert!(txt.contains("Read"));
        assert!(txt.contains("Write"));
    }

    #[test]
    fn fingerprint_is_fnv1a_of_encoding() {
        // Reference FNV-1a vectors.
        assert_eq!(fingerprint_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        let trace = sample();
        assert_eq!(fingerprint(&trace), fingerprint_bytes(&to_bytes(&trace)));
        // Sensitive to any event change.
        let t = Tracer::new("sample");
        t.set_run_info(3, 1000);
        assert_ne!(fingerprint(&trace), fingerprint(&t.finish()));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sio_core_sddf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sddf");
        let trace = sample();
        write_file(&trace, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, trace);
        let _ = std::fs::remove_file(&path);
    }
}

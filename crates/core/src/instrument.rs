//! Instrumenting *real* file I/O.
//!
//! Pablo's instrumentation brackets "invocations of input/output routines
//! … captur\[ing\] the parameters and duration of each invocation" (§3.1) in
//! real programs. This module is that capability for Rust code:
//! [`TracedFile`] wraps `std::fs::File`, records one [`IoEvent`] per call
//! with monotonic-clock timestamps, and implements `Read`/`Write`/`Seek`,
//! so existing code can be characterized by swapping the constructor.
//!
//! The captured trace feeds the exact same reductions, tables, and
//! classifiers as the simulator's traces — the analysis pipeline does not
//! care where events came from.

use crate::event::{FileId, IoEvent, IoOp, NodeId, Ns};
use crate::trace::Tracer;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// A clock mapping real time onto trace timestamps. One epoch per program;
/// share it across all traced files so their events are mutually ordered.
#[derive(Debug, Clone)]
pub struct TraceClock {
    epoch: Instant,
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

impl TraceClock {
    /// Start a new epoch (t = 0) now.
    pub fn new() -> TraceClock {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the epoch.
    pub fn now(&self) -> Ns {
        self.epoch.elapsed().as_nanos() as Ns
    }
}

/// An instrumented file handle.
pub struct TracedFile {
    inner: File,
    tracer: Tracer,
    clock: TraceClock,
    node: NodeId,
    file_id: FileId,
    /// Current position, tracked so events carry offsets like the
    /// simulator's do.
    pos: u64,
}

impl TracedFile {
    /// Open an existing file for reading, recording the open.
    pub fn open(
        path: &Path,
        tracer: Tracer,
        clock: TraceClock,
        node: NodeId,
        file_id: FileId,
    ) -> std::io::Result<TracedFile> {
        let start = clock.now();
        let inner = File::open(path)?;
        let end = clock.now();
        tracer.record(IoEvent::new(node, file_id, IoOp::Open).span(start, end));
        Ok(TracedFile {
            inner,
            tracer,
            clock,
            node,
            file_id,
            pos: 0,
        })
    }

    /// Create (or truncate) a file for writing, recording the open.
    pub fn create(
        path: &Path,
        tracer: Tracer,
        clock: TraceClock,
        node: NodeId,
        file_id: FileId,
    ) -> std::io::Result<TracedFile> {
        let start = clock.now();
        let inner = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let end = clock.now();
        tracer.record(IoEvent::new(node, file_id, IoOp::Open).span(start, end));
        Ok(TracedFile {
            inner,
            tracer,
            clock,
            node,
            file_id,
            pos: 0,
        })
    }

    /// Explicitly close, recording the close event. (Dropping without
    /// calling this records no close, mirroring programs that leak
    /// descriptors — RENDER's data files, for instance.)
    pub fn close(self) -> std::io::Result<()> {
        let start = self.clock.now();
        drop(self.inner);
        let end = self.clock.now();
        self.tracer
            .record(IoEvent::new(self.node, self.file_id, IoOp::Close).span(start, end));
        Ok(())
    }

    /// Flush, recorded as a [`IoOp::Flush`] event.
    pub fn flush_traced(&mut self) -> std::io::Result<()> {
        let start = self.clock.now();
        self.inner.flush()?;
        let end = self.clock.now();
        self.tracer
            .record(IoEvent::new(self.node, self.file_id, IoOp::Flush).span(start, end));
        Ok(())
    }
}

impl Read for TracedFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let start = self.clock.now();
        let n = self.inner.read(buf)?;
        let end = self.clock.now();
        self.tracer.record(
            IoEvent::new(self.node, self.file_id, IoOp::Read)
                .span(start, end)
                .extent(self.pos, n as u64),
        );
        self.pos += n as u64;
        Ok(n)
    }
}

impl Write for TracedFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let start = self.clock.now();
        let n = self.inner.write(buf)?;
        let end = self.clock.now();
        self.tracer.record(
            IoEvent::new(self.node, self.file_id, IoOp::Write)
                .span(start, end)
                .extent(self.pos, n as u64),
        );
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for TracedFile {
    fn seek(&mut self, to: SeekFrom) -> std::io::Result<u64> {
        let start = self.clock.now();
        let new_pos = self.inner.seek(to)?;
        let end = self.clock.now();
        let distance = new_pos.abs_diff(self.pos);
        self.tracer.record(
            IoEvent::new(self.node, self.file_id, IoOp::Seek)
                .span(start, end)
                .extent(new_pos, distance),
        );
        self.pos = new_pos;
        Ok(new_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::lifetime::LifetimeReducer;
    use crate::reduce::Reducer;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sio_instrument_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn real_io_is_captured_and_analyzable() {
        let path = tmp("t1.dat");
        let tracer = Tracer::new("real-io");
        let clock = TraceClock::new();

        let mut f = TracedFile::create(&path, tracer.clone(), clock.clone(), 0, 7).unwrap();
        f.write_all(b"hello world").unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = [0u8; 5];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        f.flush_traced().unwrap();
        f.close().unwrap();

        let trace = tracer.finish();
        assert_eq!(trace.of_op(IoOp::Open).count(), 1);
        assert_eq!(trace.of_op(IoOp::Write).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 1);
        assert_eq!(trace.of_op(IoOp::Seek).count(), 1);
        assert_eq!(trace.of_op(IoOp::Flush).count(), 1);
        assert_eq!(trace.of_op(IoOp::Close).count(), 1);
        trace.validate().unwrap();

        // The same reductions the simulator traces feed.
        let mut lifetimes = LifetimeReducer::new();
        lifetimes.observe_trace(&trace);
        let lt = lifetimes.file(7).unwrap();
        assert_eq!(lt.bytes_written, 11);
        assert_eq!(lt.bytes_read, 5);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn offsets_track_position() {
        let path = tmp("t2.dat");
        let tracer = Tracer::new("offsets");
        let clock = TraceClock::new();
        let mut f = TracedFile::create(&path, tracer.clone(), clock, 3, 9).unwrap();
        f.write_all(&[0u8; 100]).unwrap();
        f.write_all(&[1u8; 50]).unwrap();
        f.seek(SeekFrom::Start(25)).unwrap();
        f.write_all(&[2u8; 10]).unwrap();
        let trace = tracer.finish();
        let writes: Vec<(u64, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.offset, e.bytes))
            .collect();
        assert_eq!(writes, vec![(0, 100), (100, 50), (25, 10)]);
        // Seek distance: from 150 back to 25.
        let seek = trace.of_op(IoOp::Seek).next().unwrap();
        assert_eq!(seek.bytes, 125);
        assert_eq!(seek.offset, 25);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_are_monotonic_per_clock() {
        let path = tmp("t3.dat");
        let tracer = Tracer::new("mono");
        let clock = TraceClock::new();
        let mut f = TracedFile::create(&path, tracer.clone(), clock, 0, 0).unwrap();
        for _ in 0..10 {
            f.write_all(&[9u8; 8]).unwrap();
        }
        let trace = tracer.finish();
        let starts: Vec<u64> = trace.events().iter().map(|e| e.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_missing_file_fails_without_event_leak() {
        let tracer = Tracer::new("missing");
        let clock = TraceClock::new();
        let r = TracedFile::open(&tmp("does-not-exist"), tracer.clone(), clock, 0, 0);
        assert!(r.is_err());
        assert!(tracer.is_empty());
    }
}

//! Application-level I/O event model.
//!
//! An [`IoEvent`] corresponds to one invocation of an I/O routine on one
//! node: the operation kind, the file it touched, the byte extent involved,
//! and the (simulated or real) wall-clock interval the call occupied. This is
//! the unit of data the Pablo instrumentation captured per call (§3.1 of the
//! paper); every reduction and statistic in this crate consumes streams of
//! these events.

use serde::{Deserialize, Serialize};

/// Identifier of a (compute) node. Matches the Paragon's logical node number.
pub type NodeId = u32;

/// Identifier of a file, as reported in the paper's file-access timelines
/// (e.g. ESCAT's files 3, 4, 5, 7, 8, 9, 10, 11 in Figure 5).
pub type FileId = u32;

/// A timestamp or duration in nanoseconds.
///
/// The characterization core is agnostic about where time comes from: the
/// Paragon simulator feeds it simulated nanoseconds; a `std::fs` shim would
/// feed it monotonic clock readings.
pub type Ns = u64;

/// Nanoseconds per second, as an `f64` for report formatting.
pub const NS_PER_SEC: f64 = 1.0e9;

/// The kinds of I/O operation the instrumentation distinguishes.
///
/// The set mirrors the operation rows of Tables 1, 3, and 5 of the paper:
/// reads, writes, seeks, opens, and closes, plus the asynchronous read /
/// I/O-wait pair observed in RENDER (Table 3) and the Fortran `lsize` /
/// `forflush` calls observed in HTF (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum IoOp {
    /// Synchronous (blocking) read.
    Read = 0,
    /// Synchronous write.
    Write = 1,
    /// Explicit file-pointer seek. For seeks, [`IoEvent::bytes`] records the
    /// *seek distance* (the paper's Table 5 reports a byte "volume" for the
    /// seeks of the self-consistent-field phase).
    Seek = 2,
    /// File open (or create).
    Open = 3,
    /// File close.
    Close = 4,
    /// Asynchronous read issue (`iread` on the Paragon). The event interval
    /// covers only the *issue* cost; the data arrives later.
    AsyncRead = 5,
    /// Wait for an outstanding asynchronous operation (`iowait`). The event
    /// interval is the blocked time not hidden by overlap.
    IoWait = 6,
    /// Buffer flush (`forflush` in the HTF Fortran runtime).
    Flush = 7,
    /// File-size query (`lsize`).
    Lsize = 8,
}

impl IoOp {
    /// All operation kinds, in table-row order.
    pub const ALL: [IoOp; 9] = [
        IoOp::Read,
        IoOp::Write,
        IoOp::Seek,
        IoOp::Open,
        IoOp::Close,
        IoOp::AsyncRead,
        IoOp::IoWait,
        IoOp::Flush,
        IoOp::Lsize,
    ];

    /// Whether the operation moves user data (reads and writes, sync or not).
    pub fn is_data(self) -> bool {
        matches!(self, IoOp::Read | IoOp::Write | IoOp::AsyncRead)
    }

    /// Whether the operation reads user data.
    pub fn is_read(self) -> bool {
        matches!(self, IoOp::Read | IoOp::AsyncRead)
    }

    /// Whether the operation writes user data.
    pub fn is_write(self) -> bool {
        self == IoOp::Write
    }

    /// Human-readable label used in reports (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            IoOp::Read => "Read",
            IoOp::Write => "Write",
            IoOp::Seek => "Seek",
            IoOp::Open => "Open",
            IoOp::Close => "Close",
            IoOp::AsyncRead => "AsynchRead",
            IoOp::IoWait => "I/O Wait",
            IoOp::Flush => "Forflush",
            IoOp::Lsize => "Lsize",
        }
    }

    /// Inverse of the `repr(u8)` discriminant, for trace decoding.
    pub fn from_u8(v: u8) -> Option<IoOp> {
        IoOp::ALL.into_iter().find(|op| *op as u8 == v)
    }
}

/// One instrumented I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoEvent {
    /// Node that issued the call.
    pub node: NodeId,
    /// File the call addressed. Events that do not address a file (e.g. a
    /// pure `iowait`) use the file id of the operation they complete.
    pub file: FileId,
    /// Operation kind.
    pub op: IoOp,
    /// Starting byte offset of the access (0 when not meaningful).
    pub offset: u64,
    /// Bytes transferred; for [`IoOp::Seek`] the absolute seek distance.
    pub bytes: u64,
    /// Call start, in nanoseconds.
    pub start: Ns,
    /// Call end (completion of the blocking portion), in nanoseconds.
    pub end: Ns,
}

impl IoEvent {
    /// Create an event with zero extent and zero-length interval; chain with
    /// [`IoEvent::span`] and [`IoEvent::extent`] to fill it in.
    pub fn new(node: NodeId, file: FileId, op: IoOp) -> IoEvent {
        IoEvent {
            node,
            file,
            op,
            offset: 0,
            bytes: 0,
            start: 0,
            end: 0,
        }
    }

    /// Set the time interval `[start, end]` of the call.
    #[must_use]
    pub fn span(mut self, start: Ns, end: Ns) -> IoEvent {
        self.start = start;
        self.end = end;
        self
    }

    /// Set the byte extent `[offset, offset + bytes)` the call addressed.
    #[must_use]
    pub fn extent(mut self, offset: u64, bytes: u64) -> IoEvent {
        self.offset = offset;
        self.bytes = bytes;
        self
    }

    /// Duration of the blocking portion of the call.
    pub fn duration(&self) -> Ns {
        self.end.saturating_sub(self.start)
    }

    /// Duration in (fractional) seconds, for report formatting.
    pub fn duration_secs(&self) -> f64 {
        self.duration() as f64 / NS_PER_SEC
    }

    /// Validate internal consistency (`end >= start`).
    pub fn validate(&self) -> crate::Result<()> {
        if self.end < self.start {
            return Err(crate::Error::InvalidEvent(format!(
                "event ends before it starts: {self:?}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrips_through_u8() {
        for op in IoOp::ALL {
            assert_eq!(IoOp::from_u8(op as u8), Some(op));
        }
        assert_eq!(IoOp::from_u8(200), None);
    }

    #[test]
    fn op_classification() {
        assert!(IoOp::Read.is_data());
        assert!(IoOp::AsyncRead.is_data());
        assert!(IoOp::Write.is_data());
        assert!(!IoOp::Seek.is_data());
        assert!(IoOp::Read.is_read());
        assert!(IoOp::AsyncRead.is_read());
        assert!(!IoOp::Write.is_read());
        assert!(IoOp::Write.is_write());
        assert!(!IoOp::IoWait.is_write());
    }

    #[test]
    fn event_builder_and_duration() {
        let ev = IoEvent::new(3, 9, IoOp::Write).span(10, 35).extent(100, 8);
        assert_eq!(ev.node, 3);
        assert_eq!(ev.file, 9);
        assert_eq!(ev.duration(), 25);
        assert_eq!(ev.offset, 100);
        assert_eq!(ev.bytes, 8);
        ev.validate().unwrap();
    }

    #[test]
    fn invalid_event_rejected() {
        let ev = IoEvent::new(0, 0, IoOp::Read).span(10, 5);
        assert!(ev.validate().is_err());
        // saturating: duration never underflows
        assert_eq!(ev.duration(), 0);
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(IoOp::AsyncRead.label(), "AsynchRead");
        assert_eq!(IoOp::IoWait.label(), "I/O Wait");
        assert_eq!(IoOp::Flush.label(), "Forflush");
    }
}

//! Checkpoint image format and atomic commit protocol.
//!
//! A checkpoint image is a self-validating record: a fixed little-endian
//! header (magic, format version, application/node/epoch identity, payload
//! length) followed by the payload, with an FNV-1a checksum over everything
//! that precedes it. [`CheckpointImage::decode`] accepts a byte buffer only
//! when every field checks out — a truncated, bit-flipped, or
//! wrong-version image yields a typed [`CheckpointError`], never a
//! half-valid epoch.
//!
//! [`CheckpointStore`] layers the commit protocol on top:
//! write-temp / validate / rename. A staged buffer replaces the committed
//! slot only after it fully validates *and* its epoch advances; on any
//! failure the slot keeps the previous epoch untouched. This is the
//! in-simulation analog of writing `ckpt.tmp`, fsyncing, verifying, and
//! `rename(2)`-ing over `ckpt` — a crash at any byte boundary leaves either
//! the old epoch or nothing, never a torn image that reads as valid.

use crate::sddf::fingerprint_bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Image magic ("SIOC" little-endian).
pub const MAGIC: u32 = 0x434F_4953;
/// Current image format version.
pub const VERSION: u32 = 1;
/// Fixed header size: magic, version, app, node, epoch, payload length
/// (u32 each) + u64 checksum.
pub const HEADER_LEN: usize = 32;

/// Why a byte buffer failed to validate as a checkpoint image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer shorter than the header + declared payload.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// First word is not [`MAGIC`].
    BadMagic {
        /// The word found.
        found: u32,
    },
    /// Unsupported format version.
    BadVersion {
        /// The version found.
        found: u32,
    },
    /// Checksum mismatch: the image was torn or corrupted.
    BadChecksum {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// Commit refused: the staged epoch does not advance the committed one.
    StaleEpoch {
        /// Epoch already committed.
        committed: u32,
        /// Epoch of the staged image.
        staged: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { need, got } => {
                write!(
                    f,
                    "truncated checkpoint image: need {need} bytes, got {got}"
                )
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:#010x}")
            }
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found}")
            }
            CheckpointError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header says {expected:#018x}, bytes hash to {found:#018x}"
                )
            }
            CheckpointError::StaleEpoch { committed, staged } => {
                write!(
                    f,
                    "stale checkpoint epoch {staged} (epoch {committed} already committed)"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One versioned, checksummed checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Application identity (distinguishes programs sharing a store).
    pub app_id: u32,
    /// Compute node that wrote the record.
    pub node: u32,
    /// Epoch the record commits (1-based count of completed boundaries).
    pub epoch: u32,
    /// Opaque application progress snapshot.
    pub payload: Vec<u8>,
}

impl CheckpointImage {
    /// Total encoded size for a payload of `payload_len` bytes.
    pub fn encoded_len(payload_len: usize) -> usize {
        HEADER_LEN + payload_len
    }

    /// Serialize: header + payload, checksum last-written field.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::encoded_len(self.payload.len()));
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.app_id.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        // Checksum covers the header prefix and the payload; splice it in
        // between so decode can hash exactly what encode hashed.
        let checksum = checksum_of(&out[..24], &self.payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Validate and deserialize a buffer. Every failure mode is typed; a
    /// prefix of a valid image never decodes.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointImage, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated {
                need: HEADER_LEN,
                got: bytes.len(),
            });
        }
        let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        let magic = word(0);
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = word(4);
        if version != VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let payload_len = word(20) as usize;
        let need = Self::encoded_len(payload_len);
        if bytes.len() < need {
            return Err(CheckpointError::Truncated {
                need,
                got: bytes.len(),
            });
        }
        let expected = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let payload = &bytes[HEADER_LEN..need];
        let found = checksum_of(&bytes[..24], payload);
        if expected != found {
            return Err(CheckpointError::BadChecksum { expected, found });
        }
        Ok(CheckpointImage {
            app_id: word(8),
            node: word(12),
            epoch: word(16),
            payload: payload.to_vec(),
        })
    }
}

/// FNV-1a over the header prefix (through `payload_len`) and the payload.
fn checksum_of(header_prefix: &[u8], payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(header_prefix.len() + payload.len());
    buf.extend_from_slice(header_prefix);
    buf.extend_from_slice(payload);
    fingerprint_bytes(&buf)
}

/// Deterministic progress payload for a checkpoint record: a fixed-length
/// byte stream derived from the record's identity, so every run of a
/// workload stages bit-identical images (and torn prefixes are
/// reproducible).
pub fn progress_payload(app_id: u32, node: u32, epoch: u32, len: usize) -> Vec<u8> {
    let mut x =
        ((app_id as u64) << 40) ^ ((node as u64) << 20) ^ (epoch as u64) ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

/// The commit side of the protocol: named slots, each holding the newest
/// fully-validated image. `try_commit` is the rename step — all or
/// nothing, epoch monotone.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    slots: BTreeMap<String, CheckpointImage>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Attempt to commit a staged buffer into `slot`. The buffer must
    /// decode as a valid image whose epoch strictly advances the slot's
    /// committed epoch; otherwise the slot is left exactly as it was and
    /// the failure is returned. On success the committed epoch is returned.
    pub fn try_commit(&mut self, slot: &str, staged: &[u8]) -> Result<u32, CheckpointError> {
        let img = CheckpointImage::decode(staged)?;
        if let Some(prev) = self.slots.get(slot) {
            if img.epoch <= prev.epoch {
                return Err(CheckpointError::StaleEpoch {
                    committed: prev.epoch,
                    staged: img.epoch,
                });
            }
        }
        let epoch = img.epoch;
        self.slots.insert(slot.to_string(), img);
        Ok(epoch)
    }

    /// The committed image in `slot`, if any.
    pub fn latest(&self, slot: &str) -> Option<&CheckpointImage> {
        self.slots.get(slot)
    }

    /// The committed epoch in `slot`, if any.
    pub fn latest_epoch(&self, slot: &str) -> Option<u32> {
        self.slots.get(slot).map(|img| img.epoch)
    }

    /// Smallest committed epoch across `slots` — the newest globally
    /// consistent epoch when every participant must reach a boundary
    /// before it counts. `None` if any slot has no commit at all.
    pub fn consistent_epoch(&self, slots: &[String]) -> Option<u32> {
        slots
            .iter()
            .map(|s| self.latest_epoch(s))
            .collect::<Option<Vec<u32>>>()
            .map(|es| es.into_iter().min().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(epoch: u32, len: usize) -> CheckpointImage {
        CheckpointImage {
            app_id: 7,
            node: 3,
            epoch,
            payload: progress_payload(7, 3, epoch, len),
        }
    }

    #[test]
    fn roundtrip() {
        for len in [0usize, 1, 31, 32, 1000] {
            let i = img(5, len);
            let bytes = i.encode();
            assert_eq!(bytes.len(), CheckpointImage::encoded_len(len));
            assert_eq!(CheckpointImage::decode(&bytes).unwrap(), i);
        }
    }

    #[test]
    fn every_proper_prefix_fails_validation() {
        let bytes = img(2, 100).encode();
        for cut in 0..bytes.len() {
            assert!(
                CheckpointImage::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded as valid"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_fails_validation() {
        let bytes = img(1, 64).encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                CheckpointImage::decode(&corrupt).is_err(),
                "flip at byte {i} decoded as valid"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut bytes = img(1, 8).encode();
        bytes[0] ^= 1;
        assert!(matches!(
            CheckpointImage::decode(&bytes),
            Err(CheckpointError::BadMagic { .. })
        ));
        let mut bytes = img(1, 8).encode();
        bytes[4] = 9;
        // Re-checksum so the version field is the only defect.
        let payload = bytes[HEADER_LEN..].to_vec();
        let c = checksum_of(&bytes[..24], &payload);
        bytes[24..32].copy_from_slice(&c.to_le_bytes());
        assert!(matches!(
            CheckpointImage::decode(&bytes),
            Err(CheckpointError::BadVersion { found: 9 })
        ));
    }

    #[test]
    fn store_commits_are_atomic_and_monotone() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.latest("node0"), None);
        let e1 = img(1, 50).encode();
        assert_eq!(store.try_commit("node0", &e1), Ok(1));

        // A torn epoch-2 image leaves epoch 1 committed.
        let e2 = img(2, 50).encode();
        for cut in [0, HEADER_LEN - 1, HEADER_LEN + 10, e2.len() - 1] {
            assert!(store.try_commit("node0", &e2[..cut]).is_err());
            assert_eq!(store.latest_epoch("node0"), Some(1));
        }

        // The full image commits; replaying an old epoch is refused.
        assert_eq!(store.try_commit("node0", &e2), Ok(2));
        assert!(matches!(
            store.try_commit("node0", &e1),
            Err(CheckpointError::StaleEpoch {
                committed: 2,
                staged: 1
            })
        ));
        assert_eq!(store.latest_epoch("node0"), Some(2));
    }

    #[test]
    fn consistent_epoch_is_min_across_slots() {
        let mut store = CheckpointStore::new();
        let slots: Vec<String> = (0..3).map(|n| format!("n{n}")).collect();
        assert_eq!(store.consistent_epoch(&slots), None);
        for (n, slot) in slots.iter().enumerate() {
            for e in 1..=(n as u32 + 1) {
                let i = CheckpointImage {
                    app_id: 1,
                    node: n as u32,
                    epoch: e,
                    payload: vec![0xAB; 16],
                };
                store.try_commit(slot, &i.encode()).unwrap();
            }
        }
        // Slots hold epochs 1, 2, 3 — the consistent cut is 1.
        assert_eq!(store.consistent_epoch(&slots), Some(1));
    }

    #[test]
    fn progress_payload_is_deterministic_and_identity_sensitive() {
        assert_eq!(progress_payload(1, 2, 3, 64), progress_payload(1, 2, 3, 64));
        assert_ne!(progress_payload(1, 2, 3, 64), progress_payload(1, 2, 4, 64));
        assert_ne!(progress_payload(1, 2, 3, 64), progress_payload(1, 3, 3, 64));
    }
}

//! Timeline extraction for the paper's figures.
//!
//! Figures 2–17 of the paper are scatter plots of either (time, request size)
//! per operation kind, or (time, file id) access marks. [`op_timeline`] and
//! [`file_access_timeline`] extract exactly those series from a trace;
//! [`cluster_times`] and [`cluster_gaps`] quantify the temporal burst
//! structure the paper reads off Figure 4 (write-group spacing shrinking from
//! ~160 s to ~80 s across the ESCAT quadrature phase).

use crate::event::{FileId, IoEvent, IoOp, Ns, NS_PER_SEC};
use crate::trace::Trace;

/// One point of an operation timeline: when a request started and how big it
/// was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPoint {
    /// Request start time, seconds from run start.
    pub t_secs: f64,
    /// Request size in bytes.
    pub bytes: u64,
    /// Issuing node.
    pub node: u32,
}

/// One mark of a file-access timeline (Figures 5, 8, 15–17: crosses denote
/// writes, diamonds denote reads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessMark {
    /// Access start time, seconds from run start.
    pub t_secs: f64,
    /// File accessed.
    pub file: FileId,
    /// True for writes, false for reads.
    pub write: bool,
}

fn to_secs(t: Ns) -> f64 {
    t as f64 / NS_PER_SEC
}

/// Extract the (time, size) series of one operation kind — e.g. Figure 2 is
/// `op_timeline(&trace, IoOp::Read)` for the ESCAT run.
pub fn op_timeline(trace: &Trace, op: IoOp) -> Vec<OpPoint> {
    trace
        .of_op(op)
        .map(|ev| OpPoint {
            t_secs: to_secs(ev.start),
            bytes: ev.bytes,
            node: ev.node,
        })
        .collect()
}

/// Extract the series of *all* read-like operations (sync + async), used for
/// figures where the paper does not separate them.
pub fn read_timeline(trace: &Trace) -> Vec<OpPoint> {
    trace
        .events()
        .iter()
        .filter(|ev| ev.op.is_read())
        .map(|ev| OpPoint {
            t_secs: to_secs(ev.start),
            bytes: ev.bytes,
            node: ev.node,
        })
        .collect()
}

/// Extract the file-access timeline (reads and writes only).
pub fn file_access_timeline(trace: &Trace) -> Vec<AccessMark> {
    trace
        .events()
        .iter()
        .filter(|ev| ev.op.is_data())
        .map(|ev| AccessMark {
            t_secs: to_secs(ev.start),
            file: ev.file,
            write: ev.op.is_write(),
        })
        .collect()
}

/// Restrict a point series to a time window `[from_secs, to_secs)` — used for
/// detail figures like Figure 3 (ESCAT initial-read detail).
pub fn window(points: &[OpPoint], from_secs: f64, to_secs: f64) -> Vec<OpPoint> {
    points
        .iter()
        .copied()
        .filter(|p| p.t_secs >= from_secs && p.t_secs < to_secs)
        .collect()
}

/// Group event start times into clusters separated by at least `gap_secs` of
/// silence, returning each cluster's start time in seconds. This recovers the
/// synchronized write groups visible in Figure 4.
pub fn cluster_times(events: &[IoEvent], gap_secs: f64) -> Vec<f64> {
    let mut starts: Vec<Ns> = events.iter().map(|e| e.start).collect();
    starts.sort_unstable();
    let gap_ns = (gap_secs * NS_PER_SEC) as u64;
    let mut clusters = Vec::new();
    let mut prev: Option<Ns> = None;
    for t in starts {
        match prev {
            Some(p) if t.saturating_sub(p) < gap_ns => {}
            _ => clusters.push(to_secs(t)),
        }
        prev = Some(t);
    }
    clusters
}

/// Gaps between consecutive cluster start times, in seconds. The paper's
/// observation "temporal spacing of the groups decreases as the quadrature
/// calculation phase proceeds, ranging from roughly 160 seconds near the
/// beginning of the phase to half that near the end" is checked by comparing
/// the head and tail of this sequence.
pub fn cluster_gaps(cluster_starts: &[f64]) -> Vec<f64> {
    cluster_starts.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Render a crude ASCII scatter of a point series (time on x, log2 size on
/// y), good enough to eyeball phase structure in a terminal.
pub fn ascii_scatter(points: &[OpPoint], width: usize, height: usize) -> String {
    if points.is_empty() || width == 0 || height == 0 {
        return String::from("(no points)\n");
    }
    let t_max = points
        .iter()
        .map(|p| p.t_secs)
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let y_of = |bytes: u64| -> usize {
        let l = if bytes == 0 {
            0
        } else {
            bytes.ilog2() as usize
        };
        l.min(height * 2) // 2 size-doublings per row
    };
    let y_max = points
        .iter()
        .map(|p| y_of(p.bytes))
        .max()
        .unwrap_or(0)
        .max(1);
    let mut grid = vec![vec![b' '; width]; height];
    for p in points {
        let x = ((p.t_secs / t_max) * (width - 1) as f64) as usize;
        let y = (y_of(p.bytes) * (height - 1)) / y_max;
        let row = height - 1 - y;
        grid[row][x.min(width - 1)] = b'*';
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TraceMeta};

    fn ev(op: IoOp, start_s: f64, bytes: u64, file: FileId) -> IoEvent {
        let ns = (start_s * NS_PER_SEC) as u64;
        IoEvent::new(0, file, op)
            .span(ns, ns + 1000)
            .extent(0, bytes)
    }

    fn trace(events: Vec<IoEvent>) -> Trace {
        Trace::from_parts(TraceMeta::default(), events)
    }

    #[test]
    fn op_timeline_extracts_kind() {
        let t = trace(vec![
            ev(IoOp::Read, 1.0, 100, 1),
            ev(IoOp::Write, 2.0, 200, 1),
            ev(IoOp::Read, 3.0, 300, 2),
        ]);
        let reads = op_timeline(&t, IoOp::Read);
        assert_eq!(reads.len(), 2);
        assert!((reads[0].t_secs - 1.0).abs() < 1e-9);
        assert_eq!(reads[1].bytes, 300);
    }

    #[test]
    fn read_timeline_includes_async() {
        let t = trace(vec![
            ev(IoOp::Read, 1.0, 10, 1),
            ev(IoOp::AsyncRead, 2.0, 20, 1),
            ev(IoOp::IoWait, 3.0, 0, 1),
        ]);
        assert_eq!(read_timeline(&t).len(), 2);
    }

    #[test]
    fn file_access_marks() {
        let t = trace(vec![
            ev(IoOp::Read, 1.0, 10, 9),
            ev(IoOp::Write, 2.0, 20, 7),
            ev(IoOp::Seek, 3.0, 0, 7),
        ]);
        let marks = file_access_timeline(&t);
        assert_eq!(marks.len(), 2);
        assert!(!marks[0].write);
        assert_eq!(marks[0].file, 9);
        assert!(marks[1].write);
    }

    #[test]
    fn window_filters_halfopen() {
        let pts = vec![
            OpPoint {
                t_secs: 1.0,
                bytes: 1,
                node: 0,
            },
            OpPoint {
                t_secs: 2.0,
                bytes: 2,
                node: 0,
            },
            OpPoint {
                t_secs: 3.0,
                bytes: 3,
                node: 0,
            },
        ];
        let w = window(&pts, 2.0, 3.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].bytes, 2);
    }

    #[test]
    fn clusters_and_gaps() {
        // Three bursts at t = 0, 160, 240 s, each with a few closely spaced ops.
        let mut evs = Vec::new();
        for base in [0.0, 160.0, 240.0] {
            for k in 0..5 {
                evs.push(ev(IoOp::Write, base + k as f64 * 0.01, 2048, 7));
            }
        }
        let starts = cluster_times(&evs, 10.0);
        assert_eq!(starts.len(), 3);
        let gaps = cluster_gaps(&starts);
        assert_eq!(gaps.len(), 2);
        assert!((gaps[0] - 160.0).abs() < 1.0);
        assert!((gaps[1] - 80.0).abs() < 1.0);
        // The paper's observation: spacing shrinks.
        assert!(gaps.last().unwrap() < gaps.first().unwrap());
    }

    #[test]
    fn cluster_of_empty_is_empty() {
        assert!(cluster_times(&[], 1.0).is_empty());
        assert!(cluster_gaps(&[]).is_empty());
    }

    #[test]
    fn ascii_scatter_renders() {
        let pts = vec![
            OpPoint {
                t_secs: 0.0,
                bytes: 1024,
                node: 0,
            },
            OpPoint {
                t_secs: 50.0,
                bytes: 1 << 20,
                node: 0,
            },
        ];
        let s = ascii_scatter(&pts, 40, 10);
        assert_eq!(s.lines().count(), 10);
        assert!(s.contains('*'));
        assert_eq!(ascii_scatter(&[], 40, 10), "(no points)\n");
    }
}

//! Adaptive next-access prediction.
//!
//! The paper's closing direction (§10): "we have begun developing general,
//! adaptive prefetching methods that can learn to hide input/output latency
//! by automatically classifying and predicting access patterns." This module
//! provides the predictors the `sio-ppfs` adaptive prefetcher builds on:
//!
//! * [`LastStridePredictor`] — predicts the most recently observed stride;
//!   optimal for sequential and fixed-stride streams, cheap and stateless.
//! * [`MarkovPredictor`] — first-order Markov chain over *offset deltas*;
//!   learns repeating non-constant patterns (e.g. alternating strides from
//!   interleaved record and header accesses).

use std::collections::HashMap;

/// A predicted next access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted starting offset of the next access.
    pub offset: u64,
    /// Predicted length (the last observed length).
    pub len: u64,
}

/// An online next-access predictor for one access stream.
pub trait Predictor {
    /// Observe one access.
    fn observe(&mut self, offset: u64, len: u64);

    /// Predict the next access, if the model has enough evidence.
    fn predict(&self) -> Option<Prediction>;

    /// Fraction of past predictions that matched the subsequent access
    /// (tracked internally; 0.0 until at least one prediction was testable).
    fn accuracy(&self) -> f64;
}

/// Shared accuracy bookkeeping: compares each incoming access against the
/// prediction made before it.
#[derive(Debug, Clone, Copy, Default)]
struct Scoreboard {
    tested: u64,
    correct: u64,
}

impl Scoreboard {
    fn score(&mut self, predicted: Option<Prediction>, actual_offset: u64) {
        if let Some(p) = predicted {
            self.tested += 1;
            if p.offset == actual_offset {
                self.correct += 1;
            }
        }
    }

    fn accuracy(&self) -> f64 {
        if self.tested == 0 {
            0.0
        } else {
            self.correct as f64 / self.tested as f64
        }
    }
}

/// Predicts `last_offset + last_delta` (after two observations).
#[derive(Debug, Clone, Default)]
pub struct LastStridePredictor {
    last: Option<(u64, u64)>,
    delta: Option<i64>,
    board: Scoreboard,
}

impl LastStridePredictor {
    /// New, empty predictor.
    pub fn new() -> LastStridePredictor {
        LastStridePredictor::default()
    }
}

impl Predictor for LastStridePredictor {
    fn observe(&mut self, offset: u64, len: u64) {
        self.board.score(self.predict(), offset);
        if let Some((prev, _)) = self.last {
            self.delta = Some(offset as i64 - prev as i64);
        }
        self.last = Some((offset, len));
    }

    fn predict(&self) -> Option<Prediction> {
        let (off, len) = self.last?;
        let delta = self.delta?;
        let next = off as i64 + delta;
        (next >= 0).then_some(Prediction {
            offset: next as u64,
            len,
        })
    }

    fn accuracy(&self) -> f64 {
        self.board.accuracy()
    }
}

/// First-order Markov model over offset deltas: remembers, for each observed
/// delta, the most frequent *following* delta, and predicts with it.
#[derive(Debug, Clone, Default)]
pub struct MarkovPredictor {
    last: Option<(u64, u64)>,
    last_delta: Option<i64>,
    /// transition counts: delta -> (next delta -> count)
    transitions: HashMap<i64, HashMap<i64, u64>>,
    board: Scoreboard,
}

impl MarkovPredictor {
    /// New, empty predictor.
    pub fn new() -> MarkovPredictor {
        MarkovPredictor::default()
    }

    fn best_next(&self, delta: i64) -> Option<i64> {
        let nexts = self.transitions.get(&delta)?;
        nexts
            .iter()
            .max_by_key(|(d, c)| (**c, std::cmp::Reverse(**d)))
            .map(|(d, _)| *d)
    }
}

impl Predictor for MarkovPredictor {
    fn observe(&mut self, offset: u64, len: u64) {
        self.board.score(self.predict(), offset);
        if let Some((prev, _)) = self.last {
            let delta = offset as i64 - prev as i64;
            if let Some(prev_delta) = self.last_delta {
                *self
                    .transitions
                    .entry(prev_delta)
                    .or_default()
                    .entry(delta)
                    .or_insert(0) += 1;
            }
            self.last_delta = Some(delta);
        }
        self.last = Some((offset, len));
    }

    fn predict(&self) -> Option<Prediction> {
        let (off, len) = self.last?;
        let next_delta = self.best_next(self.last_delta?)?;
        let next = off as i64 + next_delta;
        (next >= 0).then_some(Prediction {
            offset: next as u64,
            len,
        })
    }

    fn accuracy(&self) -> f64 {
        self.board.accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<P: Predictor>(p: &mut P, accesses: &[(u64, u64)]) {
        for &(o, l) in accesses {
            p.observe(o, l);
        }
    }

    #[test]
    fn last_stride_predicts_sequential() {
        let mut p = LastStridePredictor::new();
        feed(&mut p, &[(0, 4096), (4096, 4096), (8192, 4096)]);
        assert_eq!(
            p.predict(),
            Some(Prediction {
                offset: 12288,
                len: 4096
            })
        );
        // All testable predictions were correct.
        p.observe(12288, 4096);
        assert!(p.accuracy() > 0.99);
    }

    #[test]
    fn last_stride_handles_negative_direction() {
        let mut p = LastStridePredictor::new();
        feed(&mut p, &[(8192, 100), (4096, 100)]);
        assert_eq!(p.predict().unwrap().offset, 0);
        p.observe(0, 100);
        // Next prediction would be negative: suppressed.
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn no_prediction_before_two_accesses() {
        let mut p = LastStridePredictor::new();
        assert_eq!(p.predict(), None);
        p.observe(0, 100);
        assert_eq!(p.predict(), None);
        assert_eq!(p.accuracy(), 0.0);
    }

    #[test]
    fn markov_learns_alternating_strides() {
        // Pattern: +100, +900, +100, +900, ... (record then skip-to-next-block)
        let mut p = MarkovPredictor::new();
        let mut off = 0u64;
        let mut acc = vec![(0u64, 50u64)];
        for i in 0..20 {
            off += if i % 2 == 0 { 100 } else { 900 };
            acc.push((off, 50));
        }
        feed(&mut p, &acc);
        // last delta was +900 (i=19 odd), so next should be +100.
        let pred = p.predict().unwrap();
        assert_eq!(pred.offset, off + 100);
        // Last-stride cannot learn this: it always predicts the previous
        // delta and is wrong every time after warmup.
        let mut ls = LastStridePredictor::new();
        feed(&mut ls, &acc);
        assert!(p.accuracy() > ls.accuracy());
    }

    #[test]
    fn markov_accuracy_on_sequential() {
        let acc: Vec<(u64, u64)> = (0..50).map(|i| (i * 1024, 1024)).collect();
        let mut p = MarkovPredictor::new();
        feed(&mut p, &acc);
        assert!(p.accuracy() > 0.9);
        assert_eq!(p.predict().unwrap().offset, 50 * 1024);
    }

    #[test]
    fn markov_empty_has_no_prediction() {
        let p = MarkovPredictor::new();
        assert_eq!(p.predict(), None);
        assert_eq!(p.accuracy(), 0.0);
    }
}

//! Access-pattern classification.
//!
//! The paper concludes (§10) that "exploitation of input/output access
//! pattern knowledge in caching and prefetching systems is crucial" and that
//! adaptive systems must "identify access patterns and choose policies based
//! on access pattern characteristics". This module implements the
//! identification half: an online classifier over a stream of (offset,
//! length) accesses to a single file by a single client.
//!
//! The categories follow the paper's vocabulary: **sequential** (each access
//! begins where the previous ended), **strided** (constant nonzero gap
//! between accesses — ESCAT's interleaved staging writes), **cyclic**
//! (offsets repeat with a period — HTF's repeated passes over the integral
//! files), and **random** (none of the above).

use serde::{Deserialize, Serialize};

/// Classified access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Too few observations to decide.
    Unknown,
    /// Each access starts at the previous end (delta == previous length).
    Sequential,
    /// Constant stride between consecutive access starts, different from the
    /// sequential stride. Stride may exceed access length (interleaved
    /// regions) — the dominant ESCAT write pattern.
    Strided {
        /// Constant difference between consecutive starting offsets, bytes.
        stride: i64,
    },
    /// The offset sequence revisits a previous position, consistent with
    /// repeated sequential passes over the same extent (HTF `pscf`).
    Cyclic {
        /// Bytes covered by one pass.
        period: u64,
    },
    /// No structure detected.
    Random,
}

/// Online classifier over one access stream.
///
/// The classifier keeps counts of evidence for each hypothesis over a sliding
/// history and reports the best-supported pattern; it is intentionally
/// simple, deterministic, and cheap (O(1) per access).
#[derive(Debug, Clone)]
pub struct PatternClassifier {
    /// Minimum accesses before committing to a classification.
    warmup: usize,
    total: usize,
    sequential_hits: usize,
    stride_hits: usize,
    rewind_hits: usize,
    last_offset: Option<u64>,
    last_len: u64,
    last_delta: Option<i64>,
    /// Most common stride candidate and its support.
    stride_candidate: Option<i64>,
    stride_support: usize,
    /// Max end-offset seen; a jump back to (near) the minimum offset after
    /// covering an extent is rewind evidence.
    min_offset: u64,
    max_end: u64,
}

impl Default for PatternClassifier {
    fn default() -> Self {
        PatternClassifier::new()
    }
}

impl PatternClassifier {
    /// Classifier with the default warmup (3 accesses — two transitions).
    pub fn new() -> PatternClassifier {
        PatternClassifier {
            warmup: 3,
            total: 0,
            sequential_hits: 0,
            stride_hits: 0,
            rewind_hits: 0,
            last_offset: None,
            last_len: 0,
            last_delta: None,
            stride_candidate: None,
            stride_support: 0,
            min_offset: u64::MAX,
            max_end: 0,
        }
    }

    /// Observe one access.
    pub fn observe(&mut self, offset: u64, len: u64) {
        self.total += 1;
        self.min_offset = self.min_offset.min(offset);
        if let Some(prev) = self.last_offset {
            let delta = offset as i64 - prev as i64;
            if delta == self.last_len as i64 {
                self.sequential_hits += 1;
            } else if delta != 0 {
                // Rewind: jumping back to the start of the covered extent
                // after having advanced through it.
                if offset <= self.min_offset
                    && prev as i64 + self.last_len as i64 >= self.max_end as i64
                {
                    self.rewind_hits += 1;
                } else if Some(delta) == self.last_delta {
                    self.stride_hits += 1;
                    if Some(delta) == self.stride_candidate {
                        self.stride_support += 1;
                    } else if self.stride_support == 0 {
                        self.stride_candidate = Some(delta);
                        self.stride_support = 1;
                    } else {
                        self.stride_support -= 1;
                    }
                }
            }
            self.last_delta = Some(delta);
        }
        self.last_offset = Some(offset);
        self.last_len = len;
        self.max_end = self.max_end.max(offset + len);
    }

    /// Number of accesses observed.
    pub fn observations(&self) -> usize {
        self.total
    }

    /// Current classification.
    pub fn classify(&self) -> AccessPattern {
        if self.total < self.warmup {
            return AccessPattern::Unknown;
        }
        let transitions = (self.total - 1) as f64;
        let seq = self.sequential_hits as f64 / transitions;
        let stride = self.stride_hits as f64 / transitions;
        // A couple of rewinds over a mostly-sequential stream = cyclic passes.
        if self.rewind_hits >= 1 && seq >= 0.5 {
            return AccessPattern::Cyclic {
                period: self.max_end - self.min_offset.min(self.max_end),
            };
        }
        if seq >= 0.75 {
            return AccessPattern::Sequential;
        }
        if stride >= 0.6 {
            if let Some(s) = self.stride_candidate {
                return AccessPattern::Strided { stride: s };
            }
        }
        AccessPattern::Random
    }
}

/// Classify a whole (offset, len) sequence at once.
pub fn classify_accesses(accesses: &[(u64, u64)]) -> AccessPattern {
    let mut c = PatternClassifier::new();
    for &(o, l) in accesses {
        c.observe(o, l);
    }
    c.classify()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream() {
        let acc: Vec<(u64, u64)> = (0..20).map(|i| (i * 4096, 4096)).collect();
        assert_eq!(classify_accesses(&acc), AccessPattern::Sequential);
    }

    #[test]
    fn strided_stream() {
        // 2 KB records every 256 KB — ESCAT's interleaved staging writes.
        let acc: Vec<(u64, u64)> = (0..20).map(|i| (i * 262_144, 2048)).collect();
        assert_eq!(
            classify_accesses(&acc),
            AccessPattern::Strided { stride: 262_144 }
        );
    }

    #[test]
    fn cyclic_stream() {
        // Three sequential passes over a 10-block extent — HTF pscf.
        let mut acc = Vec::new();
        for _pass in 0..3 {
            for i in 0..10u64 {
                acc.push((i * 8192, 8192));
            }
        }
        match classify_accesses(&acc) {
            AccessPattern::Cyclic { period } => assert_eq!(period, 10 * 8192),
            other => panic!("expected cyclic, got {other:?}"),
        }
    }

    #[test]
    fn random_stream() {
        let acc = [
            (912_384u64, 512u64),
            (12_288, 512),
            (772_096, 512),
            (41_984, 512),
            (530_432, 512),
            (99_328, 512),
            (655_360, 512),
            (7_168, 512),
        ];
        assert_eq!(classify_accesses(&acc), AccessPattern::Random);
    }

    #[test]
    fn warmup_returns_unknown() {
        assert_eq!(classify_accesses(&[(0, 10)]), AccessPattern::Unknown);
        assert_eq!(classify_accesses(&[]), AccessPattern::Unknown);
        let mut c = PatternClassifier::new();
        c.observe(0, 10);
        c.observe(10, 10);
        assert_eq!(c.classify(), AccessPattern::Unknown);
        assert_eq!(c.observations(), 2);
        // Two sequential transitions (three accesses) suffice.
        c.observe(20, 10);
        assert_eq!(c.classify(), AccessPattern::Sequential);
    }

    #[test]
    fn sequential_with_noise_still_sequential() {
        let mut acc: Vec<(u64, u64)> = (0..19).map(|i| (i * 1024, 1024)).collect();
        acc.insert(10, (500_000, 64)); // one stray access
                                       // One stray access out of 20 leaves sequential fraction > 0.75.
        let got = classify_accesses(&acc);
        assert!(
            matches!(
                got,
                AccessPattern::Sequential | AccessPattern::Cyclic { .. }
            ),
            "got {got:?}"
        );
    }

    #[test]
    fn variable_length_sequential() {
        // Sequential with varying record sizes (M_LOG-style).
        let lens = [100u64, 250, 4096, 13, 900, 64, 2048, 7];
        let mut acc = Vec::new();
        let mut off = 0;
        for &l in &lens {
            acc.push((off, l));
            off += l;
        }
        assert_eq!(classify_accesses(&acc), AccessPattern::Sequential);
    }
}

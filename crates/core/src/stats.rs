//! Off-line statistics: summary statistics, request-size distributions, and
//! quantiles.
//!
//! The paper's general statistics (§3.1: "means, variances, minima, maxima,
//! and distributions of file operation durations and sizes") are computed
//! here. [`SizeHistogram`] uses exactly the bins of Tables 2, 4, and 6:
//! `< 4 KB`, `< 64 KB`, `< 256 KB`, `≥ 256 KB`.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's algorithm), mergeable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl SummaryStats {
    /// Empty accumulator.
    pub fn new() -> SummaryStats {
        SummaryStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel combination).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// The paper's request-size bins: `< 4 KB`, `< 64 KB`, `< 256 KB`, `≥ 256 KB`.
///
/// Bins are half-open and mutually exclusive, exactly as in Tables 2/4/6:
/// a 3 KB request counts only in the `< 4 KB` column.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Requests with size < 4 KB.
    pub under_4k: u64,
    /// Requests with 4 KB ≤ size < 64 KB.
    pub under_64k: u64,
    /// Requests with 64 KB ≤ size < 256 KB.
    pub under_256k: u64,
    /// Requests with size ≥ 256 KB.
    pub over_256k: u64,
}

/// 4 KB boundary.
pub const KB4: u64 = 4 * 1024;
/// 64 KB boundary.
pub const KB64: u64 = 64 * 1024;
/// 256 KB boundary.
pub const KB256: u64 = 256 * 1024;

impl SizeHistogram {
    /// Empty histogram.
    pub fn new() -> SizeHistogram {
        SizeHistogram::default()
    }

    /// Count one request of `bytes`.
    pub fn push(&mut self, bytes: u64) {
        if bytes < KB4 {
            self.under_4k += 1;
        } else if bytes < KB64 {
            self.under_64k += 1;
        } else if bytes < KB256 {
            self.under_256k += 1;
        } else {
            self.over_256k += 1;
        }
    }

    /// Total requests counted.
    pub fn total(&self) -> u64 {
        self.under_4k + self.under_64k + self.under_256k + self.over_256k
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        self.under_4k += other.under_4k;
        self.under_64k += other.under_64k;
        self.under_256k += other.under_256k;
        self.over_256k += other.over_256k;
    }

    /// Bin counts in table-column order.
    pub fn as_row(&self) -> [u64; 4] {
        [
            self.under_4k,
            self.under_64k,
            self.under_256k,
            self.over_256k,
        ]
    }

    /// The paper's notion of a *bimodal* size distribution (§5.1, §6.1):
    /// substantial mass in a small-size bin and in a large-size bin with a
    /// sparse middle. We test: smallest bin and one of the two largest bins
    /// each hold ≥ `frac` of requests.
    pub fn is_bimodal(&self, frac: f64) -> bool {
        let total = self.total();
        if total == 0 {
            return false;
        }
        let t = total as f64;
        let small = self.under_4k as f64 / t;
        let large = (self.under_256k.max(self.over_256k)) as f64 / t;
        small >= frac && large >= frac
    }
}

/// Exact quantiles over a stored sample (fine at characterization scale).
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Empty sample.
    pub fn new() -> Quantiles {
        Quantiles::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            // `total_cmp` is a total order, so a stray NaN cannot scramble
            // the sort the way `partial_cmp(..).unwrap_or(Equal)` could
            // (NaNs sort to the ends instead of corrupting their
            // neighborhood). Observations are expected to be finite.
            debug_assert!(
                self.values.iter().all(|v| v.is_finite()),
                "non-finite quantile observation"
            );
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.values.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.values.len() - 1);
        Some(self.values[idx])
    }

    /// Median shorthand.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// Power-of-two histogram for free-form distributions (durations, gaps).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Pow2Histogram {
    /// `bins[i]` counts values `v` with `2^(i-1) <= v < 2^i` (bin 0: `v == 0`
    /// or `v == 1` land in bins 0/1 respectively via `ilog2`).
    bins: Vec<u64>,
    count: u64,
}

impl Pow2Histogram {
    /// Empty histogram.
    pub fn new() -> Pow2Histogram {
        Pow2Histogram::default()
    }

    /// Count one value.
    pub fn push(&mut self, v: u64) {
        let bin = if v == 0 { 0 } else { v.ilog2() as usize + 1 };
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.count += 1;
    }

    /// Total values counted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts, lowest power first.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Index of the most populated bin, if any values were counted.
    pub fn mode_bin(&self) -> Option<usize> {
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = SummaryStats::new();
        for x in xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut whole = SummaryStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = SummaryStats::new();
        let mut b = SummaryStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SummaryStats::new();
        a.push(2.0);
        let before = a;
        a.merge(&SummaryStats::new());
        assert_eq!(a, before);
        let mut e = SummaryStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = SummaryStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn size_bins_are_half_open_and_exclusive() {
        let mut h = SizeHistogram::new();
        h.push(0);
        h.push(KB4 - 1);
        h.push(KB4);
        h.push(KB64 - 1);
        h.push(KB64);
        h.push(KB256 - 1);
        h.push(KB256);
        h.push(10 * 1024 * 1024);
        assert_eq!(h.as_row(), [2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn bimodal_detection() {
        // ESCAT-like reads: many tiny, many ~128 KB, almost nothing between.
        let mut h = SizeHistogram::new();
        for _ in 0..297 {
            h.push(2048);
        }
        for _ in 0..3 {
            h.push(30 * 1024);
        }
        for _ in 0..260 {
            h.push(128 * 1024);
        }
        assert!(h.is_bimodal(0.25));
        // Uniformly small is not bimodal.
        let mut u = SizeHistogram::new();
        for _ in 0..100 {
            u.push(1024);
        }
        assert!(!u.is_bimodal(0.25));
        assert!(!SizeHistogram::new().is_bimodal(0.25));
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = SizeHistogram::new();
        a.push(1);
        a.push(KB256);
        let mut b = SizeHistogram::new();
        b.push(KB4);
        a.merge(&b);
        assert_eq!(a.as_row(), [1, 1, 0, 1]);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut q = Quantiles::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(v);
        }
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.2), Some(1.0));
        assert_eq!(Quantiles::new().median(), None);
    }

    #[test]
    fn quantiles_total_order_handles_signed_zero_and_negatives() {
        // total_cmp orders -0.0 < +0.0 and negatives correctly — the cases a
        // partial_cmp fallback could silently misorder.
        let mut q = Quantiles::new();
        for v in [0.0, -1.5, -0.0, 7.0, -3.0] {
            q.push(v);
        }
        assert_eq!(q.quantile(0.0), Some(-3.0));
        assert_eq!(q.median(), Some(-0.0));
        assert_eq!(q.quantile(1.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "non-finite quantile observation")]
    #[cfg(debug_assertions)]
    fn quantiles_reject_nan_in_debug() {
        let mut q = Quantiles::new();
        q.push(f64::NAN);
        let _ = q.median();
    }

    #[test]
    fn pow2_histogram_bins() {
        let mut h = Pow2Histogram::new();
        h.push(0); // bin 0
        h.push(1); // bin 1
        h.push(2); // bin 2
        h.push(3); // bin 2
        h.push(1024); // bin 11
        assert_eq!(h.count(), 5);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[2], 2);
        assert_eq!(h.bins()[11], 1);
        assert_eq!(h.mode_bin(), Some(2));
        assert_eq!(Pow2Histogram::new().mode_bin(), None);
    }
}

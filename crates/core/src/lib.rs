//! # sio-core — Pablo-style I/O instrumentation and characterization
//!
//! This crate is the analog of the Pablo I/O instrumentation and analysis
//! environment described in §3.1 of *Input/Output Characteristics of Scalable
//! Parallel Applications* (Crandall, Aydt, Chien, Reed — SC '95). It provides:
//!
//! * an event model for application-level I/O operations ([`event`]),
//! * timestamped trace capture with a self-describing on-disk format
//!   ([`trace`], [`sddf`]),
//! * the paper's three real-time reductions — file-lifetime, time-window, and
//!   file-region summaries ([`reduce`]),
//! * off-line statistics: summary statistics, request-size distributions with
//!   the paper's bins (< 4 KB, < 64 KB, < 256 KB, ≥ 256 KB), and timeline
//!   extraction ([`stats`], [`timeline`]),
//! * access-pattern classification and adaptive next-access prediction
//!   ([`classify`], [`predict`]) — the paper's §10 "future work" direction.
//!
//! The crate is deliberately independent of any particular machine or file
//! system model: timestamps are plain nanosecond counts, and the tracer is fed
//! by whichever I/O layer is being characterized (the PFS model in `sio-pfs`,
//! the policy-driven file system in `sio-ppfs`, or a real `std::fs` shim).
//!
//! ## Quick start
//!
//! ```
//! use sio_core::event::{IoEvent, IoOp};
//! use sio_core::trace::TraceSink;
//! use sio_core::reduce::lifetime::LifetimeReducer;
//! use sio_core::reduce::Reducer;
//!
//! let mut sink = TraceSink::new("demo");
//! sink.record(IoEvent::new(0, 7, IoOp::Write).span(1_000, 5_000).extent(0, 2048));
//! sink.record(IoEvent::new(0, 7, IoOp::Read).span(6_000, 9_000).extent(2048, 4096));
//! let trace = sink.finish();
//!
//! let mut lifetimes = LifetimeReducer::new();
//! for ev in trace.events() {
//!     lifetimes.observe(ev);
//! }
//! let summary = lifetimes.file(7).unwrap();
//! assert_eq!(summary.bytes_written, 2048);
//! assert_eq!(summary.bytes_read, 4096);
//! ```

pub mod checkpoint;
pub mod classify;
pub mod event;
pub mod hash;
pub mod instrument;
pub mod perf;
pub mod predict;
pub mod reduce;
pub mod sddf;
pub mod stats;
pub mod summary;
pub mod timeline;
pub mod trace;

pub use event::{FileId, IoEvent, IoOp, NodeId, Ns};
pub use trace::{Trace, TraceMeta, TraceSink, Tracer};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding, decoding, or validating traces.
#[derive(Debug)]
pub enum Error {
    /// Trace decode failed: the buffer did not contain a valid encoded trace.
    Decode(String),
    /// An event failed validation (e.g. `end < start`).
    InvalidEvent(String),
    /// Underlying I/O error while reading or writing a trace file.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Decode(m) => write!(f, "trace decode error: {m}"),
            Error::InvalidEvent(m) => write!(f, "invalid event: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

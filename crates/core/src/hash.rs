//! Fast, non-cryptographic hashing for hot simulation maps.
//!
//! The simulators key their hot maps by small integers (tokens, segment ids,
//! `(node, file)` pairs). SipHash — `std`'s DoS-resistant default — costs
//! more than the map operation itself at these key sizes. [`FastHasher`] is a
//! multiply-rotate word hasher in the fxhash family: one multiply per word,
//! no finalizer, quality more than adequate for trusted integer keys.
//!
//! Determinism note: the hash is fixed (no per-process seed), so iteration
//! order of a [`FastMap`] is stable across processes for the same inserts.
//! Result-affecting code must still never depend on map iteration order —
//! the golden-digest tests enforce that — but stability here removes one
//! source of accidental nondeterminism that `RandomState` would add.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast word hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fast word hasher.
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// 64-bit multiply-rotate hasher for small trusted keys.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

/// Odd multiplier derived from the golden ratio (2^64 / phi), the usual
/// constant for Fibonacci hashing.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
        // Byte-slice path, including a non-multiple-of-8 tail.
        assert_eq!(hash_one(&b"hello world"[..]), hash_one(&b"hello world"[..]));
        assert_ne!(hash_one(&b"hello worlc"[..]), hash_one(&b"hello world"[..]));
    }

    #[test]
    fn map_basics() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i as u64);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(13, 91)), Some(&13));
        let mut s: FastSet<u64> = FastSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }

    #[test]
    fn sequential_keys_spread() {
        // Sequential integers must not collapse into few buckets: check the
        // low bits (bucket index) take many distinct values.
        let mut low: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0..256u64 {
            low.insert(hash_one(i) & 0xff);
        }
        assert!(low.len() > 128, "only {} distinct low bytes", low.len());
    }
}

//! Trace capture.
//!
//! [`TraceSink`] is the capture-side buffer for the simulated file systems:
//! the service owns it outright and records one [`IoEvent`] per call into a
//! per-node append buffer — no lock, no shared handle. Each record is stamped
//! with a global sequence number, and [`TraceSink::finish`] merges the
//! per-node buffers back into exact capture order, so the frozen trace is
//! byte-identical to what the old single-buffer capture produced.
//!
//! The per-node buffers double as the PDES trace lanes: under the sharded
//! engine each lane is appended to only by its owning node's events (all
//! tracing happens in the serial commit phase, so the global sequence
//! stamps are allocated in serial order at every shard count), and the
//! same seq-scatter merge reassembles the shard lanes deterministically —
//! no shard-aware merge step exists or is needed.
//!
//! [`Tracer`] is the legacy shared handle, kept for genuinely multi-threaded
//! capture (the `std::fs` instrumentation shim): it is cheap to clone and
//! every clone feeds one locked buffer.
//!
//! [`Trace`] is the frozen, analysis-side product: an ordered event list plus
//! metadata. All reductions, tables, and figures are computed from a `Trace`.

use crate::event::{IoEvent, IoOp, Ns};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Metadata describing a captured trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable label ("escat", "render", "htf-pscf", ...).
    pub label: String,
    /// Number of nodes that participated in the run.
    pub nodes: u32,
    /// Wall-clock (simulated) end time of the run, nanoseconds.
    pub wall_ns: Ns,
}

/// A frozen, analyzable trace: events in capture order plus metadata.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    events: Vec<IoEvent>,
}

impl Trace {
    /// Build a trace directly from parts (used by decoders and tests).
    pub fn from_parts(meta: TraceMeta, events: Vec<IoEvent>) -> Trace {
        Trace { meta, events }
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// All events, in capture order.
    pub fn events(&self) -> &[IoEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one operation kind.
    pub fn of_op(&self, op: IoOp) -> impl Iterator<Item = &IoEvent> {
        self.events.iter().filter(move |e| e.op == op)
    }

    /// Total bytes moved by data operations (reads + writes).
    pub fn data_volume(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.op.is_data())
            .map(|e| e.bytes)
            .sum()
    }

    /// Sum of event durations across all nodes ("node time" in the paper's
    /// tables: concurrent operations on different nodes both count in full).
    pub fn node_time(&self) -> Ns {
        self.events.iter().map(|e| e.duration()).sum()
    }

    /// Earliest event start, if any.
    pub fn first_start(&self) -> Option<Ns> {
        self.events.iter().map(|e| e.start).min()
    }

    /// Latest event end, if any.
    pub fn last_end(&self) -> Option<Ns> {
        self.events.iter().map(|e| e.end).max()
    }

    /// Merge several traces (e.g. the three HTF programs) into one, keeping
    /// event order by start time. The label of the merged trace is given by
    /// the caller; `nodes` is the max of the parts and `wall_ns` the sum
    /// (the HTF programs run as a sequential pipeline).
    pub fn concat_pipeline(label: &str, parts: &[&Trace]) -> Trace {
        let mut events = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        let mut shift: Ns = 0;
        let mut nodes = 0;
        for part in parts {
            for ev in part.events() {
                let mut ev = *ev;
                ev.start += shift;
                ev.end += shift;
                events.push(ev);
            }
            shift += part.meta.wall_ns;
            nodes = nodes.max(part.meta.nodes);
        }
        Trace {
            meta: TraceMeta {
                label: label.to_string(),
                nodes,
                wall_ns: shift,
            },
            events,
        }
    }

    /// Validate every event.
    pub fn validate(&self) -> crate::Result<()> {
        for ev in &self.events {
            ev.validate()?;
        }
        Ok(())
    }
}

/// Owned, lock-free capture buffer for single-threaded (simulated) runs.
///
/// Events append to a per-node lane; a global sequence number preserves the
/// exact interleaving across lanes. The hot path is one `Vec::push` — no
/// lock, no refcount — and the drain path moves the buffers out instead of
/// cloning them.
#[derive(Debug, Default)]
pub struct TraceSink {
    meta: TraceMeta,
    /// Per-node append buffers of (global capture seq, event).
    lanes: Vec<Vec<(u64, IoEvent)>>,
    next_seq: u64,
    /// Per-event capture cost the traced program should absorb (models
    /// Pablo's capture perturbation; 0 = ideal).
    overhead_ns: Ns,
}

impl TraceSink {
    /// New sink with perturbation-free capture.
    pub fn new(label: &str) -> TraceSink {
        TraceSink {
            meta: TraceMeta {
                label: label.to_string(),
                ..TraceMeta::default()
            },
            ..TraceSink::default()
        }
    }

    /// New sink charging `overhead_ns` of instrumentation cost per event.
    pub fn with_overhead(label: &str, overhead_ns: Ns) -> TraceSink {
        let mut s = TraceSink::new(label);
        s.overhead_ns = overhead_ns;
        s
    }

    /// Per-event capture cost the instrumented program should absorb.
    pub fn overhead(&self) -> Ns {
        self.overhead_ns
    }

    /// Record one event into its node's lane.
    pub fn record(&mut self, event: IoEvent) {
        let lane = event.node as usize;
        if lane >= self.lanes.len() {
            self.lanes.resize_with(lane + 1, Vec::new);
        }
        self.lanes[lane].push((self.next_seq, event));
        self.next_seq += 1;
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.next_seq as usize
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Approximate in-memory size of the captured events, in bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.next_seq * std::mem::size_of::<(u64, IoEvent)>() as u64
    }

    /// Set run-level metadata (node count, wall time).
    pub fn set_run_info(&mut self, nodes: u32, wall_ns: Ns) {
        self.meta.nodes = nodes;
        self.meta.wall_ns = wall_ns;
    }

    /// Freeze into an analyzable [`Trace`], merging the per-node lanes back
    /// into capture order. Every sequence number in `0..next_seq` was issued
    /// exactly once, so the merge is a linear scatter by sequence number —
    /// deterministic regardless of how events spread across lanes.
    pub fn finish(self) -> Trace {
        let total = self.next_seq as usize;
        let mut slots: Vec<Option<IoEvent>> = vec![None; total];
        for lane in self.lanes {
            for (seq, ev) in lane {
                debug_assert!(slots[seq as usize].is_none(), "duplicate capture seq");
                slots[seq as usize] = Some(ev);
            }
        }
        let events = slots
            .into_iter()
            .map(|s| s.expect("capture seq gap"))
            .collect();
        Trace {
            meta: self.meta,
            events,
        }
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    meta: TraceMeta,
    events: Vec<IoEvent>,
}

/// Capture-side handle. Cheap to clone; all clones feed one trace.
///
/// A `Tracer` may model the *perturbation* the paper discusses in §3.1: if a
/// per-event capture overhead is configured, [`Tracer::overhead`] reports the
/// extra time the caller should charge to the instrumented program.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TraceInner>>,
    /// Per-event capture cost, charged to the traced program (0 = ideal,
    /// perturbation-free capture).
    overhead_ns: Ns,
}

impl Tracer {
    /// New tracer with perturbation-free capture.
    pub fn new(label: &str) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TraceInner {
                meta: TraceMeta {
                    label: label.to_string(),
                    ..TraceMeta::default()
                },
                events: Vec::new(),
            })),
            overhead_ns: 0,
        }
    }

    /// New tracer that charges `overhead_ns` of instrumentation cost per
    /// captured event (models Pablo's capture perturbation).
    pub fn with_overhead(label: &str, overhead_ns: Ns) -> Tracer {
        let mut t = Tracer::new(label);
        t.overhead_ns = overhead_ns;
        t
    }

    /// Per-event capture cost the instrumented program should absorb.
    pub fn overhead(&self) -> Ns {
        self.overhead_ns
    }

    /// Record one event.
    pub fn record(&self, event: IoEvent) {
        self.inner.lock().events.push(event);
    }

    /// Number of events captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Set run-level metadata (node count, wall time).
    pub fn set_run_info(&self, nodes: u32, wall_ns: Ns) {
        let mut inner = self.inner.lock();
        inner.meta.nodes = nodes;
        inner.meta.wall_ns = wall_ns;
    }

    /// Freeze into an analyzable [`Trace`]. Other clones of this tracer keep
    /// working but feed a now-empty buffer; `finish` is intended to be called
    /// once, after the run completes.
    pub fn finish(self) -> Trace {
        let mut inner = self.inner.lock();
        Trace {
            meta: std::mem::take(&mut inner.meta),
            events: std::mem::take(&mut inner.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IoOp;

    fn ev(op: IoOp, start: Ns, end: Ns, bytes: u64) -> IoEvent {
        IoEvent::new(1, 2, op).span(start, end).extent(0, bytes)
    }

    #[test]
    fn capture_and_freeze() {
        let t = Tracer::new("t");
        t.record(ev(IoOp::Read, 0, 10, 100));
        t.record(ev(IoOp::Write, 10, 30, 50));
        t.set_run_info(4, 30);
        let trace = t.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.meta().nodes, 4);
        assert_eq!(trace.data_volume(), 150);
        assert_eq!(trace.node_time(), 30);
        assert_eq!(trace.first_start(), Some(0));
        assert_eq!(trace.last_end(), Some(30));
    }

    #[test]
    fn sink_preserves_capture_order_across_lanes() {
        // Interleave records from several nodes; the frozen trace must come
        // back in exact capture order, not lane order.
        let mut s = TraceSink::new("s");
        let mut expect = Vec::new();
        for i in 0..20u64 {
            let node = (i * 7 % 5) as u32;
            let e = IoEvent::new(node, 1, IoOp::Read)
                .span(i, i + 1)
                .extent(0, i);
            s.record(e);
            expect.push(e);
        }
        s.set_run_info(5, 21);
        assert_eq!(s.len(), 20);
        assert!(s.buffered_bytes() > 0);
        let trace = s.finish();
        assert_eq!(trace.meta().nodes, 5);
        assert_eq!(trace.events(), expect.as_slice());
    }

    #[test]
    fn sink_matches_tracer_output() {
        // The sink is a drop-in replacement for the locked tracer: same
        // records in, identical frozen trace out.
        let events: Vec<IoEvent> = (0..10)
            .map(|i| {
                IoEvent::new(i % 3, 2, IoOp::Write)
                    .span(i as Ns, i as Ns + 5)
                    .extent(i as u64 * 8, 8)
            })
            .collect();
        let t = Tracer::new("same");
        let mut s = TraceSink::new("same");
        for e in &events {
            t.record(*e);
            s.record(*e);
        }
        t.set_run_info(3, 15);
        s.set_run_info(3, 15);
        assert_eq!(t.finish(), s.finish());
    }

    #[test]
    fn sink_empty_and_overhead() {
        let s = TraceSink::new("e");
        assert!(s.is_empty());
        assert_eq!(s.overhead(), 0);
        assert!(s.finish().is_empty());
        assert_eq!(TraceSink::with_overhead("o", 250).overhead(), 250);
    }

    #[test]
    fn clones_share_buffer() {
        let t = Tracer::new("t");
        let t2 = t.clone();
        t.record(ev(IoOp::Read, 0, 1, 1));
        t2.record(ev(IoOp::Write, 1, 2, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn of_op_filters() {
        let t = Tracer::new("t");
        t.record(ev(IoOp::Read, 0, 1, 1));
        t.record(ev(IoOp::Write, 1, 2, 1));
        t.record(ev(IoOp::Read, 2, 3, 1));
        let trace = t.finish();
        assert_eq!(trace.of_op(IoOp::Read).count(), 2);
        assert_eq!(trace.of_op(IoOp::Seek).count(), 0);
    }

    #[test]
    fn overhead_configured() {
        let t = Tracer::with_overhead("t", 500);
        assert_eq!(t.overhead(), 500);
        assert_eq!(Tracer::new("t").overhead(), 0);
    }

    #[test]
    fn pipeline_concat_shifts_times() {
        let a = Trace::from_parts(
            TraceMeta {
                label: "a".into(),
                nodes: 2,
                wall_ns: 100,
            },
            vec![ev(IoOp::Read, 0, 10, 5)],
        );
        let b = Trace::from_parts(
            TraceMeta {
                label: "b".into(),
                nodes: 8,
                wall_ns: 50,
            },
            vec![ev(IoOp::Write, 5, 9, 7)],
        );
        let merged = Trace::concat_pipeline("ab", &[&a, &b]);
        assert_eq!(merged.meta().label, "ab");
        assert_eq!(merged.meta().nodes, 8);
        assert_eq!(merged.meta().wall_ns, 150);
        assert_eq!(merged.events()[1].start, 105);
        assert_eq!(merged.events()[1].end, 109);
    }

    #[test]
    fn empty_trace_queries() {
        let trace = Tracer::new("e").finish();
        assert!(trace.is_empty());
        assert_eq!(trace.first_start(), None);
        assert_eq!(trace.last_end(), None);
        assert_eq!(trace.node_time(), 0);
    }
}

//! Stripe layout: file offsets → (I/O node, array offset) segments.
//!
//! PFS stripes each file round-robin across the I/O nodes in fixed units
//! (64 KB on the CCSF system). Stripe unit `u` of a file lives on I/O node
//! `u mod N` at node-local unit index `u div N`. An application request
//! covering several units is decomposed into per-I/O-node segments, merging
//! units that are contiguous in node-local space (consecutive units owned by
//! the same node always are — their global indices differ by `N`).

use serde::{Deserialize, Serialize};

/// PFS default stripe unit (§3.2): 64 KB.
pub const DEFAULT_STRIPE_UNIT: u64 = 64 * 1024;

/// One per-I/O-node piece of a striped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Owning I/O node.
    pub io_node: u32,
    /// Offset in the file's node-local linear space on that I/O node.
    pub local_offset: u64,
    /// Length in bytes.
    pub bytes: u64,
}

/// Round-robin stripe map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeLayout {
    /// Stripe unit, bytes.
    pub unit: u64,
    /// Number of I/O nodes.
    pub io_nodes: u32,
}

impl StripeLayout {
    /// New layout; unit and node count must be nonzero.
    pub fn new(unit: u64, io_nodes: u32) -> StripeLayout {
        assert!(unit > 0, "stripe unit must be nonzero");
        assert!(io_nodes > 0, "need at least one i/o node");
        StripeLayout { unit, io_nodes }
    }

    /// The PFS default: 64 KB units.
    pub fn pfs(io_nodes: u32) -> StripeLayout {
        StripeLayout::new(DEFAULT_STRIPE_UNIT, io_nodes)
    }

    /// I/O node owning the stripe unit that contains `offset`.
    pub fn io_node_of(&self, offset: u64) -> u32 {
        ((offset / self.unit) % self.io_nodes as u64) as u32
    }

    /// Node-local offset of `offset` on its owning I/O node.
    pub fn local_offset_of(&self, offset: u64) -> u64 {
        let unit_idx = offset / self.unit;
        (unit_idx / self.io_nodes as u64) * self.unit + offset % self.unit
    }

    /// Decompose `[offset, offset + bytes)` into per-I/O-node segments,
    /// merging node-locally contiguous units. Segments are returned in
    /// ascending file-offset order of their first byte.
    pub fn segments(&self, offset: u64, bytes: u64) -> Vec<Segment> {
        let mut segs = Vec::new();
        self.segments_into(offset, bytes, &mut segs);
        segs
    }

    /// [`StripeLayout::segments`], appending into a caller-owned buffer —
    /// the hot-path form, letting the file systems reuse one scratch
    /// vector across requests instead of allocating per request.
    ///
    /// A request covers its stripe units without gaps, and units `u` and
    /// `u + io_nodes` are always node-locally contiguous, so every unit a
    /// node owns merges into a single segment: exactly one segment per
    /// touched node, in order of the node's first unit.
    pub fn segments_into(&self, offset: u64, bytes: u64, segs: &mut Vec<Segment>) {
        if bytes == 0 {
            return;
        }
        let n = self.io_nodes as u64;
        let end = offset + bytes;
        let first_unit = offset / self.unit;
        let last_unit = (end - 1) / self.unit;
        let touched = (last_unit - first_unit + 1).min(n);
        segs.reserve(touched as usize);
        for k in 0..touched {
            let u = first_unit + k;
            let start = offset.max(u * self.unit);
            // The node's last unit inside the request, and the request's
            // end within it.
            let ul = u + ((last_unit - u) / n) * n;
            let stop = end.min((ul + 1) * self.unit);
            let local = self.local_offset_of(start);
            segs.push(Segment {
                io_node: (u % n) as u32,
                local_offset: local,
                bytes: self.local_offset_of(stop - 1) + 1 - local,
            });
        }
    }

    /// Round `bytes` up to a whole number of stripe units — the padding
    /// ESCAT's developers applied when computing staging offsets "dependent
    /// on the node number, iteration, and PFS stripe size" (§5.1).
    pub fn round_up(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.unit) * self.unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ownership_round_robins() {
        let l = StripeLayout::new(64 * 1024, 16);
        assert_eq!(l.io_node_of(0), 0);
        assert_eq!(l.io_node_of(64 * 1024), 1);
        assert_eq!(l.io_node_of(15 * 64 * 1024), 15);
        assert_eq!(l.io_node_of(16 * 64 * 1024), 0);
        assert_eq!(l.local_offset_of(16 * 64 * 1024), 64 * 1024);
        assert_eq!(l.local_offset_of(17 * 64 * 1024 + 5), 64 * 1024 + 5);
    }

    #[test]
    fn small_request_single_segment() {
        let l = StripeLayout::pfs(16);
        let segs = l.segments(2048, 2048);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].io_node, 0);
        assert_eq!(segs[0].local_offset, 2048);
        assert_eq!(segs[0].bytes, 2048);
    }

    #[test]
    fn request_crossing_one_boundary() {
        let l = StripeLayout::pfs(16);
        // 82 KB starting at 60 KB: 4 KB on node 0, then 64 KB on node 1,
        // then 14 KB on node 2.
        let segs = l.segments(60 * 1024, 82 * 1024);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            Segment {
                io_node: 0,
                local_offset: 60 * 1024,
                bytes: 4 * 1024
            }
        );
        assert_eq!(
            segs[1],
            Segment {
                io_node: 1,
                local_offset: 0,
                bytes: 64 * 1024
            }
        );
        assert_eq!(
            segs[2],
            Segment {
                io_node: 2,
                local_offset: 0,
                bytes: 14 * 1024
            }
        );
    }

    #[test]
    fn large_request_merges_per_io_node() {
        let l = StripeLayout::pfs(16);
        // 3 MB from 0: 48 units over 16 nodes = 3 contiguous units per node.
        let segs = l.segments(0, 3 * 1024 * 1024);
        assert_eq!(segs.len(), 16);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.io_node as usize, i);
            assert_eq!(s.local_offset, 0);
            assert_eq!(s.bytes, 3 * 64 * 1024);
        }
    }

    #[test]
    fn bytes_conserved() {
        let l = StripeLayout::new(4096, 5);
        for (off, len) in [
            (0u64, 1u64),
            (1, 4096),
            (4095, 2),
            (10_000, 123_456),
            (0, 0),
        ] {
            let total: u64 = l.segments(off, len).iter().map(|s| s.bytes).sum();
            assert_eq!(total, len, "offset {off} len {len}");
        }
    }

    #[test]
    fn segments_mapped_consistently() {
        // Every byte of every segment maps back to the right io node/local
        // offset.
        let l = StripeLayout::new(1000, 3);
        let off = 2500u64;
        let len = 7300u64;
        for seg in l.segments(off, len) {
            // First byte of the segment:
            let mut found = false;
            for p in off..off + len {
                if l.io_node_of(p) == seg.io_node && l.local_offset_of(p) == seg.local_offset {
                    found = true;
                    break;
                }
            }
            assert!(found, "segment start unmapped: {seg:?}");
        }
    }

    #[test]
    fn single_io_node_merges_everything() {
        let l = StripeLayout::new(4096, 1);
        let segs = l.segments(100, 1 << 20);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].local_offset, 100);
        assert_eq!(segs[0].bytes, 1 << 20);
    }

    /// The closed-form decomposition must match a brute-force chunk walk
    /// (the obviously-correct reference) for a spread of geometries.
    #[test]
    fn segments_match_chunk_walk_reference() {
        fn reference(l: &StripeLayout, offset: u64, bytes: u64) -> Vec<Segment> {
            let mut segs: Vec<Segment> = Vec::new();
            let mut pos = offset;
            let end = offset + bytes;
            while pos < end {
                let chunk_end = ((pos / l.unit + 1) * l.unit).min(end);
                let io_node = l.io_node_of(pos);
                let local = l.local_offset_of(pos);
                let len = chunk_end - pos;
                match segs
                    .iter_mut()
                    .find(|s| s.io_node == io_node && s.local_offset + s.bytes == local)
                {
                    Some(prev) => prev.bytes += len,
                    None => segs.push(Segment {
                        io_node,
                        local_offset: local,
                        bytes: len,
                    }),
                }
                pos = chunk_end;
            }
            segs
        }
        for (unit, nodes) in [(1000, 3), (4096, 1), (64 * 1024, 16), (512, 7)] {
            let l = StripeLayout::new(unit, nodes);
            for offset in [0, 1, unit - 1, unit, 3 * unit + 17, 10 * unit] {
                for bytes in [1, unit, unit + 1, 5 * unit - 3, 40 * unit, 41 * unit + 9] {
                    assert_eq!(
                        l.segments(offset, bytes),
                        reference(&l, offset, bytes),
                        "unit={unit} nodes={nodes} offset={offset} bytes={bytes}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_up_to_stripe() {
        let l = StripeLayout::pfs(16);
        assert_eq!(l.round_up(1), 64 * 1024);
        assert_eq!(l.round_up(64 * 1024), 64 * 1024);
        assert_eq!(l.round_up(104_000), 128 * 1024);
        assert_eq!(l.round_up(0), 0);
    }
}

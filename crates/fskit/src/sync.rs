//! Parking/drain bookkeeping for `Sync` commits.
//!
//! PDES classification: a `Sync` parks until *every* in-flight write on its
//! file has drained — writes that span many I/O nodes and originate from
//! many compute nodes. The ledger is therefore cross-node (boundary) state
//! by definition; it is only ever touched from service code, i.e. the
//! sharded engine's serial commit phase (DESIGN.md §8).

use paragon_sim::program::IoToken;
use paragon_sim::{NodeId, SimTime};

/// A `Sync` call parked until every in-flight write on its file has reached
/// the arrays.
#[derive(Debug, Clone, Copy)]
pub struct SyncWaiter {
    /// The engine token to acknowledge.
    pub token: IoToken,
    /// Issuing compute node.
    pub node: NodeId,
    /// The synced file.
    pub file: u32,
    /// When the call was issued (commit latency spans issue → drain).
    pub issued: SimTime,
}

/// The parked-`Sync` ledger: commits wait here while their file still has
/// outstanding write traffic, and drain — in parking order — once the last
/// write lands. The backend decides what "outstanding" means (in-flight
/// segments for write-through PFS, dirty cache blocks for write-behind PPFS).
#[derive(Debug, Default)]
pub struct SyncLedger {
    waiters: Vec<SyncWaiter>,
}

impl SyncLedger {
    /// New, empty ledger.
    pub fn new() -> SyncLedger {
        SyncLedger::default()
    }

    /// Park a commit until its file drains.
    pub fn park(&mut self, waiter: SyncWaiter) {
        self.waiters.push(waiter);
    }

    /// Whether any commit is parked (cheap guard before drain checks).
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Remove and return every waiter parked on `file`, preserving parking
    /// order.
    pub fn take_for(&mut self, file: u32) -> Vec<SyncWaiter> {
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.waiters.len() {
            if self.waiters[i].file == file {
                ready.push(self.waiters.remove(i));
            } else {
                i += 1;
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_for_preserves_parking_order_and_leaves_other_files() {
        let mut ledger = SyncLedger::new();
        for (token, file) in [(1u64, 0u32), (2, 1), (3, 0), (4, 0)] {
            ledger.park(SyncWaiter {
                token,
                node: 0,
                file,
                issued: SimTime::ZERO,
            });
        }
        let drained: Vec<u64> = ledger.take_for(0).iter().map(|w| w.token).collect();
        assert_eq!(drained, vec![1, 3, 4]);
        assert!(!ledger.is_empty());
        assert_eq!(ledger.take_for(1).len(), 1);
        assert!(ledger.is_empty());
    }
}

//! # sio-fskit — the shared client-side file-system substrate
//!
//! Both simulator backends — `sio-pfs` (the Intel PFS model) and `sio-ppfs`
//! (the policy-driven portable parallel file system) — are *policies over
//! the same substrate*: they register files in a fixed-slot allocator,
//! decompose requests into stripe segments, push those segments through the
//! I/O-node queues with backoff/retry on backpressure, deliver scheduled
//! fault events, park `Sync` commits until write traffic drains, and record
//! every application-visible interval into a Pablo-style trace. This crate
//! holds that substrate once, so a backend is only the semantics it adds on
//! top:
//!
//! * [`config`] — [`FsConfig`], the machine-derived substrate configuration
//!   (stripe map, software costs, fixed-slot allocator geometry);
//! * [`layout`] — the 64 KB round-robin stripe map from file offsets to
//!   (I/O node, array offset) segments;
//! * [`mode`] — the six PFS parallel access modes and their semantics;
//! * [`file`](mod@file) — file registration specs and runtime state;
//! * [`table`] — [`FileTable`], the FileSpec/FileState registry plus the
//!   fixed-slot per-I/O-node allocator (typed `IoFault::Unavailable` on
//!   exhaustion), and [`MetaServer`], the serialized metadata queue;
//! * [`client`] — [`ClientPath`], the per-node serial client copy path;
//! * [`pump`] — [`SegmentPump`], the submit → queue-full backoff/retry →
//!   completion state machine over the I/O nodes, with a per-backend
//!   [`FailoverPolicy`] (buddy-node failover for PFS, stripe-pinned
//!   retry/replay for PPFS);
//! * [`fault`] — [`FaultRouter`], timer-based delivery of a
//!   [`paragon_sim::FaultSchedule`];
//! * [`lanes`] — [`TimerLanes`], the partitioned timer-id space (fixed
//!   per-I/O-node lanes, reserved singletons, one dynamic lane);
//! * [`sync`] — [`SyncLedger`], parking/drain bookkeeping for `Sync`
//!   commits;
//! * [`recorder`] — [`TraceRecorder`], application-visible interval tracing
//!   and completion plumbing shared by every verb handler.
//!
//! Determinism contract: every method that arms a timer takes the backend's
//! [`TimerLanes`] allocator, which partitions the id space into fixed
//! per-I/O-node lanes (timer id = node index — shard-count-invariant by
//! construction), optional reserved singletons, and one dynamic lane
//! allocated in serial-commit order. Id allocation order — and with it the
//! engine's FIFO tie-breaking — is exactly what a hand-inlined
//! implementation would produce, at every `--shards` count; see
//! [`lanes`] for the invariance argument. The golden-trace suites pin
//! this down byte-for-byte.

pub mod client;
pub mod config;
pub mod fault;
pub mod file;
pub mod lanes;
pub mod layout;
pub mod mode;
pub mod pump;
pub mod recorder;
pub mod sync;
pub mod table;

pub use client::ClientPath;
pub use config::{FsConfig, DEFAULT_FILE_SLOT};
pub use fault::FaultRouter;
pub use file::{FileSpec, FileState};
pub use lanes::TimerLanes;
pub use layout::{Segment, StripeLayout};
pub use mode::AccessMode;
pub use pump::{FailoverPolicy, NodeLoad, NodeTick, PumpStats, RetrySeg, SegmentPump};
pub use recorder::TraceRecorder;
pub use sync::{SyncLedger, SyncWaiter};
pub use table::{FileTable, MetaServer, MetaStats, MetaVerdict};

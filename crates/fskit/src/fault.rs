//! Timer-based delivery of a [`FaultSchedule`].

use paragon_sim::engine::Sched;
use paragon_sim::fault::{FaultDomain, FaultEvent, FaultSchedule, META_REPLICAS};
use sio_core::hash::FastMap;

use crate::lanes::TimerLanes;

/// Delivers a deterministic [`FaultSchedule`] to a backend: each event is
/// armed as one absolute-time timer at run start, and [`FaultRouter::take`]
/// claims a fired timer back into its event. An empty schedule arms nothing,
/// so a healthy run is bit-identical to one built without fault support.
#[derive(Debug)]
pub struct FaultRouter {
    schedule: FaultSchedule,
    /// Armed events: timer id → event.
    timers: FastMap<u64, FaultEvent>,
}

impl FaultRouter {
    /// New router over a schedule. Panics if any event targets an index its
    /// fault domain does not have — I/O node for disk/node faults, link
    /// region for link faults (one region per I/O node column), metadata
    /// replica for meta faults. A malformed schedule is a caller bug, not a
    /// simulated fault.
    pub fn new(schedule: FaultSchedule, io_nodes: usize) -> FaultRouter {
        for e in schedule.events() {
            let bound = match e.kind.domain() {
                FaultDomain::Disk | FaultDomain::Node | FaultDomain::Link => io_nodes,
                FaultDomain::Meta => META_REPLICAS as usize,
            };
            assert!(
                (e.io_node as usize) < bound,
                "fault schedule targets index {} outside the {} domain (bound {})",
                e.io_node,
                e.kind.domain().label(),
                bound
            );
        }
        FaultRouter {
            schedule,
            timers: FastMap::default(),
        }
    }

    /// Whether a fault schedule is in play (backends arm deadlines and use
    /// lenient owner checks only when it is).
    pub fn enabled(&self) -> bool {
        !self.schedule.is_empty()
    }

    /// Arm one timer per scheduled event, allocating ids from the backend's
    /// dynamic timer lane in schedule order. Fault delivery mutates whatever
    /// domain the event targets — boundary traffic under the PDES ownership
    /// contract, which is safe because timers only ever fire in the serial
    /// commit phase.
    pub fn arm_all(&mut self, lanes: &mut TimerLanes, sched: &mut Sched) {
        for ev in self.schedule.clone().events() {
            let id = lanes.alloc();
            self.timers.insert(id, *ev);
            sched.timer(ev.at, id);
        }
    }

    /// Claim a fault timer, if `timer` is one.
    pub fn take(&mut self, timer: u64) -> Option<FaultEvent> {
        self.timers.remove(&timer)
    }
}

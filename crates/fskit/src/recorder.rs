//! Application-visible interval tracing and completion plumbing.
//!
//! PDES classification: the recorder writes into the sink's per-node trace
//! lanes (`sio_core::trace`) — appends are shard-local per node, while the
//! global sequence stamp is allocated in serial-commit order, which is what
//! keeps frozen traces byte-identical at every shard count.

use paragon_sim::engine::Sched;
use paragon_sim::program::{IoFault, IoResult, IoToken};
use paragon_sim::{NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::trace::{Trace, TraceSink};

/// Records every application-visible interval into a Pablo-style
/// [`TraceSink`] and owns the record + acknowledge boilerplate every verb
/// handler otherwise repeats: span the interval, attach an extent when the
/// verb has one, and complete the engine token with the service time.
#[derive(Debug)]
pub struct TraceRecorder {
    sink: TraceSink,
}

impl TraceRecorder {
    /// Wrap a sink.
    pub fn new(sink: TraceSink) -> TraceRecorder {
        TraceRecorder { sink }
    }

    /// Record one raw event.
    pub fn record(&mut self, ev: IoEvent) {
        self.sink.record(ev);
    }

    /// Direct sink access (run-info stamping, backend-specific events).
    pub fn sink_mut(&mut self) -> &mut TraceSink {
        &mut self.sink
    }

    /// Finalize into the merged trace.
    pub fn finish(self) -> Trace {
        self.sink.finish()
    }

    /// Record a blocked interval from the engine's `on_iowait` hook.
    pub fn iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.record(
            IoEvent::new(node, file, IoOp::IoWait).span(wait_start.nanos(), wait_end.nanos()),
        );
    }

    /// Record a completed operation spanning `start..done` (plus an optional
    /// `(offset, length)` extent) and acknowledge its token with `bytes` and
    /// a fault-free result. This is the shared shape of every metadata verb
    /// (`Open`/`Close`/`Seek`/`Flush`/`Lsize`) in both backends.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_op(
        &mut self,
        sched: &mut Sched,
        token: IoToken,
        node: NodeId,
        file: u32,
        op: IoOp,
        start: SimTime,
        done: SimTime,
        extent: Option<(u64, u64)>,
        bytes: u64,
    ) {
        let mut ev = IoEvent::new(node, file, op).span(start.nanos(), done.nanos());
        if let Some((offset, len)) = extent {
            ev = ev.extent(offset, len);
        }
        self.record(ev);
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes,
                queued: SimDuration::ZERO,
                service: done.since(start),
                fault: None,
            },
        );
    }

    /// Record and acknowledge a *failed* operation: the interval spans the
    /// whole attempt (issue through the final exhausted retry) and the
    /// token completes with zero bytes and the typed `fault`. This is how a
    /// metadata RPC that rode out a full outage surfaces
    /// [`IoFault::Unavailable`] instead of hanging.
    #[allow(clippy::too_many_arguments)]
    pub fn fail_op(
        &mut self,
        sched: &mut Sched,
        token: IoToken,
        node: NodeId,
        file: u32,
        op: IoOp,
        start: SimTime,
        done: SimTime,
        fault: IoFault,
    ) {
        self.record(IoEvent::new(node, file, op).span(start.nanos(), done.nanos()));
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes: 0,
                queued: SimDuration::ZERO,
                service: done.since(start),
                fault: Some(fault),
            },
        );
    }

    /// Record and acknowledge a drained `Sync` commit: the flush cost is
    /// paid after the file drains at `now`, the traced interval spans the
    /// full `issued..done` commit latency, and `fault` reports durability
    /// loss (a commit that "succeeded" against a redundancy-exhausted array
    /// must not claim durability).
    #[allow(clippy::too_many_arguments)]
    pub fn complete_commit(
        &mut self,
        sched: &mut Sched,
        token: IoToken,
        node: NodeId,
        file: u32,
        issued: SimTime,
        now: SimTime,
        flush_cost: SimDuration,
        fault: Option<IoFault>,
    ) {
        let done = now + flush_cost;
        self.record(IoEvent::new(node, file, IoOp::Flush).span(issued.nanos(), done.nanos()));
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes: 0,
                queued: SimDuration::ZERO,
                service: done.since(issued),
                fault,
            },
        );
    }
}

//! The per-node client copy path.

use paragon_sim::time::transfer_time;
use paragon_sim::{NodeId, SimTime};

/// The per-node client copy path: one CPU per node moves data between the
/// application and the message system, so concurrent completions on the same
/// node serialize through it. This is the effect behind §6.2's observation
/// that the RENDER gateway sustains only ~9.5 MB/s against a ~140 MB/s
/// aggregate array rate.
#[derive(Debug, Default)]
pub struct ClientPath {
    /// Next-free time per node, indexed by `NodeId` (dense: node ids are
    /// small and this is touched once per data completion).
    free: Vec<SimTime>,
}

impl ClientPath {
    /// New, idle client path.
    pub fn new() -> ClientPath {
        ClientPath::default()
    }

    /// Serialize a `bytes`-sized copy on `node`'s client CPU, starting no
    /// earlier than `ready`; returns the completion time.
    pub fn copy_done(&mut self, node: NodeId, ready: SimTime, bytes: u64, rate: f64) -> SimTime {
        let slot = node as usize;
        if slot >= self.free.len() {
            self.free.resize(slot + 1, SimTime::ZERO);
        }
        let start = self.free[slot].max(ready);
        let done = start + transfer_time(bytes, rate);
        self.free[slot] = done;
        done
    }
}

//! The segment pump: the submit → backoff/retry → completion state machine
//! over the I/O-node queues.
//!
//! Both backends push stripe segments through [`paragon_sim::ionode::IoNodeSim`]
//! queues and must handle explicit backpressure ([`SubmitOutcome::Rejected`])
//! without ever silently dropping a segment. What differs is the *failover
//! policy*:
//!
//! * [`FailoverPolicy::Buddy`] (PFS) — bounded backoff retries against the
//!   target node, then reconstruct from redundancy on the buddy node
//!   `(io + 1) % n`, and only if the buddy also refuses give the owning
//!   request up (the pump reports the owner; the backend fails the token);
//! * [`FailoverPolicy::StripePinned`] (PPFS) — segments target a fixed
//!   stripe position, so a down node parks the segment for replay on
//!   recovery, and a full queue retries forever with capped backoff
//!   (write-behind data has nowhere else to go).
//!
//! Each I/O node's simulator state and its accepted-request accounting
//! live together in one `IoLane`, the unit of state a PDES shard owns:
//! everything inside a lane is touched only through that node's events
//! (shard-local), while buddy failover and stripe replay — the two places
//! a segment *changes lanes* — are boundary traffic that only ever runs
//! in the serial commit phase. Backoff retries stay on their lane.
//!
//! Timer ids are drawn from the backend's [`TimerLanes`] allocator so the
//! id sequence — and the engine's FIFO tie-breaking on it — is
//! byte-identical to a hand-inlined implementation at every shard count
//! (see [`crate::lanes`] for the invariance argument).

use paragon_sim::engine::Sched;
use paragon_sim::ionode::{Completion, IoNodeSim, RejectReason, SegmentReq, SubmitOutcome};
use paragon_sim::raid::RaidError;
use paragon_sim::{SimDuration, SimTime};
use sio_core::hash::FastMap;

use crate::lanes::TimerLanes;
use crate::layout::{Segment, StripeLayout};
use paragon_sim::program::IoFault;

/// Shared exponential-backoff computation: `retry_base × 2^min(attempt, 4)`.
/// The cap keeps the worst-case delay at 16× the base (800 ms on the
/// calibrated 50 ms base) however many attempts a policy allows.
pub fn backoff_delay(retry_base: SimDuration, attempt: u32) -> SimDuration {
    retry_base.times(1u64 << attempt.min(4))
}

/// How the pump reacts once a target node refuses a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverPolicy {
    /// Bounded retries, then buddy-node failover, then give up (PFS).
    Buddy {
        /// Backoff attempts against one node before failing over.
        max_retries: u32,
    },
    /// Stripe-pinned: park on node-down for replay at recovery, retry
    /// forever with capped backoff on queue-full (PPFS).
    StripePinned,
}

/// Per-I/O-node request accounting, counted when a segment is *accepted*
/// (started or queued) by the node: the request counts and mean request
/// sizes the paper's Fig. 4 analysis — and X6's backend comparison — are
/// about. Rejections don't count; a segment accepted after backoff counts
/// once, at acceptance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Read requests accepted.
    pub read_reqs: u64,
    /// Read bytes accepted.
    pub read_bytes: u64,
    /// Write requests accepted.
    pub write_reqs: u64,
    /// Write bytes accepted.
    pub write_bytes: u64,
}

/// Pump counters (all zero on a healthy run except `segments`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Segment re-submissions scheduled with backoff.
    pub retries: u64,
    /// Segments failed over to the buddy node (Buddy policy only).
    pub failovers: u64,
    /// Stripe segments submitted to the I/O nodes (all causes).
    pub segments: u64,
    /// Segments resubmitted after a crashed node recovered.
    pub replayed: u64,
}

/// A rejected or lost segment awaiting re-submission.
#[derive(Debug, Clone, Copy)]
pub struct RetrySeg {
    /// Target I/O node of the next attempt.
    pub io: u32,
    /// The segment request.
    pub req: SegmentReq,
    /// Attempts already made against the current target.
    pub attempt: u32,
}

/// What an I/O-node completion timer delivered.
#[derive(Debug, Clone, Copy)]
pub enum NodeTick {
    /// The timer was stale (a stall postponed the completion or a crash
    /// voided it); the re-armed timer covers the real time.
    Stale,
    /// Background rebuild traffic: no owner to advance.
    Rebuild,
    /// The completed segment has no registered owner (the owning request
    /// already failed).
    Orphan,
    /// An application segment completed for `owner`.
    Seg {
        /// The owner recorded at submission (request token or transfer id).
        owner: u64,
        /// Whether the serving array had exhausted its redundancy.
        data_lost: bool,
    },
}

/// A staged (not yet submitted) extent: the per-node segment requests and
/// the segment ids allocated for them, in dispatch order.
pub type StagedExtent = (Vec<(u32, SegmentReq)>, Vec<u64>);

/// One I/O node's shard-owned state: the queue/array simulator and the
/// accepted-request accounting for that node, grouped so everything a
/// single node's events touch lives behind one index.
struct IoLane {
    sim: IoNodeSim,
    load: NodeLoad,
}

/// The segment pump over a machine's I/O nodes.
pub struct SegmentPump {
    lanes: Vec<IoLane>,
    policy: FailoverPolicy,
    retry_base: SimDuration,
    /// Completed-segment routing: segment id → owner (request token for
    /// PFS, transfer id for PPFS — both are `u64`).
    seg_owner: FastMap<u64, u64>,
    next_seg: u64,
    /// Reused stripe-decomposition buffer (hot path: one per request
    /// otherwise).
    seg_scratch: Vec<Segment>,
    /// Armed backoff retries: timer id → segment.
    retry_timers: FastMap<u64, RetrySeg>,
    /// Segments parked at a crashed node, resubmitted on recovery.
    replay: Vec<(u32, SegmentReq)>,
    stats: PumpStats,
}

impl SegmentPump {
    /// New pump over the given I/O nodes.
    pub fn new(
        ionodes: Vec<IoNodeSim>,
        policy: FailoverPolicy,
        retry_base: SimDuration,
    ) -> SegmentPump {
        SegmentPump {
            lanes: ionodes
                .into_iter()
                .map(|sim| IoLane {
                    sim,
                    load: NodeLoad::default(),
                })
                .collect(),
            policy,
            retry_base,
            seg_owner: FastMap::default(),
            next_seg: 0,
            seg_scratch: Vec::new(),
            retry_timers: FastMap::default(),
            replay: Vec::new(),
            stats: PumpStats::default(),
        }
    }

    /// Number of I/O nodes (timer ids below this are node timers).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the pump drives any I/O nodes at all.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// One I/O node (read-only).
    pub fn node(&self, io: u32) -> &IoNodeSim {
        &self.lanes[io as usize].sim
    }

    /// Mutable access to one I/O node (fault injection, tuning).
    pub fn node_mut(&mut self, io: u32) -> &mut IoNodeSim {
        &mut self.lanes[io as usize].sim
    }

    /// Pump counters.
    pub fn stats(&self) -> PumpStats {
        self.stats
    }

    /// Accepted-request accounting per I/O node, in node order.
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.lanes.iter().map(|l| l.load).collect()
    }

    fn note_load(&mut self, io: u32, req: &SegmentReq) {
        let l = &mut self.lanes[io as usize].load;
        if req.write {
            l.write_reqs += 1;
            l.write_bytes += req.bytes;
        } else {
            l.read_reqs += 1;
            l.read_bytes += req.bytes;
        }
    }

    /// Stage an extent for two-phase dispatch: decompose into stripe
    /// segments, check every segment against the allocator slot, allocate
    /// segment ids, and register `owner` — without submitting anything.
    /// The caller records the ids (for cleanup on early failure), inserts
    /// its own pending state, then submits the returned requests one by one,
    /// so a rejection chain observed mid-loop can fail the whole owner.
    ///
    /// A segment overflowing its allocator slot is a typed
    /// [`IoFault::Unavailable`] (checked before any id is allocated), not a
    /// debug assertion.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_extent(
        &mut self,
        layout: &StripeLayout,
        slot_base: u64,
        array_capacity: u64,
        offset: u64,
        bytes: u64,
        write: bool,
        owner: u64,
    ) -> Result<StagedExtent, IoFault> {
        let mut segments = std::mem::take(&mut self.seg_scratch);
        segments.clear();
        layout.segments_into(offset, bytes, &mut segments);
        if segments
            .iter()
            .any(|s| slot_base + s.local_offset + s.bytes > array_capacity)
        {
            self.seg_scratch = segments;
            return Err(IoFault::Unavailable);
        }
        let mut reqs = Vec::with_capacity(segments.len());
        let mut seg_ids = Vec::with_capacity(segments.len());
        for seg in &segments {
            let id = self.next_seg;
            self.next_seg += 1;
            self.seg_owner.insert(id, owner);
            seg_ids.push(id);
            self.stats.segments += 1;
            reqs.push((
                seg.io_node,
                SegmentReq {
                    id,
                    offset: slot_base + seg.local_offset,
                    bytes: seg.bytes,
                    write,
                    sequential: false,
                    failover: false,
                },
            ));
        }
        self.seg_scratch = segments;
        Ok((reqs, seg_ids))
    }

    /// Stage one pre-aggregated segment (the two-phase collective shape:
    /// the caller already merged member extents into a single per-I/O-node
    /// array run): allocate its id, register `owner`, count it — without
    /// submitting. Aggregated transfers stream sequentially on the array.
    pub fn stage_seg(&mut self, offset: u64, bytes: u64, write: bool, owner: u64) -> SegmentReq {
        let id = self.next_seg;
        self.next_seg += 1;
        self.seg_owner.insert(id, owner);
        self.stats.segments += 1;
        SegmentReq {
            id,
            offset,
            bytes,
            write,
            sequential: true,
            failover: false,
        }
    }

    /// One-phase dispatch: decompose, allocate, and submit each segment of
    /// an extent immediately, owned by `owner`. Returns the segment count.
    /// This is the stripe-pinned path — submission can park or retry but
    /// never gives an owner up.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_extent(
        &mut self,
        now: SimTime,
        layout: &StripeLayout,
        slot_base: u64,
        offset: u64,
        bytes: u64,
        write: bool,
        owner: u64,
        lanes: &mut TimerLanes,
        sched: &mut Sched,
    ) -> u32 {
        let mut segs = std::mem::take(&mut self.seg_scratch);
        segs.clear();
        layout.segments_into(offset, bytes, &mut segs);
        let mut count = 0;
        for &seg in &segs {
            let id = self.next_seg;
            self.next_seg += 1;
            self.seg_owner.insert(id, owner);
            let req = SegmentReq {
                id,
                offset: slot_base + seg.local_offset,
                bytes: seg.bytes,
                write,
                sequential: false,
                failover: false,
            };
            let gave_up = self.submit_seg(now, seg.io_node, req, 0, lanes, sched);
            debug_assert!(gave_up.is_none(), "extent submission cannot give up");
            count += 1;
            self.stats.segments += 1;
        }
        self.seg_scratch = segs;
        count
    }

    /// Submit one segment to an I/O node, handling explicit backpressure
    /// under the pump's failover policy. Returns the owner of the segment
    /// when the request must be given up (primary and buddy both refused —
    /// Buddy policy only): the backend fails the owning token at exactly
    /// this point in the call sequence.
    pub fn submit_seg(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        lanes: &mut TimerLanes,
        sched: &mut Sched,
    ) -> Option<u64> {
        match self.lanes[io as usize].sim.submit(now, req) {
            SubmitOutcome::Started => {
                // Invariant (see `IoNodeModel::submit`): `Started` is only
                // returned after the request is parked as the in-service
                // work, so `next_done()` is `Some`. This holds under the
                // sharded engine too: services — and therefore every
                // `IoNodeModel` — run only inside the coordinator's serial
                // commit phase (`paragon_sim::pdes`), never concurrently
                // with shard pre-stepping, so no cross-shard delivery can
                // interleave between `submit` and `next_done`.
                let t = self.lanes[io as usize]
                    .sim
                    .next_done()
                    .expect("submit returned Started with no in-service work");
                sched.timer(t, io as u64);
                self.note_load(io, &req);
                None
            }
            SubmitOutcome::Queued => {
                self.note_load(io, &req);
                None
            }
            SubmitOutcome::Rejected(reason) => {
                self.handle_rejection(now, io, req, attempt, reason, lanes, sched)
            }
        }
    }

    /// A segment was rejected (or lost to a crash): back off and retry,
    /// fail over, park for replay, or report the owner for give-up,
    /// according to the failover policy. Failover and replay re-route a
    /// segment to a *different* lane — boundary traffic under the PDES
    /// ownership contract (serial commit phase only).
    #[allow(clippy::too_many_arguments)]
    pub fn handle_rejection(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        reason: RejectReason,
        lanes: &mut TimerLanes,
        sched: &mut Sched,
    ) -> Option<u64> {
        match self.policy {
            FailoverPolicy::Buddy { max_retries } => match reason {
                // A full queue is congestion, not failure: a large
                // aggregated segment from a single submitter can keep a
                // healthy node's queue at its limit, and burning the
                // bounded failover budget on it ends in a spurious
                // give-up against two healthy-but-busy nodes. Retry
                // forever with capped backoff; the backlog drains.
                RejectReason::QueueFull => {
                    self.arm_retry(now, io, req, attempt, (attempt + 1).min(4), lanes, sched);
                    None
                }
                RejectReason::Down => {
                    if attempt < max_retries {
                        self.arm_retry(now, io, req, attempt, attempt + 1, lanes, sched);
                        None
                    } else if !req.failover {
                        // This node is unreachable: reconstruct from
                        // redundancy on the buddy node (at the degraded
                        // penalty).
                        self.stats.failovers += 1;
                        let buddy = (io + 1) % self.lanes.len() as u32;
                        let mut r = req;
                        r.failover = true;
                        self.submit_seg(now, buddy, r, 0, lanes, sched)
                    } else {
                        // Primary and buddy both refused: the request
                        // cannot be served.
                        self.seg_owner.get(&req.id).copied()
                    }
                }
            },
            FailoverPolicy::StripePinned => {
                match reason {
                    RejectReason::Down => self.replay.push((io, req)),
                    // Unbounded retries with capped backoff: write-behind
                    // data has nowhere else to go.
                    RejectReason::QueueFull => {
                        self.arm_retry(now, io, req, attempt, (attempt + 1).min(4), lanes, sched)
                    }
                }
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn arm_retry(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        next_attempt: u32,
        lanes: &mut TimerLanes,
        sched: &mut Sched,
    ) {
        self.stats.retries += 1;
        let delay = backoff_delay(self.retry_base, attempt);
        let id = lanes.alloc();
        self.retry_timers.insert(
            id,
            RetrySeg {
                io,
                req,
                attempt: next_attempt,
            },
        );
        sched.timer(now + delay, id);
    }

    /// Claim a retry timer, if `timer` is one.
    pub fn take_retry(&mut self, timer: u64) -> Option<RetrySeg> {
        self.retry_timers.remove(&timer)
    }

    /// Whether a segment still has a registered owner (a retry is only
    /// worth making while the owning request is alive).
    pub fn owns(&self, seg_id: u64) -> bool {
        self.seg_owner.contains_key(&seg_id)
    }

    /// The owner registered for a segment.
    pub fn owner_of(&self, seg_id: u64) -> Option<u64> {
        self.seg_owner.get(&seg_id).copied()
    }

    /// Drop a segment's owner registration (cleanup when the owning request
    /// fails early).
    pub fn forget(&mut self, seg_id: u64) {
        self.seg_owner.remove(&seg_id);
    }

    /// Service an I/O-node completion timer: check it is due, complete the
    /// head-of-queue work, re-arm for the next completion, and route the
    /// finished segment to its owner.
    pub fn node_tick(&mut self, now: SimTime, timer: u64, sched: &mut Sched) -> NodeTick {
        let io = timer as usize;
        let due = matches!(self.lanes[io].sim.next_done(), Some(t) if t <= now);
        if !due {
            return NodeTick::Stale;
        }
        let completion = self.lanes[io].sim.complete_head(now);
        if let Some(t) = self.lanes[io].sim.next_done() {
            sched.timer(t, timer);
        }
        match completion {
            Completion::App { id, data_lost } => match self.seg_owner.remove(&id) {
                Some(owner) => NodeTick::Seg { owner, data_lost },
                None => NodeTick::Orphan,
            },
            Completion::Rebuild { .. } => NodeTick::Rebuild,
        }
    }

    // -- fault application helpers (one per FaultKind arm) ------------------

    /// Fail one member disk; returns whether this was a second failure that
    /// exhausted the array's redundancy (a data-loss event). A malformed
    /// event (bad index) is a reportable no-op.
    pub fn apply_disk_fail(&mut self, io: u32, disk: u32) -> bool {
        match self.lanes[io as usize].sim.array_mut().fail_disk(disk) {
            Ok(()) => false,
            Err(RaidError::DoubleFailure { .. }) => {
                self.lanes[io as usize].sim.array_mut().mark_data_lost();
                true
            }
            Err(_) => false,
        }
    }

    /// A hot spare arrived: start the timed background rebuild.
    pub fn apply_disk_repair(&mut self, now: SimTime, io: u32, sched: &mut Sched) {
        if self.lanes[io as usize]
            .sim
            .array_mut()
            .start_rebuild()
            .is_ok()
        {
            if let Some(t) = self.lanes[io as usize].sim.maybe_start_rebuild(now) {
                sched.timer(t, io as u64);
            }
        }
    }

    /// Stall one node's service for a duration.
    pub fn apply_stall(&mut self, now: SimTime, io: u32, for_dur: SimDuration, sched: &mut Sched) {
        if let Some(t) = self.lanes[io as usize].sim.stall(now, for_dur) {
            sched.timer(t, io as u64);
        }
    }

    /// Crash one node, returning the in-service and queued segments it
    /// loses. The backend decides their fate (retry chain or replay park).
    pub fn crash(&mut self, io: u32) -> Vec<SegmentReq> {
        self.lanes[io as usize].sim.crash()
    }

    /// Park a lost segment for resubmission when its node recovers.
    pub fn park_replay(&mut self, io: u32, req: SegmentReq) {
        self.replay.push((io, req));
    }

    /// Recover a crashed node (and resume any interrupted rebuild).
    pub fn recover(&mut self, now: SimTime, io: u32, sched: &mut Sched) {
        self.lanes[io as usize].sim.recover();
        if let Some(t) = self.lanes[io as usize].sim.maybe_start_rebuild(now) {
            sched.timer(t, io as u64);
        }
    }

    /// Degrade the edge link into one I/O node: newly started segments'
    /// transfer times stretch by `mult` until [`SegmentPump::apply_link_heal`]
    /// (in-flight segments keep their committed service times). Repeated
    /// degrades compose by keeping the worse multiplier.
    pub fn apply_link_degrade(&mut self, io: u32, mult: f64) {
        let node = &mut self.lanes[io as usize].sim;
        let mult = node.link_mult().max(mult);
        node.set_link_mult(mult);
    }

    /// Heal the edge link into one I/O node back to full bandwidth.
    pub fn apply_link_heal(&mut self, io: u32) {
        self.lanes[io as usize].sim.set_link_mult(1.0);
    }

    /// Resubmit every segment parked against a recovered node.
    pub fn resubmit_replays(
        &mut self,
        now: SimTime,
        io: u32,
        lanes: &mut TimerLanes,
        sched: &mut Sched,
    ) {
        let mine: Vec<(u32, SegmentReq)>;
        (mine, self.replay) = std::mem::take(&mut self.replay)
            .into_iter()
            .partition(|(n, _)| *n == io);
        for (n, req) in mine {
            self.stats.replayed += 1;
            let gave_up = self.submit_seg(now, n, req, 0, lanes, sched);
            debug_assert!(gave_up.is_none(), "replay resubmission cannot give up");
        }
    }

    // -- whole-pump aggregates ---------------------------------------------

    /// Rebuild chunks completed across all I/O nodes.
    pub fn rebuild_chunks_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.sim.rebuild_chunks()).sum()
    }

    /// Member bytes rebuilt across all I/O nodes.
    pub fn rebuilt_bytes_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.sim.rebuilt_bytes()).sum()
    }

    /// I/O nodes whose arrays are still degraded.
    pub fn degraded_nodes(&self) -> u32 {
        self.lanes
            .iter()
            .filter(|l| l.sim.array().degraded())
            .count() as u32
    }

    /// Sum of queueing delay accumulated across all I/O nodes.
    pub fn total_queueing(&self) -> SimDuration {
        self.lanes
            .iter()
            .map(|l| l.sim.queued_total())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total stripe segments completed across all I/O nodes.
    pub fn segments_completed(&self) -> u64 {
        self.lanes.iter().map(|l| l.sim.completed()).sum()
    }

    /// Whether any array has exhausted its redundancy (durable ≠ healthy).
    pub fn any_data_lost(&self) -> bool {
        self.lanes.iter().any(|l| l.sim.array().data_lost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps_at_four() {
        let base = SimDuration::from_millis(50);
        // Exponential up to attempt 4...
        assert_eq!(backoff_delay(base, 0), base.times(1));
        assert_eq!(backoff_delay(base, 1), base.times(2));
        assert_eq!(backoff_delay(base, 2), base.times(4));
        assert_eq!(backoff_delay(base, 3), base.times(8));
        assert_eq!(backoff_delay(base, 4), base.times(16));
        // ...then flat: the cap bounds the worst-case delay at 16× base.
        for attempt in [5, 6, 16, 17, 63, u32::MAX] {
            assert_eq!(backoff_delay(base, attempt), base.times(16));
        }
    }

    #[test]
    fn backoff_never_overflows_the_shift() {
        // min(attempt, 4) keeps the shift far from 64 even for absurd
        // attempt counts (the stripe-pinned policy retries forever).
        let base = SimDuration::from_millis(1);
        assert_eq!(backoff_delay(base, 1000), base.times(16));
    }

    /// The CIO shape: one submitter, maximum-slot-size aggregated segments,
    /// a capacity-limited queue. Queue-full backpressure under the buddy
    /// policy must never burn the failover budget (the node is busy, not
    /// broken): every rejection re-arms a capped-backoff retry, the attempt
    /// counter stays ≤ 4, and the segment goes through once the node drains.
    #[test]
    fn buddy_queue_full_backs_off_without_burning_failover_budget() {
        use crate::config::DEFAULT_FILE_SLOT;
        use paragon_sim::MachineConfig;

        let m = MachineConfig::tiny(2, 2);
        let mut ionodes = m.build_io_nodes();
        for n in &mut ionodes {
            n.set_queue_limit(0); // busy node rejects everything
        }
        let base = SimDuration::from_millis(50);
        let mut pump = SegmentPump::new(ionodes, FailoverPolicy::Buddy { max_retries: 2 }, base);
        let mut lanes = TimerLanes::new(pump.len());
        let mut sched = Sched::default();

        // A max-slot-size aggregated segment occupies node 0...
        let big = DEFAULT_FILE_SLOT;
        let first = pump.stage_seg(0, big, true, 1);
        assert!(pump
            .submit_seg(SimTime::ZERO, 0, first, 0, &mut lanes, &mut sched)
            .is_none());

        // ...so an equally large follow-up bounces QueueFull well past
        // `max_retries`. It must neither fail over nor give up.
        let mut req = pump.stage_seg(big, big, true, 2);
        let mut now = SimTime::ZERO;
        let mut attempt = 0;
        for round in 0..12u32 {
            // Dynamic-lane ids are allocated in submit order, one per round.
            let armed = pump.len() as u64 + u64::from(round);
            let gave_up = pump.submit_seg(now, 0, req, attempt, &mut lanes, &mut sched);
            assert!(gave_up.is_none(), "round {round}: gave up on a busy node");
            let r = pump
                .take_retry(armed)
                .unwrap_or_else(|| panic!("round {round}: no retry armed"));
            assert_eq!(r.io, 0, "round {round}: retry wandered off-node");
            assert!(r.attempt <= 4, "round {round}: attempt counter uncapped");
            now += backoff_delay(base, attempt);
            req = r.req;
            attempt = r.attempt;
        }
        assert_eq!(pump.stats().failovers, 0);
        assert_eq!(pump.stats().retries, 12);

        // Drain the node; the parked segment goes through on the next try.
        let done = pump.node(0).next_done().expect("segment in service");
        let t = now.max(done);
        match pump.node_tick(t, 0, &mut sched) {
            NodeTick::Seg { owner, .. } => assert_eq!(owner, 1),
            other => panic!("expected the first segment to complete, got {other:?}"),
        }
        assert!(pump
            .submit_seg(t, 0, req, attempt, &mut lanes, &mut sched)
            .is_none());
        assert_eq!(pump.owner_of(req.id), Some(2));

        // Accepted-request accounting saw exactly the two acceptances.
        let l = pump.node_loads()[0];
        assert_eq!((l.write_reqs, l.write_bytes), (2, 2 * big));
    }
}

//! Timer-id lanes: the backend-wide timer-id space, split into fixed
//! per-I/O-node lanes plus a dynamic lane, replacing the raw `ids: &mut u64`
//! counter the substrate used to thread through every arm site.
//!
//! The id space is partitioned deterministically:
//!
//! * **Node lane** — ids `0..node_lanes` are owned one-per-I/O-node
//!   (timer id = node index): completion ticks for node `io` always fire
//!   as timer `io`. These ids are fixed at construction, so they are
//!   shard-count-invariant by construction — each I/O node's lane belongs
//!   to whichever PDES shard owns that node's region.
//! * **Reserved lane** — `node_lanes..node_lanes + reserved` are
//!   backend-owned singletons allocated at setup (PPFS parks its periodic
//!   flush timer here). Also fixed at construction.
//! * **Dynamic lane** — everything from `node_lanes + reserved` up,
//!   allocated by [`TimerLanes::alloc`] in arm order: fault deliveries,
//!   backoff retries, metadata deadlines, deferred completions.
//!
//! The dynamic lane is a single global sequence on purpose: timers are
//! only ever armed from service code, and under the sharded engine
//! (`paragon_sim::pdes`) services run exclusively in the coordinator's
//! serial commit phase, in exact global `(time, seq)` event order — never
//! concurrently with shard pre-stepping. Allocation order is therefore
//! identical for every shard count, which keeps the engine's FIFO
//! tie-breaking on timer ids — and with it every golden digest —
//! byte-identical at `--shards 1/2/8`. A per-shard split of the dynamic
//! lane would buy no parallelism (there is no concurrent allocator to
//! contend with) at the cost of a remapping step.
//!
//! The `blog` burst-buffer tier allocates from a disjoint high-bit
//! namespace (`BLOG_TIMER_BIT | id`) on top of its inner backend's lanes;
//! that namespace is orthogonal to this one and unaffected by sharding
//! for the same reason.

/// The timer-id allocator for one backend instance. See the module docs
/// for the lane layout and the shard-invariance argument.
#[derive(Debug, Clone)]
pub struct TimerLanes {
    /// Ids below this are per-I/O-node completion timers.
    node_lanes: u64,
    /// Next dynamic id to hand out.
    next: u64,
}

impl TimerLanes {
    /// Lanes over `node_lanes` I/O nodes with no reserved singletons:
    /// dynamic ids start at `node_lanes`.
    pub fn new(node_lanes: usize) -> TimerLanes {
        TimerLanes::with_reserved(node_lanes, 0)
    }

    /// Lanes with `reserved` backend-owned singleton ids between the node
    /// lane and the dynamic lane. The backend addresses its singletons as
    /// `node_lanes + k` for `k < reserved`; dynamic ids start above them.
    pub fn with_reserved(node_lanes: usize, reserved: u64) -> TimerLanes {
        TimerLanes {
            node_lanes: node_lanes as u64,
            next: node_lanes as u64 + reserved,
        }
    }

    /// Whether `id` is a per-I/O-node completion timer (the node index is
    /// then `id` itself).
    pub fn is_node_timer(&self, id: u64) -> bool {
        id < self.node_lanes
    }

    /// Allocate the next dynamic timer id. Service code only — see the
    /// module docs for why a single sequence stays shard-count-invariant.
    pub fn alloc(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_lanes_allocate_above_the_node_lane() {
        let mut lanes = TimerLanes::new(16);
        for io in 0..16 {
            assert!(lanes.is_node_timer(io));
        }
        assert!(!lanes.is_node_timer(16));
        assert_eq!(lanes.alloc(), 16);
        assert_eq!(lanes.alloc(), 17);
        assert!(!lanes.is_node_timer(17));
    }

    #[test]
    fn reserved_ids_sit_between_node_and_dynamic_lanes() {
        let mut lanes = TimerLanes::with_reserved(8, 1);
        assert!(lanes.is_node_timer(7));
        // Id 8 is the backend's reserved singleton: not a node timer, and
        // never handed out dynamically.
        assert!(!lanes.is_node_timer(8));
        assert_eq!(lanes.alloc(), 9);
        assert_eq!(lanes.alloc(), 10);
    }

    #[test]
    fn zero_node_lanes_still_allocates() {
        let mut lanes = TimerLanes::new(0);
        assert!(!lanes.is_node_timer(0));
        assert_eq!(lanes.alloc(), 0);
    }
}

//! Machine-derived substrate configuration shared by every backend.

use crate::layout::StripeLayout;
use paragon_sim::calibration::IoSwCosts;
use paragon_sim::mesh::{CommCosts, Mesh};
use paragon_sim::MachineConfig;

/// Per-I/O-node bytes reserved for each registered file (a fixed-slot
/// allocator: file `f`'s node-local space starts at `f × file_slot`).
pub const DEFAULT_FILE_SLOT: u64 = 32 << 20;

/// Substrate configuration, derived from a [`MachineConfig`]. Historically
/// named `PfsConfig`; both backends share it.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Stripe map.
    pub layout: StripeLayout,
    /// Software-path costs.
    pub io_sw: IoSwCosts,
    /// Mesh geometry (M_GLOBAL broadcast costs).
    pub mesh: Mesh,
    /// Interconnect costs.
    pub comm: CommCosts,
    /// Per-I/O-node slot size of the file allocator.
    pub file_slot: u64,
    /// Array capacity per I/O node (slot allocator bound).
    pub array_capacity: u64,
}

impl FsConfig {
    /// Derive from a machine configuration (64 KB PFS striping).
    pub fn from_machine(m: &MachineConfig) -> FsConfig {
        FsConfig {
            layout: StripeLayout::pfs(m.io_nodes),
            io_sw: m.io_sw,
            mesh: m.mesh(),
            comm: m.comm,
            file_slot: DEFAULT_FILE_SLOT,
            array_capacity: m.disk.capacity * m.raid.data_disks as u64,
        }
    }
}

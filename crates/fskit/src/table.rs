//! File registry with the fixed-slot allocator, and the metadata server.

use crate::file::{FileSpec, FileState};
use paragon_sim::program::IoFault;
use paragon_sim::{SimDuration, SimTime};

/// The file registry both backends share: specs, runtime state, and the
/// fixed-slot per-I/O-node allocator (file `f`'s node-local space starts at
/// `f × file_slot`, bounded by the array capacity).
#[derive(Debug)]
pub struct FileTable {
    files: Vec<FileState>,
    file_slot: u64,
    array_capacity: u64,
}

impl FileTable {
    /// New table over the given allocator geometry.
    pub fn new(file_slot: u64, array_capacity: u64) -> FileTable {
        assert!(file_slot > 0, "file slot must be nonzero");
        FileTable {
            files: Vec::new(),
            file_slot,
            array_capacity,
        }
    }

    /// Slots the allocator can hand out before exhausting the arrays.
    pub fn max_slots(&self) -> u64 {
        self.array_capacity / self.file_slot
    }

    /// Register a file, returning its id, or a typed
    /// [`IoFault::Unavailable`] when the fixed-slot allocator is exhausted —
    /// capacity exhaustion is an explicit failure, not a debug assertion.
    pub fn try_register(&mut self, spec: FileSpec) -> Result<u32, IoFault> {
        let id = self.files.len() as u32;
        if (id as u64) >= self.max_slots() {
            return Err(IoFault::Unavailable);
        }
        self.files.push(FileState::new(spec));
        Ok(id)
    }

    /// [`FileTable::try_register`], panicking on allocator exhaustion (the
    /// pre-run registration path, where exhaustion is a workload bug).
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        let slots = self.max_slots();
        self.try_register(spec)
            .unwrap_or_else(|_| panic!("file slot allocator exhausted ({slots} slots)"))
    }

    /// Node-local base offset of a file's allocator slot.
    pub fn slot_base(&self, file: u32) -> u64 {
        file as u64 * self.file_slot
    }

    /// Current length of a registered file.
    pub fn len_of(&self, file: u32) -> u64 {
        self.files[file as usize].len
    }

    /// Number of registered files.
    pub fn count(&self) -> usize {
        self.files.len()
    }

    /// Mutable runtime state of one file.
    pub fn state(&mut self, file: u32) -> &mut FileState {
        &mut self.files[file as usize]
    }

    /// Shared runtime state of one file.
    pub fn get(&self, file: u32) -> &FileState {
        &self.files[file as usize]
    }
}

/// Outcome of offering a metadata operation to the replicated server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaVerdict {
    /// Serialized on a live replica; completes at this time.
    Done(SimTime),
    /// Both replicas are down: the caller must park the RPC and retry with
    /// bounded backoff (surfacing `IoFault::Unavailable` on exhaustion).
    Outage,
}

/// Counters of the metadata fault machinery (all zero on a healthy run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// RPCs served by the buddy because the primary was down.
    pub failovers: u64,
    /// Parked RPC retries during a full outage.
    pub retries: u64,
    /// RPCs that exhausted their retries and surfaced
    /// `IoFault::Unavailable`.
    pub unavailable: u64,
}

/// The replicated metadata service: opens, creates, closes, and `lsize`
/// queue through the primary replica's next-free time, with a buddy replica
/// for failover. The chaos layer's `MetaStall`/`MetaCrash`/`MetaRecover`
/// fault events target replicas by index (0 = primary, 1 = buddy,
/// `paragon_sim::META_REPLICAS` total):
///
/// * a **stalled** replica serves nothing new until the stall expires —
///   queued RPCs complete late but never fail;
/// * a **crashed** primary fails RPCs over to the buddy (counted in
///   [`MetaStats::failovers`]);
/// * with **both replicas down** the verdict is [`MetaVerdict::Outage`] and
///   the backend parks the RPC with bounded retry.
///
/// Healthy-path bit-identity: with no meta fault events the buddy is never
/// consulted and [`MetaServer::try_op`] reduces exactly to the historical
/// single-queue serialization.
#[derive(Debug, Default)]
pub struct MetaServer {
    /// Next-free time per replica (index 0 = primary, 1 = buddy).
    free: [SimTime; 2],
    /// Crashed replicas.
    down: [bool; 2],
    /// No RPC starts on the replica before this time (transient stall).
    stalled_until: [SimTime; 2],
    stats: MetaStats,
}

impl MetaServer {
    /// New, idle server (both replicas healthy).
    pub fn new() -> MetaServer {
        MetaServer::default()
    }

    /// Serialize a metadata operation on the primary; returns its completion
    /// time. Panics during an outage — the legacy entry point for callers
    /// that predate the meta fault domain (tests, tools); fault-aware
    /// backends use [`MetaServer::try_op`].
    pub fn op(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        match self.try_op(now, cost) {
            MetaVerdict::Done(done) => done,
            MetaVerdict::Outage => panic!("metadata outage without a parking caller"),
        }
    }

    /// Offer a metadata operation: serialize it on the primary, fail over to
    /// the buddy when the primary is down, or report a full outage.
    pub fn try_op(&mut self, now: SimTime, cost: SimDuration) -> MetaVerdict {
        let replica = if !self.down[0] {
            0
        } else if !self.down[1] {
            self.stats.failovers += 1;
            1
        } else {
            return MetaVerdict::Outage;
        };
        let start = self.free[replica].max(now).max(self.stalled_until[replica]);
        let done = start + cost;
        self.free[replica] = done;
        MetaVerdict::Done(done)
    }

    /// Stall `replica`: nothing new starts on it before `now + for_dur`.
    pub fn stall(&mut self, now: SimTime, replica: u32, for_dur: SimDuration) {
        let s = &mut self.stalled_until[replica as usize];
        *s = (*s).max(now + for_dur);
    }

    /// Crash `replica`: it serves nothing until [`MetaServer::recover`].
    pub fn crash(&mut self, replica: u32) {
        self.down[replica as usize] = true;
    }

    /// Recover `replica`.
    pub fn recover(&mut self, replica: u32) {
        self.down[replica as usize] = false;
    }

    /// Whether both replicas are down (RPCs must park).
    pub fn outage(&self) -> bool {
        self.down[0] && self.down[1]
    }

    /// Count one parked-RPC retry attempt.
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Count one RPC that exhausted its retries during an outage.
    pub fn note_unavailable(&mut self) {
        self.stats.unavailable += 1;
    }

    /// Fault-machinery counters.
    pub fn stats(&self) -> MetaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_returns_unavailable_on_slot_exhaustion() {
        // 4096-byte arrays with 1024-byte slots: exactly 4 slots.
        let mut t = FileTable::new(1024, 4096);
        for i in 0..4 {
            assert_eq!(t.try_register(FileSpec::output(&format!("f{i}"))), Ok(i));
        }
        assert_eq!(
            t.try_register(FileSpec::output("overflow")),
            Err(IoFault::Unavailable)
        );
        // The failed registration did not corrupt the table.
        assert_eq!(t.count(), 4);
        assert_eq!(t.slot_base(3), 3 * 1024);
    }

    #[test]
    #[should_panic(expected = "slot allocator exhausted")]
    fn panicking_register_reports_slots() {
        let mut t = FileTable::new(1024, 1024);
        t.register(FileSpec::output("a"));
        t.register(FileSpec::output("b"));
    }

    #[test]
    fn meta_server_serializes() {
        let mut m = MetaServer::new();
        let c = SimDuration::from_millis(10);
        let d1 = m.op(SimTime::ZERO, c);
        let d2 = m.op(SimTime::ZERO, c);
        assert_eq!(d2, d1 + c);
        // An op arriving after the queue drains starts immediately.
        let later = d2 + SimDuration::from_millis(5);
        assert_eq!(m.op(later, c), later + c);
        // A healthy run never touches the buddy or the fault counters.
        assert_eq!(m.stats(), MetaStats::default());
    }

    #[test]
    fn meta_server_fails_over_and_reports_outage() {
        let mut m = MetaServer::new();
        let c = SimDuration::from_millis(10);
        // Prime the primary queue, then crash it: the buddy starts fresh.
        assert_eq!(m.try_op(SimTime::ZERO, c), MetaVerdict::Done(SimTime(c.0)));
        m.crash(0);
        assert_eq!(m.try_op(SimTime::ZERO, c), MetaVerdict::Done(SimTime(c.0)));
        assert_eq!(m.stats().failovers, 1);
        // Both down: outage until one recovers.
        m.crash(1);
        assert!(m.outage());
        assert_eq!(m.try_op(SimTime::ZERO, c), MetaVerdict::Outage);
        m.recover(0);
        assert!(!m.outage());
        // The recovered primary resumes from its own queue tail.
        assert_eq!(
            m.try_op(SimTime::ZERO, c),
            MetaVerdict::Done(SimTime(2 * c.0))
        );
    }

    #[test]
    fn meta_server_stall_defers_start_without_failing() {
        let mut m = MetaServer::new();
        let c = SimDuration::from_millis(10);
        let stall = SimDuration::from_millis(50);
        m.stall(SimTime::ZERO, 0, stall);
        // The RPC completes late — stall start + cost — but never fails.
        assert_eq!(
            m.try_op(SimTime::ZERO, c),
            MetaVerdict::Done(SimTime(stall.0 + c.0))
        );
        // Overlapping stalls extend, never shrink, the quiet window.
        m.stall(SimTime::ZERO, 0, SimDuration::from_millis(20));
        assert_eq!(
            m.try_op(SimTime::ZERO, c),
            MetaVerdict::Done(SimTime(stall.0 + 2 * c.0))
        );
    }

    #[test]
    #[should_panic(expected = "metadata outage")]
    fn legacy_op_panics_during_outage() {
        let mut m = MetaServer::new();
        m.crash(0);
        m.crash(1);
        m.op(SimTime::ZERO, SimDuration::from_millis(1));
    }
}

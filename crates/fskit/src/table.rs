//! File registry with the fixed-slot allocator, and the metadata server.

use crate::file::{FileSpec, FileState};
use paragon_sim::program::IoFault;
use paragon_sim::{SimDuration, SimTime};

/// The file registry both backends share: specs, runtime state, and the
/// fixed-slot per-I/O-node allocator (file `f`'s node-local space starts at
/// `f × file_slot`, bounded by the array capacity).
#[derive(Debug)]
pub struct FileTable {
    files: Vec<FileState>,
    file_slot: u64,
    array_capacity: u64,
}

impl FileTable {
    /// New table over the given allocator geometry.
    pub fn new(file_slot: u64, array_capacity: u64) -> FileTable {
        assert!(file_slot > 0, "file slot must be nonzero");
        FileTable {
            files: Vec::new(),
            file_slot,
            array_capacity,
        }
    }

    /// Slots the allocator can hand out before exhausting the arrays.
    pub fn max_slots(&self) -> u64 {
        self.array_capacity / self.file_slot
    }

    /// Register a file, returning its id, or a typed
    /// [`IoFault::Unavailable`] when the fixed-slot allocator is exhausted —
    /// capacity exhaustion is an explicit failure, not a debug assertion.
    pub fn try_register(&mut self, spec: FileSpec) -> Result<u32, IoFault> {
        let id = self.files.len() as u32;
        if (id as u64) >= self.max_slots() {
            return Err(IoFault::Unavailable);
        }
        self.files.push(FileState::new(spec));
        Ok(id)
    }

    /// [`FileTable::try_register`], panicking on allocator exhaustion (the
    /// pre-run registration path, where exhaustion is a workload bug).
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        let slots = self.max_slots();
        self.try_register(spec)
            .unwrap_or_else(|_| panic!("file slot allocator exhausted ({slots} slots)"))
    }

    /// Node-local base offset of a file's allocator slot.
    pub fn slot_base(&self, file: u32) -> u64 {
        file as u64 * self.file_slot
    }

    /// Current length of a registered file.
    pub fn len_of(&self, file: u32) -> u64 {
        self.files[file as usize].len
    }

    /// Number of registered files.
    pub fn count(&self) -> usize {
        self.files.len()
    }

    /// Mutable runtime state of one file.
    pub fn state(&mut self, file: u32) -> &mut FileState {
        &mut self.files[file as usize]
    }

    /// Shared runtime state of one file.
    pub fn get(&self, file: u32) -> &FileState {
        &self.files[file as usize]
    }
}

/// The single serialized metadata server: opens, creates, closes, and
/// `lsize` queue through one next-free time.
#[derive(Debug, Default)]
pub struct MetaServer {
    free: SimTime,
}

impl MetaServer {
    /// New, idle server.
    pub fn new() -> MetaServer {
        MetaServer::default()
    }

    /// Serialize a metadata operation; returns its completion time.
    pub fn op(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.free.max(now);
        let done = start + cost;
        self.free = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_returns_unavailable_on_slot_exhaustion() {
        // 4096-byte arrays with 1024-byte slots: exactly 4 slots.
        let mut t = FileTable::new(1024, 4096);
        for i in 0..4 {
            assert_eq!(t.try_register(FileSpec::output(&format!("f{i}"))), Ok(i));
        }
        assert_eq!(
            t.try_register(FileSpec::output("overflow")),
            Err(IoFault::Unavailable)
        );
        // The failed registration did not corrupt the table.
        assert_eq!(t.count(), 4);
        assert_eq!(t.slot_base(3), 3 * 1024);
    }

    #[test]
    #[should_panic(expected = "slot allocator exhausted")]
    fn panicking_register_reports_slots() {
        let mut t = FileTable::new(1024, 1024);
        t.register(FileSpec::output("a"));
        t.register(FileSpec::output("b"));
    }

    #[test]
    fn meta_server_serializes() {
        let mut m = MetaServer::new();
        let c = SimDuration::from_millis(10);
        let d1 = m.op(SimTime::ZERO, c);
        let d2 = m.op(SimTime::ZERO, c);
        assert_eq!(d2, d1 + c);
        // An op arriving after the queue drains starts immediately.
        let later = d2 + SimDuration::from_millis(5);
        assert_eq!(m.op(later, c), later + c);
    }
}

//! The six PFS parallel access modes (§3.2 of the paper).
//!
//! | mode       | file pointer | ordering            | request size |
//! |------------|--------------|---------------------|--------------|
//! | `M_UNIX`   | per node     | unrestricted        | variable     |
//! | `M_LOG`    | shared       | first-come-first-serve | variable  |
//! | `M_SYNC`   | shared       | node-number order   | variable     |
//! | `M_RECORD` | per node     | first-come-first-serve | fixed     |
//! | `M_GLOBAL` | shared       | all nodes, same data | variable    |
//! | `M_ASYNC`  | per node     | unrestricted, no atomicity | variable |
//!
//! The mode determines how `sio-pfs` resolves the offset of a pointer-based
//! read/write and what coordination cost the operation pays. The paper's
//! discussion sections hinge on these semantics: ESCAT chose `M_UNIX` +
//! computed seeks over `M_RECORD` so each node's data stays contiguous
//! (§5.2); RENDER avoided `M_RECORD` because it forces all nodes to
//! participate (§6.2).

use serde::{Deserialize, Serialize};

/// A PFS parallel file access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u32)]
pub enum AccessMode {
    /// Independent file pointer per node; no coordination.
    MUnix = 0,
    /// Shared file pointer; accesses first-come-first-serve; variable size.
    MLog = 1,
    /// Shared file pointer; accesses proceed in node-number order.
    MSync = 2,
    /// Independent pointers; fixed-size records laid out in node-order
    /// groups ("for N nodes, the file consists of groups of N records, with
    /// each group written in node order").
    MRecord = 3,
    /// Shared pointer; all nodes perform the same operation on the same
    /// data: one physical I/O plus an internal broadcast.
    MGlobal = 4,
    /// Independent pointers; unrestricted and variable size; atomicity not
    /// preserved. The cheapest mode.
    MAsync = 5,
}

impl AccessMode {
    /// All modes, in the paper's listing order.
    pub const ALL: [AccessMode; 6] = [
        AccessMode::MUnix,
        AccessMode::MLog,
        AccessMode::MSync,
        AccessMode::MRecord,
        AccessMode::MGlobal,
        AccessMode::MAsync,
    ];

    /// Whether all opening nodes share one file pointer.
    pub fn shared_pointer(self) -> bool {
        matches!(
            self,
            AccessMode::MLog | AccessMode::MSync | AccessMode::MGlobal
        )
    }

    /// Whether accesses must be fixed-size records.
    pub fn fixed_records(self) -> bool {
        self == AccessMode::MRecord
    }

    /// Whether an access is a collective over all openers (one physical I/O).
    pub fn collective(self) -> bool {
        self == AccessMode::MGlobal
    }

    /// Whether accesses must proceed in node-number order.
    pub fn node_ordered(self) -> bool {
        self == AccessMode::MSync
    }

    /// Mode code carried in [`paragon_sim::IoRequest::hint`] at open.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Decode a mode code.
    pub fn from_code(code: u32) -> Option<AccessMode> {
        AccessMode::ALL.into_iter().find(|m| m.code() == code)
    }

    /// PFS-style name.
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::MUnix => "M_UNIX",
            AccessMode::MLog => "M_LOG",
            AccessMode::MSync => "M_SYNC",
            AccessMode::MRecord => "M_RECORD",
            AccessMode::MGlobal => "M_GLOBAL",
            AccessMode::MAsync => "M_ASYNC",
        }
    }
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for m in AccessMode::ALL {
            assert_eq!(AccessMode::from_code(m.code()), Some(m));
        }
        assert_eq!(AccessMode::from_code(99), None);
    }

    #[test]
    fn semantics_match_paper_table() {
        use AccessMode::*;
        // Shared pointers: M_LOG, M_SYNC, M_GLOBAL.
        assert!(!MUnix.shared_pointer());
        assert!(MLog.shared_pointer());
        assert!(MSync.shared_pointer());
        assert!(!MRecord.shared_pointer());
        assert!(MGlobal.shared_pointer());
        assert!(!MAsync.shared_pointer());
        // Fixed records only in M_RECORD.
        assert!(MRecord.fixed_records());
        assert!(!MLog.fixed_records());
        // Node order only in M_SYNC; collective only in M_GLOBAL.
        assert!(MSync.node_ordered());
        assert!(!MLog.node_ordered());
        assert!(MGlobal.collective());
        assert!(!MSync.collective());
    }

    #[test]
    fn names() {
        assert_eq!(AccessMode::MUnix.to_string(), "M_UNIX");
        assert_eq!(AccessMode::MRecord.to_string(), "M_RECORD");
    }
}

//! File registration and runtime state.
//!
//! Files are registered with the file system before the run (the simulator
//! has no path namespace — applications refer to files by id, matching the
//! file-identifier axis of the paper's file-access timelines). A
//! [`FileSpec`] describes the file's provenance: pre-existing input files
//! carry an initial size; output files start empty and pay a creation cost
//! on first open.

use crate::mode::AccessMode;
use paragon_sim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Static description of a registered file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileSpec {
    /// Human-readable name (reports only).
    pub name: String,
    /// Initial length; nonzero for pre-existing input data sets.
    pub initial_len: u64,
    /// Whether the file exists before the run (true ⇒ first open is a plain
    /// open; false ⇒ first open pays the creation cost).
    pub exists: bool,
}

impl FileSpec {
    /// A pre-existing input file of the given length.
    pub fn input(name: &str, len: u64) -> FileSpec {
        FileSpec {
            name: name.to_string(),
            initial_len: len,
            exists: true,
        }
    }

    /// An output file created by the application.
    pub fn output(name: &str) -> FileSpec {
        FileSpec {
            name: name.to_string(),
            initial_len: 0,
            exists: false,
        }
    }
}

/// Runtime state of one file.
#[derive(Debug)]
pub struct FileState {
    /// Static spec.
    pub spec: FileSpec,
    /// Current length.
    pub len: u64,
    /// Whether creation has happened (first open of a non-existing file).
    pub created: bool,
    /// Access mode fixed by the current open wave (`None` when closed
    /// everywhere).
    pub mode: Option<AccessMode>,
    /// Nodes currently holding the file open, with their open order.
    pub openers: BTreeMap<NodeId, ()>,
    /// Per-node file pointers (independent-pointer modes).
    pub pos: BTreeMap<NodeId, u64>,
    /// Shared file pointer (shared-pointer modes).
    pub shared_pos: u64,
    /// Next-free time of the shared-pointer token (M_LOG serialization).
    pub token_free: SimTime,
    /// Fixed record size (M_RECORD), locked by the first data access.
    pub record_size: Option<u64>,
    /// Per-node operation counters (M_RECORD record indexing).
    pub op_count: BTreeMap<NodeId, u64>,
    /// Participant snapshot for ordered/collective modes (sorted node ids),
    /// taken at the first data access after an open wave.
    pub participants: Option<Vec<NodeId>>,
    /// M_SYNC: index into `participants` whose turn is next.
    pub turn: u64,
}

impl FileState {
    /// Fresh state from a spec.
    pub fn new(spec: FileSpec) -> FileState {
        let len = spec.initial_len;
        FileState {
            spec,
            len,
            created: false,
            mode: None,
            openers: BTreeMap::new(),
            pos: BTreeMap::new(),
            shared_pos: 0,
            token_free: SimTime::ZERO,
            record_size: None,
            op_count: BTreeMap::new(),
            participants: None,
            turn: 0,
        }
    }

    /// Record an open by `node` with `mode`. Returns whether this open must
    /// pay the creation cost.
    pub fn open(&mut self, node: NodeId, mode: AccessMode) -> bool {
        let create = !self.spec.exists && !self.created;
        self.created |= create;
        match self.mode {
            None => self.mode = Some(mode),
            Some(m) => assert_eq!(
                m, mode,
                "file {} opened with conflicting modes {m} vs {mode}",
                self.spec.name
            ),
        }
        self.openers.insert(node, ());
        self.pos.entry(node).or_insert(0);
        create
    }

    /// Record a close by `node`. When the last opener leaves, pointer state
    /// resets so the file can be reopened in a different mode (ESCAT's
    /// staging files are written with M_UNIX and reread with M_RECORD).
    pub fn close(&mut self, node: NodeId) {
        self.openers.remove(&node);
        if self.openers.is_empty() {
            self.mode = None;
            self.pos.clear();
            self.shared_pos = 0;
            self.record_size = None;
            self.op_count.clear();
            self.participants = None;
            self.turn = 0;
        }
    }

    /// Number of nodes currently holding the file open.
    pub fn opener_count(&self) -> usize {
        self.openers.len()
    }

    /// Snapshot participants (sorted openers) if not yet snapshotted, and
    /// return them.
    pub fn participants(&mut self) -> &[NodeId] {
        if self.participants.is_none() {
            self.participants = Some(self.openers.keys().copied().collect());
        }
        self.participants.as_deref().unwrap()
    }

    /// Rank of a node among the participants.
    pub fn rank_of(&mut self, node: NodeId) -> u64 {
        let parts = self.participants();
        parts
            .iter()
            .position(|&n| n == node)
            .unwrap_or_else(|| panic!("node {node} not a participant of {}", self.spec.name))
            as u64
    }

    /// Extend length after a write ending at `end`.
    pub fn extend_to(&mut self, end: u64) {
        self.len = self.len.max(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_only_on_first_open_of_output() {
        let mut f = FileState::new(FileSpec::output("out"));
        assert!(f.open(0, AccessMode::MUnix));
        assert!(!f.open(1, AccessMode::MUnix));
        let mut g = FileState::new(FileSpec::input("in", 100));
        assert!(!g.open(0, AccessMode::MUnix));
        assert_eq!(g.len, 100);
    }

    #[test]
    #[should_panic(expected = "conflicting modes")]
    fn conflicting_modes_panic() {
        let mut f = FileState::new(FileSpec::output("out"));
        f.open(0, AccessMode::MUnix);
        f.open(1, AccessMode::MLog);
    }

    #[test]
    fn reopen_after_full_close_allows_new_mode() {
        let mut f = FileState::new(FileSpec::output("staging"));
        f.open(0, AccessMode::MUnix);
        f.extend_to(1000);
        f.close(0);
        assert_eq!(f.opener_count(), 0);
        // Data persists; pointer state reset; new mode accepted.
        f.open(0, AccessMode::MRecord);
        assert_eq!(f.len, 1000);
        assert_eq!(f.mode, Some(AccessMode::MRecord));
        // Reopening does not pay creation again.
        let mut g = FileState::new(FileSpec::output("o"));
        assert!(g.open(0, AccessMode::MUnix));
        g.close(0);
        assert!(!g.open(0, AccessMode::MUnix));
    }

    #[test]
    fn participants_snapshot_and_rank() {
        let mut f = FileState::new(FileSpec::output("s"));
        f.open(5, AccessMode::MRecord);
        f.open(2, AccessMode::MRecord);
        f.open(9, AccessMode::MRecord);
        assert_eq!(f.participants(), &[2, 5, 9]);
        assert_eq!(f.rank_of(2), 0);
        assert_eq!(f.rank_of(5), 1);
        assert_eq!(f.rank_of(9), 2);
        // Snapshot is stable even if another node opens later.
        f.open(1, AccessMode::MRecord);
        assert_eq!(f.participants(), &[2, 5, 9]);
    }

    #[test]
    fn extend_only_grows() {
        let mut f = FileState::new(FileSpec::input("i", 50));
        f.extend_to(10);
        assert_eq!(f.len, 50);
        f.extend_to(99);
        assert_eq!(f.len, 99);
    }
}

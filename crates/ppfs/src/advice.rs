//! Per-file policy advice.
//!
//! PPFS "allows users to advertize expected file access patterns and to
//! choose file distribution, caching, and prefetch policies" (§10). This
//! module is that interface: a [`FileAdvice`] overrides pieces of the
//! global [`PolicyConfig`] for one file, and [`advise_for_pattern`] derives
//! the advice automatically from a classified access pattern — "to lessen
//! the cognitive burden of access specification".

use crate::policy::{Eviction, PolicyConfig, PrefetchPolicy};
use serde::{Deserialize, Serialize};
use sio_core::classify::AccessPattern;

/// Per-file overrides of the global policy (unset fields inherit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FileAdvice {
    /// Override the prefetch policy for this file.
    pub prefetch: Option<PrefetchPolicy>,
    /// Override write-behind for this file.
    pub write_behind: Option<bool>,
    /// Override flush aggregation for this file.
    pub aggregation: Option<bool>,
    /// Override the eviction policy for blocks of this file. (Applied at
    /// stream granularity: the per-node caches are shared across files, so
    /// this biases only the prefetcher's assumptions, not eviction of other
    /// files' blocks.)
    pub eviction: Option<Eviction>,
}

impl FileAdvice {
    /// Advice for a file that will be scanned sequentially.
    pub fn sequential() -> FileAdvice {
        FileAdvice {
            prefetch: Some(PrefetchPolicy::Readahead { depth: 8 }),
            ..FileAdvice::default()
        }
    }

    /// Advice for a scratch/staging file: absorb writes, aggregate flushes.
    pub fn staging() -> FileAdvice {
        FileAdvice {
            write_behind: Some(true),
            aggregation: Some(true),
            ..FileAdvice::default()
        }
    }

    /// Advice for randomly accessed files: no prefetch, no buffering games.
    pub fn random() -> FileAdvice {
        FileAdvice {
            prefetch: Some(PrefetchPolicy::None),
            write_behind: Some(false),
            ..FileAdvice::default()
        }
    }

    /// Resolve this advice against a base policy.
    pub fn apply(&self, base: &PolicyConfig) -> PolicyConfig {
        PolicyConfig {
            prefetch: self.prefetch.unwrap_or(base.prefetch),
            write_behind: self.write_behind.unwrap_or(base.write_behind),
            aggregation: self.aggregation.unwrap_or(base.aggregation),
            eviction: self.eviction.unwrap_or(base.eviction),
            ..*base
        }
    }
}

/// Derive advice from an observed/expected access pattern — the automatic
/// classification the paper's conclusions call for.
pub fn advise_for_pattern(pattern: AccessPattern, write_heavy: bool) -> FileAdvice {
    let mut advice = match pattern {
        AccessPattern::Sequential => FileAdvice::sequential(),
        AccessPattern::Strided { .. } => FileAdvice {
            prefetch: Some(PrefetchPolicy::Adaptive { depth: 4 }),
            ..FileAdvice::default()
        },
        AccessPattern::Cyclic { .. } => FileAdvice {
            prefetch: Some(PrefetchPolicy::Readahead { depth: 4 }),
            // Cyclic scans larger than the cache want MRU retention.
            eviction: Some(Eviction::Mru),
            ..FileAdvice::default()
        },
        AccessPattern::Random => FileAdvice::random(),
        AccessPattern::Unknown => FileAdvice::default(),
    };
    if write_heavy {
        advice.write_behind = Some(true);
        advice.aggregation = Some(true);
    }
    advice
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_overrides_only_set_fields() {
        let base = PolicyConfig::write_through();
        let advice = FileAdvice {
            prefetch: Some(PrefetchPolicy::Readahead { depth: 2 }),
            ..FileAdvice::default()
        };
        let resolved = advice.apply(&base);
        assert_eq!(resolved.prefetch, PrefetchPolicy::Readahead { depth: 2 });
        assert_eq!(resolved.write_behind, base.write_behind);
        assert_eq!(resolved.cache_blocks, base.cache_blocks);
    }

    #[test]
    fn presets() {
        assert!(matches!(
            FileAdvice::sequential().prefetch,
            Some(PrefetchPolicy::Readahead { .. })
        ));
        let staging = FileAdvice::staging();
        assert_eq!(staging.write_behind, Some(true));
        assert_eq!(staging.aggregation, Some(true));
        assert_eq!(FileAdvice::random().prefetch, Some(PrefetchPolicy::None));
    }

    #[test]
    fn pattern_advice_matches_policy_matrix_findings() {
        use AccessPattern::*;
        // Sequential: prefetch on. Random: everything off. Cyclic: MRU.
        assert!(advise_for_pattern(Sequential, false).prefetch.is_some());
        assert_eq!(
            advise_for_pattern(Random, false).prefetch,
            Some(PrefetchPolicy::None)
        );
        assert_eq!(
            advise_for_pattern(Cyclic { period: 100 }, false).eviction,
            Some(Eviction::Mru)
        );
        // Write-heavy ESCAT staging: write-behind + aggregation regardless
        // of read pattern.
        let escat = advise_for_pattern(Strided { stride: 131_072 }, true);
        assert_eq!(escat.write_behind, Some(true));
        assert_eq!(escat.aggregation, Some(true));
    }
}

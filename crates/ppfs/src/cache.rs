//! Block cache with pluggable eviction.
//!
//! One cache per compute node, shared across that node's files. A block is
//! keyed by (file, block index) and is either *present* or *in flight*
//! (fetch issued, arriving at a known time). In-flight blocks are pinned:
//! they cannot be evicted until they arrive, because readers may already be
//! counting on them.
//!
//! LRU/MRU eviction is O(log n) via a recency-ordered index (ticks are
//! unique, so the index is a total order); random eviction draws from a
//! dense key vector. Pinned (in-flight) blocks are skipped during victim
//! search.

use crate::policy::Eviction;
use paragon_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Cache block key: (file id, block index).
pub type BlockKey = (u32, u64);

/// State of a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Data present in the cache.
    Present,
    /// Fetch outstanding; data arrives at the given time.
    InFlight(SimTime),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    state: BlockState,
    last_use: u64,
}

/// A fixed-capacity block cache.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    eviction: Eviction,
    entries: HashMap<BlockKey, Entry>,
    /// Recency index: tick -> key (ticks are unique).
    order: BTreeMap<u64, BlockKey>,
    tick: u64,
    rng: StdRng,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BlockCache {
    /// New cache with the given capacity in blocks.
    pub fn new(capacity: u32, eviction: Eviction, seed: u64) -> BlockCache {
        assert!(capacity > 0, "cache needs at least one block");
        BlockCache {
            capacity: capacity as usize,
            eviction,
            entries: HashMap::with_capacity(capacity as usize + 1),
            order: BTreeMap::new(),
            tick: 0,
            rng: StdRng::seed_from_u64(seed),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: BlockKey) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            self.order.remove(&e.last_use);
            e.last_use = self.tick;
            self.order.insert(self.tick, key);
        }
    }

    /// Look up a block, counting hit/miss statistics and refreshing
    /// recency. In-flight blocks count as hits (the fetch is already paid
    /// for).
    pub fn lookup(&mut self, key: BlockKey) -> Option<BlockState> {
        let state = self.entries.get(&key).map(|e| e.state);
        match state {
            Some(s) => {
                self.hits += 1;
                self.touch(key);
                Some(s)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without statistics or recency update.
    pub fn peek(&self, key: BlockKey) -> Option<BlockState> {
        self.entries.get(&key).map(|e| e.state)
    }

    /// Insert a block (evicting if full). In-flight blocks are pinned and
    /// never chosen for eviction.
    pub fn insert(&mut self, key: BlockKey, state: BlockState) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict_one();
        }
        let tick = self.tick;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                state,
                last_use: tick,
            },
        ) {
            self.order.remove(&old.last_use);
        }
        self.order.insert(tick, key);
    }

    /// Mark an in-flight block as arrived.
    pub fn mark_present(&mut self, key: BlockKey) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.state = BlockState::Present;
        }
    }

    fn evict_one(&mut self) {
        let victim: Option<BlockKey> = match self.eviction {
            Eviction::Lru => self
                .order
                .values()
                .copied()
                .find(|k| self.entries[k].state == BlockState::Present),
            Eviction::Mru => self
                .order
                .values()
                .rev()
                .copied()
                .find(|k| self.entries[k].state == BlockState::Present),
            Eviction::Random => {
                // Draw a few candidates from the order index; fall back to a
                // scan if unlucky with pinned blocks.
                let keys: Vec<BlockKey> = self
                    .order
                    .values()
                    .copied()
                    .filter(|k| self.entries[k].state == BlockState::Present)
                    .collect();
                if keys.is_empty() {
                    None
                } else {
                    Some(keys[self.rng.random_range(0..keys.len())])
                }
            }
        };
        if let Some(k) = victim {
            if let Some(e) = self.entries.remove(&k) {
                self.order.remove(&e.last_use);
            }
            self.evictions += 1;
        }
        // If everything is pinned in flight, the cache transiently exceeds
        // capacity; this is bounded by the prefetch depth.
    }

    /// Blocks currently tracked (present + in flight).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: u32, ev: Eviction) -> BlockCache {
        BlockCache::new(cap, ev, 42)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = cache(4, Eviction::Lru);
        assert_eq!(c.lookup((0, 0)), None);
        c.insert((0, 0), BlockState::Present);
        assert_eq!(c.lookup((0, 0)), Some(BlockState::Present));
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(2, Eviction::Lru);
        c.insert((0, 1), BlockState::Present);
        c.insert((0, 2), BlockState::Present);
        c.lookup((0, 1)); // refresh block 1
        c.insert((0, 3), BlockState::Present); // evicts block 2
        assert!(c.peek((0, 1)).is_some());
        assert!(c.peek((0, 2)).is_none());
        assert!(c.peek((0, 3)).is_some());
    }

    #[test]
    fn mru_evicts_most_recent() {
        let mut c = cache(2, Eviction::Mru);
        c.insert((0, 1), BlockState::Present);
        c.insert((0, 2), BlockState::Present);
        c.lookup((0, 1));
        c.insert((0, 3), BlockState::Present); // evicts block 1 (most recent)
        assert!(c.peek((0, 1)).is_none());
        assert!(c.peek((0, 2)).is_some());
    }

    #[test]
    fn mru_wins_on_cyclic_scans_larger_than_cache() {
        // Scan blocks 0..10 cyclically with an 8-block cache: LRU always
        // evicts the block about to be reused; MRU retains a stable prefix.
        let run = |ev: Eviction| {
            let mut c = cache(8, ev);
            let mut hits = 0;
            for _pass in 0..5 {
                for b in 0..10u64 {
                    if c.lookup((0, b)).is_some() {
                        hits += 1;
                    } else {
                        c.insert((0, b), BlockState::Present);
                    }
                }
            }
            hits
        };
        assert!(run(Eviction::Mru) > run(Eviction::Lru));
    }

    #[test]
    fn inflight_blocks_are_pinned() {
        let mut c = cache(2, Eviction::Lru);
        c.insert((0, 1), BlockState::InFlight(SimTime(100)));
        c.insert((0, 2), BlockState::InFlight(SimTime(100)));
        // Nothing evictable: insert still succeeds (transient overflow).
        c.insert((0, 3), BlockState::Present);
        assert_eq!(c.len(), 3);
        assert!(c.peek((0, 1)).is_some());
        c.mark_present((0, 1));
        c.insert((0, 4), BlockState::Present); // now block 1 or 3 can go
        let (_, _, ev) = c.stats();
        assert!(ev >= 1);
    }

    #[test]
    fn mark_present_transitions_state() {
        let mut c = cache(2, Eviction::Lru);
        c.insert((7, 9), BlockState::InFlight(SimTime(5)));
        c.mark_present((7, 9));
        assert_eq!(c.peek((7, 9)), Some(BlockState::Present));
        // marking a missing block is a no-op
        c.mark_present((9, 9));
        assert!(c.peek((9, 9)).is_none());
    }

    #[test]
    fn random_eviction_stays_within_capacity() {
        let mut c = cache(8, Eviction::Random);
        for b in 0..100u64 {
            c.insert((0, b), BlockState::Present);
        }
        assert!(c.len() <= 8);
    }

    #[test]
    fn reinsert_same_key_does_not_grow_or_corrupt_order() {
        let mut c = cache(4, Eviction::Lru);
        for _ in 0..10 {
            c.insert((0, 1), BlockState::Present);
        }
        assert_eq!(c.len(), 1);
        // Index and entries stay consistent under heavy churn.
        for b in 0..100u64 {
            c.insert((0, b % 6), BlockState::Present);
            if let Some(s) = c.lookup((0, b % 3)) {
                assert_eq!(s, BlockState::Present);
            }
        }
        assert!(c.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_panics() {
        let _ = cache(0, Eviction::Lru);
    }
}

//! Readahead and adaptive prefetching.
//!
//! One [`StreamPrefetcher`] tracks one (node, file) access stream. After
//! every application read it suggests extents to fetch in the background.
//! The adaptive variant implements the paper's closing direction (§10):
//! "general, adaptive prefetching methods that can learn to hide
//! input/output latency by automatically classifying and predicting access
//! patterns" — classification comes from [`sio_core::classify`], prediction
//! from [`sio_core::predict`].

use crate::policy::PrefetchPolicy;
use crate::write_behind::Extent;
use sio_core::classify::{AccessPattern, PatternClassifier};
use sio_core::predict::{LastStridePredictor, Predictor};

/// Per-stream prefetch state.
#[derive(Debug)]
pub struct StreamPrefetcher {
    policy: PrefetchPolicy,
    block_size: u64,
    classifier: PatternClassifier,
    stride: LastStridePredictor,
}

impl StreamPrefetcher {
    /// New prefetcher for one access stream.
    pub fn new(policy: PrefetchPolicy, block_size: u64) -> StreamPrefetcher {
        assert!(block_size > 0, "block size must be nonzero");
        StreamPrefetcher {
            policy,
            block_size,
            classifier: PatternClassifier::new(),
            stride: LastStridePredictor::new(),
        }
    }

    /// The classification of the stream so far (adaptive policy only keeps
    /// this meaningful; exposed for reports and tests).
    pub fn pattern(&self) -> AccessPattern {
        self.classifier.classify()
    }

    /// Observe a completed application read and return extents worth
    /// prefetching (the caller filters out already-cached blocks).
    pub fn on_access(&mut self, offset: u64, len: u64) -> Vec<Extent> {
        self.classifier.observe(offset, len);
        self.stride.observe(offset, len);
        match self.policy {
            PrefetchPolicy::None => Vec::new(),
            PrefetchPolicy::Readahead { depth } => self.readahead(offset + len, depth),
            PrefetchPolicy::Adaptive { depth } => match self.classifier.classify() {
                AccessPattern::Sequential | AccessPattern::Cyclic { .. } => {
                    self.readahead(offset + len, depth)
                }
                AccessPattern::Strided { stride } => self.strided(offset, len, stride, depth),
                AccessPattern::Random | AccessPattern::Unknown => Vec::new(),
            },
        }
    }

    fn readahead(&self, from: u64, depth: u32) -> Vec<Extent> {
        let first = from.div_ceil(self.block_size);
        (0..depth as u64)
            .map(|k| Extent {
                offset: (first + k) * self.block_size,
                bytes: self.block_size,
            })
            .collect()
    }

    fn strided(&self, offset: u64, len: u64, stride: i64, depth: u32) -> Vec<Extent> {
        let mut out = Vec::with_capacity(depth as usize);
        let mut pos = offset as i64;
        for _ in 0..depth {
            pos += stride;
            if pos < 0 {
                break;
            }
            out.push(Extent {
                offset: pos as u64,
                bytes: len,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: u64 = 64 * 1024;

    #[test]
    fn none_suggests_nothing() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::None, BS);
        for i in 0..10u64 {
            assert!(p.on_access(i * BS, BS).is_empty());
        }
    }

    #[test]
    fn readahead_suggests_next_blocks() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::Readahead { depth: 3 }, BS);
        let suggestions = p.on_access(0, BS);
        assert_eq!(
            suggestions,
            vec![
                Extent {
                    offset: BS,
                    bytes: BS
                },
                Extent {
                    offset: 2 * BS,
                    bytes: BS
                },
                Extent {
                    offset: 3 * BS,
                    bytes: BS
                },
            ]
        );
    }

    #[test]
    fn readahead_aligns_up_for_unaligned_access() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::Readahead { depth: 1 }, BS);
        let s = p.on_access(100, 50); // next block boundary after 150 is BS
        assert_eq!(
            s,
            vec![Extent {
                offset: BS,
                bytes: BS
            }]
        );
    }

    #[test]
    fn adaptive_waits_for_classification() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::Adaptive { depth: 2 }, BS);
        // Before warmup: Unknown -> nothing.
        assert!(p.on_access(0, BS).is_empty());
        assert!(p.on_access(BS, BS).is_empty());
        // Warmup reached (two sequential transitions): readahead engages.
        let s = p.on_access(2 * BS, BS);
        assert_eq!(p.pattern(), AccessPattern::Sequential);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].offset, 3 * BS);
    }

    #[test]
    fn adaptive_predicts_strides() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::Adaptive { depth: 2 }, BS);
        let stride = 10 * BS;
        let mut last = Vec::new();
        for k in 0..8u64 {
            last = p.on_access(k * stride, 2048);
        }
        assert!(matches!(p.pattern(), AccessPattern::Strided { .. }));
        assert_eq!(
            last,
            vec![
                Extent {
                    offset: 8 * stride,
                    bytes: 2048
                },
                Extent {
                    offset: 9 * stride,
                    bytes: 2048
                },
            ]
        );
    }

    #[test]
    fn adaptive_stays_quiet_on_random() {
        let mut p = StreamPrefetcher::new(PrefetchPolicy::Adaptive { depth: 4 }, BS);
        let offsets = [90u64, 13, 77, 41, 5, 63, 29, 99, 3, 55];
        let mut total = 0;
        for &o in &offsets {
            total += p.on_access(o * BS + o, 512).len();
        }
        assert_eq!(p.pattern(), AccessPattern::Random);
        assert_eq!(total, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_size_panics() {
        let _ = StreamPrefetcher::new(PrefetchPolicy::None, 0);
    }
}

//! The PPFS model: a policy-driven [`IoService`] over the same I/O-node
//! substrate as `sio-pfs`.
//!
//! Differences from PFS, all policy-driven and all directly comparable on
//! identical workloads:
//!
//! * **client-side pointers** — seeks are a local bookkeeping update, never
//!   a metadata RPC;
//! * **block cache** per node with configurable eviction; reads are served
//!   block-wise, hitting the cache, joining in-flight fetches, or fetching;
//! * **prefetching** — fixed readahead or adaptive (classification-driven)
//!   background fetches;
//! * **write-behind + aggregation** — writes complete into a dirty buffer
//!   that drains in the background as few large sequential requests (§5.2's
//!   policy pair).
//!
//! The shared mechanics — file registry, stripe segment pump with
//! stripe-pinned retry/replay, fault delivery, `Sync` parking, and interval
//! tracing — live in `sio-fskit`; this module is the PPFS policy layer
//! (caching, prefetch, write-behind, transfer routing) on top.
//!
//! Tracing matches PFS: the application-visible interval of every call is
//! recorded, so the paper's tables can be regenerated for either file
//! system and compared (DESIGN.md experiment X1).

use crate::advice::FileAdvice;
use crate::cache::{BlockCache, BlockState};
use crate::policy::PolicyConfig;
use crate::prefetch::StreamPrefetcher;
use crate::write_behind::{DirtyBuffer, Extent};
use paragon_sim::calibration::FaultParams;
use paragon_sim::engine::{IoService, Sched};
use paragon_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use paragon_sim::program::{IoFault, IoRequest, IoResult, IoToken, IoVerb};

use paragon_sim::{MachineConfig, NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::hash::{FastMap, FastSet};
use sio_core::trace::{Trace, TraceSink};
use sio_fskit::client::ClientPath;
use sio_fskit::config::FsConfig;
use sio_fskit::fault::FaultRouter;
use sio_fskit::file::FileSpec;
use sio_fskit::lanes::TimerLanes;
use sio_fskit::mode::AccessMode;
use sio_fskit::pump::{backoff_delay, FailoverPolicy, NodeLoad, NodeTick, SegmentPump};
use sio_fskit::recorder::TraceRecorder;
use sio_fskit::sync::{SyncLedger, SyncWaiter};
use sio_fskit::table::{FileTable, MetaServer, MetaStats, MetaVerdict};

/// Running statistics of a PPFS instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PpfsStats {
    /// Application reads served entirely from cache.
    pub reads_hit: u64,
    /// Application reads that had to fetch at least one block.
    pub reads_missed: u64,
    /// Blocks fetched on behalf of prefetch suggestions.
    pub prefetched_blocks: u64,
    /// Application writes absorbed by the write-behind buffer.
    pub writes_buffered: u64,
    /// Extents written back by flushes.
    pub flush_extents: u64,
    /// Bytes written back by flushes.
    pub flushed_bytes: u64,
    /// Stripe segments submitted to I/O nodes (all causes).
    pub segments: u64,
    /// Blocks served from an I/O-node server cache (two-level buffering).
    pub server_hits: u64,
    /// Blocks that had to go to disk despite the server cache.
    pub server_misses: u64,
    /// Write-behind bytes that were in flight or queued at an I/O node when
    /// it crashed (exposure of buffered dirty data to failures).
    pub dirty_bytes_lost: u64,
    /// Segments resubmitted after a crashed node recovered (replay-based
    /// recovery of lost write-behind data).
    pub replayed_segments: u64,
    /// Segments completed by an array that had lost redundancy (a second
    /// member failure): the returned data could not be reconstructed.
    pub data_loss_segments: u64,
    /// The subset of `dirty_bytes_lost` on files covered by a durable
    /// checkpoint ([`Ppfs::mark_checkpoint_covered`]): data the application
    /// can regenerate by restarting from its last committed epoch, as
    /// opposed to genuinely lost work.
    pub dirty_bytes_lost_checkpointed: u64,
}

#[derive(Debug)]
enum Transfer {
    /// Block fetch into `node`'s cache (demand or prefetch).
    Fetch {
        node: NodeId,
        file: u32,
        blocks: Vec<u64>,
        segs_left: u32,
    },
    /// Application write-through (write-behind disabled).
    AppWrite {
        token: IoToken,
        node: NodeId,
        file: u32,
        offset: u64,
        bytes: u64,
        issued: SimTime,
        segs_left: u32,
    },
    /// Background write-back of dirty extents.
    Flush { file: u32, segs_left: u32 },
    /// Burst-log drain extent: a background write owned by the log tier
    /// (synthetic token, no application-visible trace event).
    Drain {
        token: IoToken,
        node: NodeId,
        file: u32,
        bytes: u64,
        issued: SimTime,
        segs_left: u32,
    },
}

#[derive(Debug)]
struct ReadPending {
    token: IoToken,
    node: NodeId,
    file: u32,
    offset: u64,
    bytes: u64,
    issued: SimTime,
    is_async: bool,
    blocks_left: u32,
}

/// A metadata RPC parked by a full metadata outage, awaiting a backoff
/// retry probe.
#[derive(Debug, Clone, Copy)]
struct ParkedMeta {
    token: IoToken,
    node: NodeId,
    file: u32,
    op: IoOp,
    cost: SimDuration,
    /// Result bytes on success (file length for `Lsize`, 0 otherwise).
    bytes: u64,
    issued: SimTime,
    /// Retry probes already made.
    attempt: u32,
}

/// The PPFS file system.
pub struct Ppfs {
    cfg: FsConfig,
    policy: PolicyConfig,
    /// Shared segment pump, stripe-pinned: a down node parks segments for
    /// replay, a full queue retries forever with capped backoff.
    pump: SegmentPump,
    files: FileTable,
    recorder: TraceRecorder,
    meta: MetaServer,
    seed: u64,
    caches: FastMap<NodeId, BlockCache>,
    prefetchers: FastMap<(NodeId, u32), StreamPrefetcher>,
    dirty: FastMap<(NodeId, u32), DirtyBuffer>,
    transfers: FastMap<u64, Transfer>,
    next_transfer: u64,
    reads: FastMap<u64, ReadPending>,
    next_read: u64,
    /// (node, file, block) -> read ids waiting for the block.
    block_waiters: FastMap<(NodeId, u32, u64), Vec<u64>>,
    flush_timer_armed: bool,
    stats: PpfsStats,
    /// Per-node serial client copy path (shared model with PFS).
    client: ClientPath,
    /// Per-I/O-node server caches (empty when disabled).
    server_caches: Vec<BlockCache>,
    /// Pending server-cache hit deliveries: timer id -> (node, file, blocks).
    fetch_hits: FastMap<u64, (NodeId, u32, Vec<u64>)>,
    /// Timer-id lanes: per-I/O-node completion timers, the reserved flush
    /// timer, then the dynamic lane (server hits, faults, retries).
    timers: TimerLanes,
    /// Per-file policy advice (paper §10: advertised access patterns).
    advice: FastMap<u32, FileAdvice>,
    /// Scheduled fault delivery (armed at run start; empty on healthy runs).
    faults: FaultRouter,
    /// Fault-handling calibration (meta-RPC backoff and retry budget).
    fault_params: FaultParams,
    /// Metadata RPCs parked by a full outage (timer id -> parked RPC).
    parked_meta: FastMap<u64, ParkedMeta>,
    /// `Sync` commits parked until their file's write-back traffic lands.
    syncs: SyncLedger,
    /// Files whose contents are reconstructible from a durable checkpoint
    /// (splits the dirty-loss accounting into checkpointed vs lost work).
    checkpoint_covered: FastSet<u32>,
}

impl Ppfs {
    /// Build a PPFS over the machine with the given policy, tracing into
    /// `sink` (owned; take the frozen trace back with [`Ppfs::finish_trace`]
    /// after the run).
    pub fn new(machine: &MachineConfig, policy: PolicyConfig, sink: TraceSink) -> Ppfs {
        Ppfs::with_faults(machine, policy, sink, FaultSchedule::new())
    }

    /// Build a PPFS with an injected fault schedule. An empty schedule is
    /// exactly [`Ppfs::new`]: no fault timers are armed and the run is
    /// bit-identical to a healthy one.
    pub fn with_faults(
        machine: &MachineConfig,
        policy: PolicyConfig,
        sink: TraceSink,
        schedule: FaultSchedule,
    ) -> Ppfs {
        let ionodes = machine.build_io_nodes();
        let faults = FaultRouter::new(schedule, ionodes.len());
        let server_caches: Vec<BlockCache> = if policy.server_cache_blocks > 0 {
            (0..ionodes.len())
                .map(|i| {
                    BlockCache::new(
                        policy.server_cache_blocks,
                        policy.eviction,
                        machine.seed ^ (0xA5A5_0000 + i as u64),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let timers = TimerLanes::with_reserved(ionodes.len(), 1);
        let cfg = FsConfig::from_machine(machine);
        Ppfs {
            policy,
            pump: SegmentPump::new(
                ionodes,
                FailoverPolicy::StripePinned,
                machine.fault.retry_base,
            ),
            files: FileTable::new(cfg.file_slot, cfg.array_capacity),
            recorder: TraceRecorder::new(sink),
            meta: MetaServer::new(),
            seed: machine.seed,
            caches: FastMap::default(),
            prefetchers: FastMap::default(),
            dirty: FastMap::default(),
            transfers: FastMap::default(),
            next_transfer: 0,
            reads: FastMap::default(),
            next_read: 0,
            block_waiters: FastMap::default(),
            flush_timer_armed: false,
            stats: PpfsStats::default(),
            client: ClientPath::new(),
            server_caches,
            fetch_hits: FastMap::default(),
            timers,
            advice: FastMap::default(),
            faults,
            fault_params: machine.fault,
            parked_meta: FastMap::default(),
            syncs: SyncLedger::new(),
            checkpoint_covered: FastSet::default(),
            cfg,
        }
    }

    /// Declare `file` reconstructible from a durable checkpoint: dirty
    /// write-behind bytes of this file lost to a node crash are counted in
    /// `dirty_bytes_lost_checkpointed` as well as the `dirty_bytes_lost`
    /// total.
    pub fn mark_checkpoint_covered(&mut self, file: u32) {
        self.checkpoint_covered.insert(file);
    }

    /// Advertise expected access behavior for one file (paper §10). The
    /// advice overrides the matching pieces of the global policy for that
    /// file only.
    pub fn advise(&mut self, file: u32, advice: FileAdvice) {
        self.advice.insert(file, advice);
    }

    /// The effective policy for one file (global policy with any advice
    /// applied).
    pub fn policy_for(&self, file: u32) -> PolicyConfig {
        match self.advice.get(&file) {
            Some(a) => a.apply(&self.policy),
            None => self.policy,
        }
    }

    /// Register a file; returns its id.
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        self.files.register(spec)
    }

    /// Register a file, returning a typed [`IoFault::Unavailable`] when the
    /// fixed-slot allocator is exhausted.
    pub fn try_register(&mut self, spec: FileSpec) -> Result<u32, IoFault> {
        self.files.try_register(spec)
    }

    /// Running statistics (backend counters merged with the shared pump's).
    pub fn stats(&self) -> PpfsStats {
        let mut s = self.stats;
        let p = self.pump.stats();
        s.segments += p.segments;
        s.replayed_segments += p.replayed;
        s
    }

    /// Rebuild chunks completed across all I/O nodes.
    pub fn rebuild_chunks_total(&self) -> u64 {
        self.pump.rebuild_chunks_total()
    }

    /// Member bytes rebuilt across all I/O nodes.
    pub fn rebuilt_bytes_total(&self) -> u64 {
        self.pump.rebuilt_bytes_total()
    }

    /// I/O nodes whose arrays are still degraded.
    pub fn degraded_nodes(&self) -> u32 {
        self.pump.degraded_nodes()
    }

    /// Accepted-request accounting per I/O node.
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.pump.node_loads()
    }

    /// Whether any accepted write was lost to exhausted redundancy.
    pub fn any_data_lost(&self) -> bool {
        self.pump.any_data_lost()
    }

    /// Accept one coalesced burst-log drain extent as a background write
    /// through the stripe-pinned pump (capped backoff, park/replay on
    /// crash). The caller owns `token`; no application event is traced.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        self.files.state(file).extend_to(offset + bytes);
        let tid = self.next_transfer;
        self.next_transfer += 1;
        let segs = self.submit_extent(now, tid, file, offset, bytes, true, sched);
        if segs == 0 {
            // Degenerate extent: nothing staged, complete immediately.
            sched.complete_io(
                token,
                now,
                IoResult {
                    bytes,
                    queued: SimDuration::ZERO,
                    service: SimDuration::ZERO,
                    fault: None,
                },
            );
            return;
        }
        self.transfers.insert(
            tid,
            Transfer::Drain {
                token,
                node,
                file,
                bytes,
                issued: now,
                segs_left: segs,
            },
        );
    }

    /// Current length of a file.
    pub fn file_len(&self, file: u32) -> u64 {
        self.files.len_of(file)
    }

    /// Metadata fault-machinery counters (all zero on a healthy run).
    pub fn meta_stats(&self) -> MetaStats {
        self.meta.stats()
    }

    /// The pattern the adaptive prefetcher has inferred for a stream, if the
    /// stream exists.
    pub fn inferred_pattern(
        &self,
        node: NodeId,
        file: u32,
    ) -> Option<sio_core::classify::AccessPattern> {
        self.prefetchers.get(&(node, file)).map(|p| p.pattern())
    }

    fn timer_flush_id(&self) -> u64 {
        self.pump.len() as u64
    }

    fn record(&mut self, ev: IoEvent) {
        self.recorder.record(ev);
    }

    /// Mutable access to the trace sink (e.g. to set run metadata).
    pub fn sink_mut(&mut self) -> &mut TraceSink {
        self.recorder.sink_mut()
    }

    /// Consume the file system, freezing its captured trace.
    pub fn finish_trace(self) -> Trace {
        self.recorder.finish()
    }

    fn cache_for(&mut self, node: NodeId) -> &mut BlockCache {
        let policy = self.policy;
        let seed = self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node as u64 + 1));
        self.caches
            .entry(node)
            .or_insert_with(|| BlockCache::new(policy.cache_blocks, policy.eviction, seed))
    }

    /// Submit the stripe segments of `[offset, offset+bytes)` of `file` to
    /// the I/O nodes, owned by transfer `tid`. Returns the segment count.
    #[allow(clippy::too_many_arguments)]
    fn submit_extent(
        &mut self,
        now: SimTime,
        tid: u64,
        file: u32,
        offset: u64,
        bytes: u64,
        write: bool,
        sched: &mut Sched,
    ) -> u32 {
        self.pump.submit_extent(
            now,
            &self.cfg.layout,
            self.files.slot_base(file),
            offset,
            bytes,
            write,
            tid,
            &mut self.timers,
            sched,
        )
    }

    /// Apply one scheduled fault event.
    fn apply_fault(&mut self, now: SimTime, ev: FaultEvent, sched: &mut Sched) {
        match ev.kind {
            FaultKind::DiskFail { disk } => {
                self.pump.apply_disk_fail(ev.io_node, disk);
            }
            FaultKind::DiskRepair => self.pump.apply_disk_repair(now, ev.io_node, sched),
            FaultKind::NodeStall { for_dur } => {
                self.pump.apply_stall(now, ev.io_node, for_dur, sched)
            }
            FaultKind::NodeCrash => {
                // In-service and queued segments are lost. Flush segments
                // carry write-behind data whose application writes already
                // completed — that is the dirty-data exposure the X4 suite
                // measures. Everything is parked for replay on recovery.
                for req in self.pump.crash(ev.io_node) {
                    if let Some(tid) = self.pump.owner_of(req.id) {
                        if let Some(Transfer::Flush { file, .. }) = self.transfers.get(&tid) {
                            self.stats.dirty_bytes_lost += req.bytes;
                            if self.checkpoint_covered.contains(file) {
                                self.stats.dirty_bytes_lost_checkpointed += req.bytes;
                            }
                        }
                        self.pump.park_replay(ev.io_node, req);
                    }
                }
            }
            FaultKind::NodeRecover => {
                self.pump.recover(now, ev.io_node, sched);
                self.pump
                    .resubmit_replays(now, ev.io_node, &mut self.timers, sched);
            }
            // PPFS has no mesh-collective phase, so a degraded link region
            // is felt entirely as stretched segment delivery into the
            // region's I/O node (the bandwidth divisor); the latency
            // multiplier has no separate PPFS-visible term.
            FaultKind::LinkDegrade { bw_div, .. } => {
                self.pump.apply_link_degrade(ev.io_node, bw_div);
            }
            FaultKind::LinkHeal => self.pump.apply_link_heal(ev.io_node),
            FaultKind::MetaStall { for_dur } => self.meta.stall(now, ev.io_node, for_dur),
            FaultKind::MetaCrash => self.meta.crash(ev.io_node),
            FaultKind::MetaRecover => self.meta.recover(ev.io_node),
        }
    }

    /// Serve a metadata RPC through the replicated server, parking it with
    /// bounded backoff retries when both replicas are down. A healthy run
    /// never parks, so this is bit-identical to the historical direct path.
    #[allow(clippy::too_many_arguments)]
    fn meta_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        op: IoOp,
        cost: SimDuration,
        bytes: u64,
        sched: &mut Sched,
    ) {
        match self.meta.try_op(now, cost) {
            MetaVerdict::Done(done) => {
                self.recorder
                    .complete_op(sched, token, node, file, op, now, done, None, bytes);
            }
            MetaVerdict::Outage => {
                let parked = ParkedMeta {
                    token,
                    node,
                    file,
                    op,
                    cost,
                    bytes,
                    issued: now,
                    attempt: 0,
                };
                self.park_meta(now, parked, sched);
            }
        }
    }

    /// Arm one backoff retry probe for a parked metadata RPC.
    fn park_meta(&mut self, now: SimTime, parked: ParkedMeta, sched: &mut Sched) {
        self.meta.note_retry();
        let id = self.timers.alloc();
        self.parked_meta.insert(id, parked);
        sched.timer(
            now + backoff_delay(self.fault_params.retry_base, parked.attempt),
            id,
        );
    }

    /// A parked metadata RPC's retry timer fired: re-probe the replicas,
    /// park again while the retry budget lasts, then surface the outage as
    /// a typed [`IoFault::Unavailable`] — never hang.
    fn retry_meta(&mut self, now: SimTime, mut parked: ParkedMeta, sched: &mut Sched) {
        match self.meta.try_op(now, parked.cost) {
            MetaVerdict::Done(done) => {
                self.recorder.complete_op(
                    sched,
                    parked.token,
                    parked.node,
                    parked.file,
                    parked.op,
                    parked.issued,
                    done,
                    None,
                    parked.bytes,
                );
            }
            MetaVerdict::Outage => {
                if parked.attempt < self.fault_params.max_retries {
                    parked.attempt += 1;
                    self.park_meta(now, parked, sched);
                } else {
                    self.meta.note_unavailable();
                    self.recorder.fail_op(
                        sched,
                        parked.token,
                        parked.node,
                        parked.file,
                        parked.op,
                        parked.issued,
                        now,
                        IoFault::Unavailable,
                    );
                }
            }
        }
    }

    /// I/O node owning a file block (block start decides for blocks that
    /// straddle stripe units).
    fn block_owner(&self, block: u64) -> usize {
        self.cfg.layout.io_node_of(block * self.policy.block_size) as usize
    }

    /// Fetch a run of blocks of `file` into `node`'s cache. Blocks resident
    /// in a server cache are satisfied at server latency without touching
    /// the disk queue (two-level buffering, §8).
    fn fetch_blocks(
        &mut self,
        now: SimTime,
        node: NodeId,
        file: u32,
        blocks: Vec<u64>,
        prefetch: bool,
        sched: &mut Sched,
    ) {
        debug_assert!(!blocks.is_empty());
        let bs = self.policy.block_size;
        // Mark everything in flight first.
        for &b in &blocks {
            self.cache_for(node)
                .insert((file, b), BlockState::InFlight(now));
        }
        if prefetch {
            self.stats.prefetched_blocks += blocks.len() as u64;
        }
        // Split into server-cache hits and disk blocks.
        let mut disk_blocks: Vec<u64> = Vec::new();
        let mut hit_blocks: Vec<u64> = Vec::new();
        if self.server_caches.is_empty() {
            disk_blocks = blocks;
        } else {
            for b in blocks {
                let owner = self.block_owner(b);
                if self.server_caches[owner].lookup((file, b)).is_some() {
                    hit_blocks.push(b);
                } else {
                    disk_blocks.push(b);
                }
            }
        }
        if !hit_blocks.is_empty() {
            self.stats.server_hits += hit_blocks.len() as u64;
            let timer = self.timers.alloc();
            let at = now + self.cfg.io_sw.server_per_request;
            self.fetch_hits.insert(timer, (node, file, hit_blocks));
            sched.timer(at, timer);
        }
        if disk_blocks.is_empty() {
            return;
        }
        self.stats.server_misses += disk_blocks.len() as u64;
        // Fetch contiguous disk runs; server-cache filtering may have
        // fragmented the original run.
        let mut run: Vec<u64> = Vec::new();
        let submit_run = |this: &mut Ppfs, run: Vec<u64>, sched: &mut Sched| {
            if run.is_empty() {
                return;
            }
            let offset = run[0] * bs;
            let bytes = run.len() as u64 * bs;
            let tid = this.next_transfer;
            this.next_transfer += 1;
            let segs = this.submit_extent(now, tid, file, offset, bytes, false, sched);
            this.transfers.insert(
                tid,
                Transfer::Fetch {
                    node,
                    file,
                    blocks: run,
                    segs_left: segs,
                },
            );
        };
        for b in disk_blocks {
            if run.last().is_some_and(|&p| p + 1 != b) {
                let r = std::mem::take(&mut run);
                submit_run(self, r, sched);
            }
            run.push(b);
        }
        submit_run(self, run, sched);
    }

    /// Blocks arrived for `node`: mark present (client + server caches) and
    /// complete any reads that were waiting on them.
    fn complete_blocks(
        &mut self,
        now: SimTime,
        node: NodeId,
        file: u32,
        blocks: Vec<u64>,
        install_server: bool,
        sched: &mut Sched,
    ) {
        let hit_cost = SimDuration::from_secs_f64(self.policy.hit_cost_secs);
        for b in blocks {
            self.cache_for(node).mark_present((file, b));
            if install_server && !self.server_caches.is_empty() {
                let owner = self.block_owner(b);
                self.server_caches[owner].insert((file, b), BlockState::Present);
            }
            let Some(waiters) = self.block_waiters.remove(&(node, file, b)) else {
                continue;
            };
            for rid in waiters {
                let ready = {
                    let Some(r) = self.reads.get_mut(&rid) else {
                        continue;
                    };
                    r.blocks_left -= 1;
                    r.blocks_left == 0
                };
                if ready {
                    let r = self.reads.remove(&rid).unwrap();
                    let rate = self.cfg.io_sw.client_byte_rate;
                    let done = self.client.copy_done(r.node, now + hit_cost, r.bytes, rate);
                    if !r.is_async {
                        self.record(
                            IoEvent::new(r.node, r.file, IoOp::Read)
                                .span(r.issued.nanos(), done.nanos())
                                .extent(r.offset, r.bytes),
                        );
                    }
                    sched.complete_io(
                        r.token,
                        done,
                        IoResult {
                            bytes: r.bytes,
                            queued: SimDuration::ZERO,
                            service: done.since(r.issued),
                            fault: None,
                        },
                    );
                }
            }
        }
    }

    /// Flush one (node, file) dirty buffer to the I/O nodes.
    fn flush_dirty(&mut self, now: SimTime, node: NodeId, file: u32, sched: &mut Sched) {
        let Some(buf) = self.dirty.get_mut(&(node, file)) else {
            return;
        };
        if buf.is_empty() {
            return;
        }
        let aggregation = self.policy_for(file).aggregation;
        let extents = {
            let buf = self.dirty.get_mut(&(node, file)).unwrap();
            buf.drain(aggregation, self.policy.block_size)
        };
        for Extent { offset, bytes } in extents {
            let tid = self.next_transfer;
            self.next_transfer += 1;
            let segs = self.submit_extent(now, tid, file, offset, bytes, true, sched);
            self.transfers.insert(
                tid,
                Transfer::Flush {
                    file,
                    segs_left: segs,
                },
            );
            self.stats.flush_extents += 1;
            self.stats.flushed_bytes += bytes;
        }
    }

    fn flush_all(&mut self, now: SimTime, sched: &mut Sched) {
        // Sorted, not map order: with several dirty buffers the flush order
        // decides segment submission order, and map order varies per
        // process (seeded `RandomState`), which would break bit-for-bit
        // reproducibility.
        let mut keys: Vec<(NodeId, u32)> = self
            .dirty
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        for (node, file) in keys {
            self.flush_dirty(now, node, file, sched);
        }
    }

    fn arm_flush_timer(&mut self, now: SimTime, sched: &mut Sched) {
        if !self.flush_timer_armed && self.policy.write_behind {
            self.flush_timer_armed = true;
            let at = now + SimDuration::from_secs_f64(self.policy.flush_interval_secs);
            sched.timer(at, self.timer_flush_id());
        }
    }

    /// Handle an application read.
    #[allow(clippy::too_many_arguments)]
    fn read_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        offset: u64,
        bytes: u64,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let eff = bytes.min(self.files.len_of(file).saturating_sub(offset));
        let hit_cost = SimDuration::from_secs_f64(self.policy.hit_cost_secs);
        let rate = self.cfg.io_sw.client_byte_rate;
        if eff == 0 {
            let done = now + hit_cost;
            if !is_async {
                self.record(
                    IoEvent::new(node, file, IoOp::Read)
                        .span(now.nanos(), done.nanos())
                        .extent(offset, 0),
                );
            }
            sched.complete_io(
                token,
                done,
                IoResult {
                    bytes: 0,
                    queued: SimDuration::ZERO,
                    service: hit_cost,
                    fault: None,
                },
            );
            return;
        }
        let bs = self.policy.block_size;
        let first = offset / bs;
        let last = (offset + eff - 1) / bs;
        let mut missing: Vec<u64> = Vec::new();
        let mut waiting: Vec<u64> = Vec::new();
        for b in first..=last {
            match self.cache_for(node).lookup((file, b)) {
                Some(BlockState::Present) => {}
                Some(BlockState::InFlight(_)) => waiting.push(b),
                None => missing.push(b),
            }
        }
        let read_id = self.next_read;
        self.next_read += 1;
        let blocks_left = (missing.len() + waiting.len()) as u32;
        if blocks_left == 0 {
            self.stats.reads_hit += 1;
            let done = self.client.copy_done(node, now + hit_cost, eff, rate);
            if !is_async {
                self.record(
                    IoEvent::new(node, file, IoOp::Read)
                        .span(now.nanos(), done.nanos())
                        .extent(offset, eff),
                );
            }
            sched.complete_io(
                token,
                done,
                IoResult {
                    bytes: eff,
                    queued: SimDuration::ZERO,
                    service: done.since(now),
                    fault: None,
                },
            );
        } else {
            self.stats.reads_missed += 1;
            for &b in waiting.iter().chain(missing.iter()) {
                self.block_waiters
                    .entry((node, file, b))
                    .or_default()
                    .push(read_id);
            }
            // Fetch contiguous runs of missing blocks together.
            let mut run: Vec<u64> = Vec::new();
            for &b in &missing {
                if run.last().is_some_and(|&p| p + 1 != b) {
                    let r = std::mem::take(&mut run);
                    self.fetch_blocks(now, node, file, r, false, sched);
                }
                run.push(b);
            }
            if !run.is_empty() {
                self.fetch_blocks(now, node, file, run, false, sched);
            }
            self.reads.insert(
                read_id,
                ReadPending {
                    token,
                    node,
                    file,
                    offset,
                    bytes: eff,
                    issued: now,
                    is_async,
                    blocks_left,
                },
            );
        }
        // Prefetch suggestions, bounded by the file length. The prefetch
        // policy may be overridden per file by advice.
        let suggestions = {
            let policy = self.policy_for(file).prefetch;
            let pf = self
                .prefetchers
                .entry((node, file))
                .or_insert_with(|| StreamPrefetcher::new(policy, bs));
            pf.on_access(offset, eff)
        };
        let file_len = self.files.len_of(file);
        for ext in suggestions {
            if ext.offset >= file_len {
                continue;
            }
            let pf_first = ext.offset / bs;
            let pf_last = (ext.offset + ext.bytes - 1).min(file_len - 1) / bs;
            let mut run: Vec<u64> = Vec::new();
            for b in pf_first..=pf_last {
                if self.cache_for(node).peek((file, b)).is_none() {
                    if run.last().is_some_and(|&p| p + 1 != b) {
                        let r = std::mem::take(&mut run);
                        self.fetch_blocks(now, node, file, r, true, sched);
                    }
                    run.push(b);
                }
            }
            if !run.is_empty() {
                self.fetch_blocks(now, node, file, run, true, sched);
            }
        }
    }

    /// Handle an application write.
    #[allow(clippy::too_many_arguments)]
    fn write_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        offset: u64,
        bytes: u64,
        sched: &mut Sched,
    ) {
        self.files.state(file).extend_to(offset + bytes);
        let rate = self.cfg.io_sw.client_byte_rate;
        if self.policy_for(file).write_behind {
            // Complete into the dirty buffer at copy cost.
            let ready = now + SimDuration::from_secs_f64(self.policy.hit_cost_secs);
            let done = self.client.copy_done(node, ready, bytes, rate);
            self.record(
                IoEvent::new(node, file, IoOp::Write)
                    .span(now.nanos(), done.nanos())
                    .extent(offset, bytes),
            );
            sched.complete_io(
                token,
                done,
                IoResult {
                    bytes,
                    queued: SimDuration::ZERO,
                    service: done.since(now),
                    fault: None,
                },
            );
            self.dirty
                .entry((node, file))
                .or_default()
                .add(offset, bytes);
            self.stats.writes_buffered += 1;
            if self.dirty[&(node, file)].bytes() >= self.policy.high_water_bytes {
                self.flush_dirty(now, node, file, sched);
            }
            self.arm_flush_timer(now, sched);
        } else {
            let tid = self.next_transfer;
            self.next_transfer += 1;
            let segs = self.submit_extent(now, tid, file, offset, bytes, true, sched);
            self.transfers.insert(
                tid,
                Transfer::AppWrite {
                    token,
                    node,
                    file,
                    offset,
                    bytes,
                    issued: now,
                    segs_left: segs,
                },
            );
        }
        // Writes invalidate any cached copy of the blocks they touch.
        let bs = self.policy.block_size;
        if bytes > 0 {
            for b in offset / bs..=(offset + bytes - 1) / bs {
                // Re-inserting as Present models write-allocate caching.
                self.cache_for(node).insert((file, b), BlockState::Present);
                // The write passes through the owning server: write-allocate
                // there too (two-level buffering).
                if !self.server_caches.is_empty() {
                    let owner = self.block_owner(b);
                    self.server_caches[owner].insert((file, b), BlockState::Present);
                }
            }
        }
    }

    fn transfer_done(&mut self, now: SimTime, tid: u64, sched: &mut Sched) {
        let finished = {
            let t = self.transfers.get_mut(&tid).expect("unknown transfer");
            let left = match t {
                Transfer::Fetch { segs_left, .. }
                | Transfer::AppWrite { segs_left, .. }
                | Transfer::Flush { segs_left, .. }
                | Transfer::Drain { segs_left, .. } => segs_left,
            };
            *left -= 1;
            *left == 0
        };
        if !finished {
            return;
        }
        match self.transfers.remove(&tid).unwrap() {
            Transfer::Fetch {
                node, file, blocks, ..
            } => {
                self.complete_blocks(now, node, file, blocks, true, sched);
            }
            Transfer::AppWrite {
                token,
                node,
                file,
                offset,
                bytes,
                issued,
                ..
            } => {
                let rate = self.cfg.io_sw.client_byte_rate;
                let done = self.client.copy_done(node, now, bytes, rate);
                self.record(
                    IoEvent::new(node, file, IoOp::Write)
                        .span(issued.nanos(), done.nanos())
                        .extent(offset, bytes),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes,
                        queued: SimDuration::ZERO,
                        service: done.since(issued),
                        fault: None,
                    },
                );
                self.drain_sync_waiters(file, now, sched);
            }
            Transfer::Flush { file, .. } => {
                self.drain_sync_waiters(file, now, sched);
            }
            Transfer::Drain {
                token,
                node,
                file,
                bytes,
                issued,
                ..
            } => {
                let rate = self.cfg.io_sw.client_byte_rate;
                let done = self.client.copy_done(node, now, bytes, rate);
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes,
                        queued: SimDuration::ZERO,
                        service: done.since(issued),
                        fault: None,
                    },
                );
                self.drain_sync_waiters(file, now, sched);
            }
        }
    }

    /// Whether `file` still has write-back traffic in flight: flush
    /// transfers (including segments parked at a crashed node awaiting
    /// replay — parked dirty data is *not* durable) or write-through
    /// application writes.
    fn has_outstanding_writes(&self, file: u32) -> bool {
        self.transfers.values().any(|t| {
            matches!(t,
                Transfer::Flush { file: f, .. }
                | Transfer::AppWrite { file: f, .. }
                | Transfer::Drain { file: f, .. }
                    if *f == file)
        })
    }

    /// Acknowledge a commit: the software flush cost, plus a typed
    /// `DataLoss` fault if any array holding the file's stripes has
    /// exhausted its redundancy.
    fn complete_sync(
        &mut self,
        token: IoToken,
        node: NodeId,
        file: u32,
        now: SimTime,
        issued: SimTime,
        sched: &mut Sched,
    ) {
        let fault = if self.pump.any_data_lost() {
            Some(IoFault::DataLoss)
        } else {
            None
        };
        self.recorder.complete_commit(
            sched,
            token,
            node,
            file,
            issued,
            now,
            self.cfg.io_sw.flush,
            fault,
        );
    }

    /// Release every `Sync` waiter on `file` once its last write-back
    /// transfer has landed on the arrays.
    fn drain_sync_waiters(&mut self, file: u32, now: SimTime, sched: &mut Sched) {
        if self.syncs.is_empty() || self.has_outstanding_writes(file) {
            return;
        }
        for w in self.syncs.take_for(file) {
            self.complete_sync(w.token, w.node, w.file, now, w.issued, sched);
        }
    }
}

impl IoService for Ppfs {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        match req.verb {
            IoVerb::Open => {
                let mode = AccessMode::from_code(req.hint).unwrap_or(AccessMode::MUnix);
                let create = self.files.state(req.file).open(node, mode);
                let cost = if create {
                    self.cfg.io_sw.create
                } else {
                    self.cfg.io_sw.open
                };
                self.meta_op(now, token, node, req.file, IoOp::Open, cost, 0, sched);
            }
            IoVerb::Close => {
                self.flush_dirty(now, node, req.file, sched);
                self.files.state(req.file).close(node);
                let cost = self.cfg.io_sw.close;
                self.meta_op(now, token, node, req.file, IoOp::Close, cost, 0, sched);
            }
            IoVerb::Seek => {
                // Client-managed pointers: always local, always cheap.
                let target = req.offset.expect("seek needs an offset");
                let pos = self.files.state(req.file).pos.entry(node).or_insert(0);
                let distance = pos.abs_diff(target);
                *pos = target;
                let done = now + SimDuration::from_micros(200);
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Seek,
                    now,
                    done,
                    Some((target, distance)),
                    0,
                );
            }
            IoVerb::Flush => {
                self.flush_dirty(now, node, req.file, sched);
                let done = now + self.cfg.io_sw.flush;
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Flush,
                    now,
                    done,
                    None,
                    0,
                );
            }
            IoVerb::Sync => {
                // Commit: push every node's dirty write-behind data for
                // this file to the I/O nodes, then acknowledge only once
                // all of the file's write-back traffic (flushes and
                // write-through writes, including crash-parked segments
                // awaiting replay) has landed on the arrays. This is the
                // durability gap `Flush` leaves open — a flush returns at
                // software cost while its extents are still in flight.
                // Traced as Forflush (the paper has no separate commit row).
                let mut keys: Vec<(NodeId, u32)> = self
                    .dirty
                    .iter()
                    .filter(|((_, f), b)| *f == req.file && !b.is_empty())
                    .map(|(k, _)| *k)
                    .collect();
                keys.sort_unstable();
                for (n, f) in keys {
                    self.flush_dirty(now, n, f, sched);
                }
                if self.has_outstanding_writes(req.file) {
                    self.syncs.park(SyncWaiter {
                        token,
                        node,
                        file: req.file,
                        issued: now,
                    });
                } else {
                    self.complete_sync(token, node, req.file, now, now, sched);
                }
            }
            IoVerb::Lsize => {
                let cost = self.cfg.io_sw.lsize;
                let len = self.file_len(req.file);
                self.meta_op(now, token, node, req.file, IoOp::Lsize, cost, len, sched);
            }
            IoVerb::Read | IoVerb::Write => {
                let pos = self.files.state(req.file).pos.entry(node).or_insert(0);
                let offset = req.offset.unwrap_or(*pos);
                *pos = offset + req.bytes;
                if is_async {
                    let issue_end = now + self.cfg.io_sw.async_issue;
                    self.record(
                        IoEvent::new(node, req.file, IoOp::AsyncRead)
                            .span(now.nanos(), issue_end.nanos())
                            .extent(offset, req.bytes),
                    );
                }
                if req.verb == IoVerb::Read {
                    self.read_op(
                        now, token, node, req.file, offset, req.bytes, is_async, sched,
                    );
                } else {
                    self.write_op(now, token, node, req.file, offset, req.bytes, sched);
                }
            }
        }
    }

    fn on_start(&mut self, sched: &mut Sched) {
        // Arm one absolute-time timer per scheduled fault event. Empty
        // schedule (the healthy case): no timers, bit-identical runs.
        self.faults.arm_all(&mut self.timers, sched);
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        if self.timers.is_node_timer(timer) {
            // An I/O node finished its in-service work. Stale timers happen
            // only under faults (a stall postponed the completion, or a
            // crash voided it): the re-armed timer covers the real time.
            match self.pump.node_tick(now, timer, sched) {
                NodeTick::Stale => {
                    debug_assert!(
                        self.faults.enabled(),
                        "stale i/o-node timer on a healthy run"
                    );
                }
                // Background rebuild traffic: no transfer to advance.
                NodeTick::Rebuild => {}
                NodeTick::Orphan => panic!("segment with no owner"),
                NodeTick::Seg {
                    owner: tid,
                    data_lost,
                } => {
                    if data_lost {
                        self.stats.data_loss_segments += 1;
                    }
                    self.transfer_done(now, tid, sched);
                }
            }
        } else if timer == self.timer_flush_id() {
            self.flush_timer_armed = false;
            self.flush_all(now, sched);
            // Re-arm while dirty data may still arrive (cheap: only when
            // something was flushed or remains buffered).
            if self.dirty.values().any(|b| !b.is_empty()) {
                self.arm_flush_timer(now, sched);
            }
        } else if let Some(ev) = self.faults.take(timer) {
            self.apply_fault(now, ev, sched);
        } else if let Some(r) = self.pump.take_retry(timer) {
            // Retry only while the owning transfer is still alive.
            if self.pump.owns(r.req.id) {
                let gave_up =
                    self.pump
                        .submit_seg(now, r.io, r.req, r.attempt, &mut self.timers, sched);
                debug_assert!(gave_up.is_none(), "stripe-pinned retry cannot give up");
            }
        } else if let Some((node, file, blocks)) = self.fetch_hits.remove(&timer) {
            // Server-cache hit delivery: no server install (they came from
            // there).
            self.complete_blocks(now, node, file, blocks, false, sched);
        } else if let Some(parked) = self.parked_meta.remove(&timer) {
            self.retry_meta(now, parked, sched);
        } else {
            panic!("unknown timer {timer}");
        }
    }

    fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
        self.cfg.io_sw.async_issue
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.recorder.iowait(node, file, wait_start, wait_end);
    }

    fn on_run_end(&mut self, _now: SimTime) {
        // Account (but no longer time) any data still buffered: it would
        // reach disk during program teardown. Today this only accumulates
        // sums (order-independent), but drain in sorted order anyway so a
        // future per-extent effect cannot inherit map iteration order.
        let mut remaining: Vec<(NodeId, u32)> = self.dirty.keys().copied().collect();
        remaining.sort_unstable();
        for key in remaining {
            let aggregation = self.policy_for(key.1).aggregation;
            let block_size = self.policy.block_size;
            let buf = self.dirty.get_mut(&key).unwrap();
            if !buf.is_empty() {
                let extents = buf.drain(aggregation, block_size);
                for e in &extents {
                    self.stats.flushed_bytes += e.bytes;
                }
                self.stats.flush_extents += extents.len() as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Eviction;
    use paragon_sim::mesh::Mesh;
    use paragon_sim::program::{NodeProgram, ScriptOp, ScriptProgram};
    use paragon_sim::time::transfer_time;
    use paragon_sim::Engine;
    use sio_core::trace::Trace;

    fn machine() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn open(file: u32) -> ScriptOp {
        ScriptOp::Io(IoRequest::open(file, AccessMode::MUnix.code()))
    }

    fn run(
        m: &MachineConfig,
        policy: PolicyConfig,
        files: Vec<FileSpec>,
        scripts: Vec<Vec<ScriptOp>>,
    ) -> (Trace, PpfsStats) {
        let mut fs = Ppfs::new(m, policy, TraceSink::new("ppfs-test"));
        for f in files {
            fs.register(f);
        }
        let programs: Vec<Box<dyn NodeProgram>> = scripts
            .into_iter()
            .map(|s| Box::new(ScriptProgram::new(s)) as Box<dyn NodeProgram>)
            .collect();
        let mut engine = Engine::new(
            Mesh::for_nodes(m.compute_nodes, m.io_nodes),
            m.comm,
            programs,
            fs,
        );
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean(), "blocked: {:?}", report.blocked);
        let mut fs = engine.into_service();
        let stats = fs.stats();
        fs.sink_mut()
            .set_run_info(m.compute_nodes, report.wall.nanos());
        (fs.finish_trace(), stats)
    }

    #[test]
    fn cached_reread_is_fast() {
        let script = vec![
            open(0),
            ScriptOp::Io(IoRequest::read(0, 65536)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 65536)),
        ];
        let (trace, stats) = run(
            &machine(),
            PolicyConfig::write_through(),
            vec![FileSpec::input("in", 1 << 20)],
            vec![script],
        );
        let durs: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.duration()).collect();
        assert_eq!(durs.len(), 2);
        // The cached reread pays only hit cost + client copy (~6.4 ms at the
        // calibrated 10.5 MB/s copy rate); the first read adds disk + queue.
        assert!(durs[1] * 4 < durs[0], "reread not cached: {durs:?}");
        let copy_ns = transfer_time(65536, 10.5e6).nanos();
        assert!(
            durs[1] < copy_ns * 2,
            "reread slower than copy bound: {durs:?}"
        );
        assert_eq!(stats.reads_hit, 1);
        assert_eq!(stats.reads_missed, 1);
    }

    #[test]
    fn write_behind_makes_small_writes_cheap() {
        let script = |wb: bool| {
            let mut ops = vec![open(0)];
            for i in 0..16u64 {
                ops.push(ScriptOp::Io(IoRequest::seek(0, i * 2048)));
                ops.push(ScriptOp::Io(IoRequest::write(0, 2048)));
            }
            let _ = wb;
            ops
        };
        let base = PolicyConfig::write_through();
        let (t_wt, _) = run(
            &machine(),
            base,
            vec![FileSpec::output("f")],
            vec![script(false)],
        );
        let (t_wb, stats) = run(
            &machine(),
            PolicyConfig::escat_tuned(),
            vec![FileSpec::output("f")],
            vec![script(true)],
        );
        let sum = |t: &Trace| -> u64 { t.of_op(IoOp::Write).map(|e| e.duration()).sum() };
        assert!(
            sum(&t_wb) * 5 < sum(&t_wt),
            "write-behind did not help: {} vs {}",
            sum(&t_wb),
            sum(&t_wt)
        );
        assert_eq!(stats.writes_buffered, 16);
        // Aggregation merged the contiguous region into few extents.
        assert!(stats.flush_extents <= 2, "extents: {}", stats.flush_extents);
        assert_eq!(stats.flushed_bytes, 16 * 2048);
    }

    #[test]
    fn aggregation_reduces_flush_extents() {
        // Strided dirty data: aggregation merges per contiguous run.
        let script = || {
            let mut ops = vec![open(0)];
            for i in 0..8u64 {
                ops.push(ScriptOp::Io(IoRequest::seek(0, i * 100_000)));
                ops.push(ScriptOp::Io(IoRequest::write(0, 2048)));
            }
            ops
        };
        let mut agg = PolicyConfig::escat_tuned();
        agg.high_water_bytes = u64::MAX; // flush only via timer/run-end
        let mut no_agg = agg;
        no_agg.aggregation = false;
        let (_, s_agg) = run(&machine(), agg, vec![FileSpec::output("f")], vec![script()]);
        let (_, s_no) = run(
            &machine(),
            no_agg,
            vec![FileSpec::output("f")],
            vec![script()],
        );
        // Disjoint strided extents: both have 8 extents, but with adjacent
        // writes aggregation shines; verify at least not worse here and
        // byte totals identical.
        assert!(s_agg.flush_extents <= s_no.flush_extents);
        assert_eq!(s_agg.flushed_bytes, s_no.flushed_bytes);
    }

    #[test]
    fn readahead_accelerates_sequential_scan() {
        let script = || {
            let mut ops = vec![open(0)];
            for _ in 0..32 {
                ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
            }
            ops
        };
        let (t_none, _) = run(
            &machine(),
            PolicyConfig::write_through(),
            vec![FileSpec::input("in", 4 << 20)],
            vec![script()],
        );
        let (t_ra, stats) = run(
            &machine(),
            PolicyConfig::readahead(4),
            vec![FileSpec::input("in", 4 << 20)],
            vec![script()],
        );
        let total = |t: &Trace| -> u64 { t.of_op(IoOp::Read).map(|e| e.duration()).sum() };
        assert!(
            total(&t_ra) < total(&t_none),
            "readahead did not help: {} vs {}",
            total(&t_ra),
            total(&t_none)
        );
        assert!(stats.prefetched_blocks > 0);
    }

    #[test]
    fn adaptive_matches_readahead_on_sequential_and_stays_quiet_on_random() {
        let seq_script = || {
            let mut ops = vec![open(0)];
            for _ in 0..32 {
                ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
            }
            ops
        };
        let (_, s_seq) = run(
            &machine(),
            PolicyConfig::adaptive(4),
            vec![FileSpec::input("in", 4 << 20)],
            vec![seq_script()],
        );
        assert!(s_seq.prefetched_blocks > 0);

        // Random offsets: adaptive must not waste fetches.
        let rnd_script = || {
            let offs = [31u64, 3, 47, 11, 59, 23, 7, 41, 17, 53];
            let mut ops = vec![open(0)];
            for &o in &offs {
                ops.push(ScriptOp::Io(IoRequest::seek(0, o * 65536)));
                ops.push(ScriptOp::Io(IoRequest::read(0, 4096)));
            }
            ops
        };
        let (_, s_rnd) = run(
            &machine(),
            PolicyConfig::adaptive(4),
            vec![FileSpec::input("in", 8 << 20)],
            vec![rnd_script()],
        );
        assert_eq!(s_rnd.prefetched_blocks, 0);
    }

    #[test]
    fn seeks_are_always_local() {
        let script = |n: u32| {
            vec![
                open(0),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, n as u64 * 4096)),
            ]
        };
        let (trace, _) = run(
            &machine(),
            PolicyConfig::write_through(),
            vec![FileSpec::output("f")],
            (0..4).map(script).collect(),
        );
        for ev in trace.of_op(IoOp::Seek) {
            assert!(
                ev.duration() < 1_000_000,
                "seek too slow: {}",
                ev.duration()
            );
        }
    }

    #[test]
    fn mru_cache_policy_applies() {
        // Cyclic scan over 12 blocks with an 8-block cache.
        let script = || {
            let mut ops = vec![open(0)];
            for _pass in 0..4 {
                ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
                for _ in 0..12 {
                    ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
                }
            }
            ops
        };
        let file = || vec![FileSpec::input("in", 12 * 65536)];
        let lru = PolicyConfig::write_through().with_cache(8, Eviction::Lru);
        let mru = PolicyConfig::write_through().with_cache(8, Eviction::Mru);
        let (_, s_lru) = run(&machine(), lru, file(), vec![script()]);
        let (_, s_mru) = run(&machine(), mru, file(), vec![script()]);
        assert!(
            s_mru.reads_hit > s_lru.reads_hit,
            "mru {} !> lru {}",
            s_mru.reads_hit,
            s_lru.reads_hit
        );
    }

    #[test]
    fn concurrent_readers_have_independent_caches() {
        let script = || {
            vec![
                open(0),
                ScriptOp::Io(IoRequest::read(0, 65536)),
                ScriptOp::Io(IoRequest::seek(0, 0)),
                ScriptOp::Io(IoRequest::read(0, 65536)),
            ]
        };
        let (_, stats) = run(
            &machine(),
            PolicyConfig::write_through(),
            vec![FileSpec::input("in", 1 << 20)],
            vec![script(), script()],
        );
        // Each node misses once and hits once.
        assert_eq!(stats.reads_missed, 2);
        assert_eq!(stats.reads_hit, 2);
    }

    #[test]
    fn inferred_pattern_exposed() {
        let m = machine();
        let mut fs = Ppfs::new(&m, PolicyConfig::adaptive(2), TraceSink::new("p"));
        fs.register(FileSpec::input("in", 4 << 20));
        let mut ops = vec![open(0)];
        for _ in 0..8 {
            ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
        }
        let programs: Vec<Box<dyn NodeProgram>> = vec![Box::new(ScriptProgram::new(ops))];
        let mut engine = Engine::new(Mesh::for_nodes(4, 2), m.comm, programs, fs);
        engine.set_default_watchdog();
        engine.run();
        use sio_core::classify::AccessPattern;
        assert_eq!(
            engine.service().inferred_pattern(0, 0),
            Some(AccessPattern::Sequential)
        );
        assert_eq!(engine.service().inferred_pattern(3, 0), None);
    }

    #[test]
    fn server_cache_serves_second_node_without_disk() {
        // Node 0 streams the file (cold), node 1 reads it afterwards: with a
        // server cache, node 1's blocks come from the I/O nodes' memory.
        let script = |delay_ms: u64| {
            let mut ops = vec![
                open(0),
                ScriptOp::Compute(SimDuration::from_millis(delay_ms)),
            ];
            for _ in 0..16 {
                ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
            }
            ops
        };
        let file = || vec![FileSpec::input("in", 16 * 65536)];
        let run_with =
            |policy: PolicyConfig| run(&machine(), policy, file(), vec![script(0), script(2000)]);
        let (t_two, s_two) = run_with(PolicyConfig::two_level(64, 256));
        let (t_one, s_one) = run_with(PolicyConfig::write_through());
        assert!(s_two.server_hits >= 16, "hits {}", s_two.server_hits);
        assert_eq!(s_one.server_hits, 0);
        // Node 1's reads are faster with the server cache.
        let node1 = |t: &Trace| -> u64 {
            t.of_op(IoOp::Read)
                .filter(|e| e.node == 1)
                .map(|e| e.duration())
                .sum()
        };
        assert!(
            node1(&t_two) < node1(&t_one),
            "two-level {} !< one-level {}",
            node1(&t_two),
            node1(&t_one)
        );
    }

    #[test]
    fn server_cache_write_allocate() {
        // A writer populates the server cache; a later reader on another
        // node hits it.
        let writer = vec![
            open(0),
            ScriptOp::Io(IoRequest::write(0, 65536)),
            ScriptOp::Send {
                to: 1,
                bytes: 1,
                tag: 1,
            },
        ];
        let reader = vec![
            open(0),
            ScriptOp::Recv { from: 0, tag: 1 },
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 65536)),
        ];
        let (_, stats) = run(
            &machine(),
            PolicyConfig::two_level(64, 256),
            vec![FileSpec::output("f")],
            vec![writer, reader],
        );
        assert_eq!(stats.server_hits, 1);
        assert_eq!(stats.server_misses, 0);
    }

    #[test]
    fn per_file_advice_overrides_global_policy() {
        // Global policy: write-through. File 0 advised as staging
        // (write-behind + aggregation); file 1 inherits write-through.
        let m = machine();
        let mut fs = Ppfs::new(&m, PolicyConfig::write_through(), TraceSink::new("advice"));
        fs.register(FileSpec::output("staging"));
        fs.register(FileSpec::output("plain"));
        fs.advise(0, crate::advice::FileAdvice::staging());
        let mut ops = vec![open(0), open(1)];
        for i in 0..8u64 {
            ops.push(ScriptOp::Io(IoRequest::seek(0, i * 2048)));
            ops.push(ScriptOp::Io(IoRequest::write(0, 2048)));
            ops.push(ScriptOp::Io(IoRequest::seek(1, i * 2048)));
            ops.push(ScriptOp::Io(IoRequest::write(1, 2048)));
        }
        let programs: Vec<Box<dyn NodeProgram>> = vec![Box::new(ScriptProgram::new(ops))];
        let mut engine = Engine::new(Mesh::for_nodes(4, 2), m.comm, programs, fs);
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean());
        let stats = engine.service().stats();
        // Only the advised file's writes were buffered.
        assert_eq!(stats.writes_buffered, 8);
        let trace = engine.into_service().finish_trace();
        let wtime = |file: u32| -> u64 {
            trace
                .of_op(IoOp::Write)
                .filter(|e| e.file == file)
                .map(|e| e.duration())
                .sum()
        };
        assert!(
            wtime(0) * 3 < wtime(1),
            "advised {} !<< plain {}",
            wtime(0),
            wtime(1)
        );
    }

    #[test]
    fn run_end_accounts_unflushed_data() {
        let m = machine();
        let mut policy = PolicyConfig::escat_tuned();
        policy.high_water_bytes = u64::MAX;
        policy.flush_interval_secs = 1e9; // never fires
        let mut fs = Ppfs::new(&m, policy, TraceSink::new("e"));
        fs.register(FileSpec::output("f"));
        let ops = vec![open(0), ScriptOp::Io(IoRequest::write(0, 2048))];
        let programs: Vec<Box<dyn NodeProgram>> = vec![Box::new(ScriptProgram::new(ops))];
        let mut engine = Engine::new(Mesh::for_nodes(4, 2), m.comm, programs, fs);
        engine.set_default_watchdog();
        engine.run();
        assert_eq!(engine.service().stats().flushed_bytes, 2048);
    }
}

//! # sio-ppfs — a PPFS-style portable parallel file system with tunable policies
//!
//! The paper's §5.2 reports the one controlled experiment of the study: the
//! authors ported ESCAT to PPFS, their portable parallel file system (ref
//! \[8\]), configured **write-behind** and **global request aggregation**, and
//! "this combination of policies effectively eliminated the behavior seen in
//! Figure 4" — the synchronized small-write bursts. The conclusions (§10) go
//! further: no single file-system policy serves all access patterns, so
//! policies must be chosen per pattern, ideally by automatic classification.
//!
//! This crate implements that system:
//!
//! * [`policy`] — the tunable policy surface: block cache size and eviction,
//!   prefetching (none / fixed readahead / adaptive), write-behind, and
//!   aggregation;
//! * [`cache`] — a block cache with LRU / MRU / random eviction;
//! * [`write_behind`] — the dirty-extent buffer with adjacent-extent
//!   aggregation;
//! * [`prefetch`] — readahead and adaptive prefetching driven by
//!   [`sio_core::classify`] and [`sio_core::predict`];
//! * [`fs`] — [`fs::Ppfs`], the [`paragon_sim::engine::IoService`]
//!   implementation over the same I/O-node substrate as `sio-pfs`, so the
//!   two file systems are directly comparable on identical workloads.
//!
//! PPFS manages file pointers client-side: seeks are always local and cheap,
//! in contrast to PFS's shared-file seek RPC — one of the two effects behind
//! the §5.2 result (the other is write-behind absorbing the 2 KB writes).

pub mod advice;
pub mod cache;
pub mod fs;
pub mod policy;
pub mod prefetch;
pub mod write_behind;

pub use advice::FileAdvice;
pub use fs::{Ppfs, PpfsStats};
pub use policy::{Eviction, PolicyConfig, PrefetchPolicy};

//! Write-behind buffering with global request aggregation.
//!
//! With write-behind enabled, an application write completes as soon as its
//! bytes land in the node's dirty buffer; the buffer drains to the I/O nodes
//! in the background. Aggregation merges adjacent or overlapping dirty
//! extents so the drain consists of few large sequential requests instead of
//! many small ones — the §5.2 mechanism: ESCAT's "multiple writers into
//! disjoint locations in a shared file ... can be combined, significantly
//! increasing disk efficiency" (§8).

use std::collections::BTreeMap;

/// A dirty byte extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Start offset.
    pub offset: u64,
    /// Length, bytes.
    pub bytes: u64,
}

impl Extent {
    /// One past the last dirty byte.
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// Per-(node, file) dirty buffer.
#[derive(Debug, Default)]
pub struct DirtyBuffer {
    /// Extents keyed by start offset; invariant: non-overlapping, and (when
    /// aggregating) non-adjacent — adjacent extents are merged on insert.
    extents: BTreeMap<u64, u64>,
    bytes: u64,
}

impl DirtyBuffer {
    /// Empty buffer.
    pub fn new() -> DirtyBuffer {
        DirtyBuffer::default()
    }

    /// Total dirty bytes (double-written ranges counted once).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of distinct extents held.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Record a write. Overlapping or touching extents are coalesced (the
    /// buffer is a set of dirty byte ranges, so this is semantics, not
    /// policy — policy decides how the *drain* groups them).
    pub fn add(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut start = offset;
        let mut end = offset + len;
        // Absorb any extent that overlaps or touches [start, end).
        // Candidates: the last extent starting at or before `end`, walking
        // backwards while they still touch.
        loop {
            let overlapping: Vec<u64> = self
                .extents
                .range(..=end)
                .rev()
                .take_while(|(&s, &b)| s + b >= start)
                .map(|(&s, _)| s)
                .collect();
            if overlapping.is_empty() {
                break;
            }
            for s in overlapping {
                let b = self.extents.remove(&s).unwrap();
                self.bytes -= b;
                start = start.min(s);
                end = end.max(s + b);
            }
        }
        self.extents.insert(start, end - start);
        self.bytes += end - start;
    }

    /// Drain the buffer for flushing.
    ///
    /// With `aggregate`, returns the coalesced extents as-is (few, large).
    /// Without it, returns extents chopped to `chunk` bytes — modeling a
    /// naive flush that writes back in cache-block units, preserving the
    /// small-request stream the disks would have seen anyway.
    pub fn drain(&mut self, aggregate: bool, chunk: u64) -> Vec<Extent> {
        let taken = std::mem::take(&mut self.extents);
        self.bytes = 0;
        if aggregate {
            taken
                .into_iter()
                .map(|(offset, bytes)| Extent { offset, bytes })
                .collect()
        } else {
            assert!(chunk > 0, "chunk must be nonzero");
            let mut out = Vec::new();
            for (offset, bytes) in taken {
                let mut pos = offset;
                let end = offset + bytes;
                while pos < end {
                    let len = chunk.min(end - pos);
                    out.push(Extent {
                        offset: pos,
                        bytes: len,
                    });
                    pos += len;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_extents_kept_apart() {
        let mut b = DirtyBuffer::new();
        b.add(0, 100);
        b.add(1000, 100);
        assert_eq!(b.extent_count(), 2);
        assert_eq!(b.bytes(), 200);
    }

    #[test]
    fn touching_extents_merge() {
        let mut b = DirtyBuffer::new();
        b.add(0, 100);
        b.add(100, 100); // touches
        assert_eq!(b.extent_count(), 1);
        assert_eq!(b.bytes(), 200);
        assert_eq!(
            b.drain(true, 64),
            vec![Extent {
                offset: 0,
                bytes: 200
            }]
        );
    }

    #[test]
    fn overlapping_extents_merge_without_double_count() {
        let mut b = DirtyBuffer::new();
        b.add(0, 100);
        b.add(50, 100); // overlaps [50,100)
        assert_eq!(b.bytes(), 150);
        assert_eq!(b.extent_count(), 1);
    }

    #[test]
    fn extent_bridging_two_neighbors() {
        let mut b = DirtyBuffer::new();
        b.add(0, 100);
        b.add(200, 100);
        b.add(100, 100); // bridges both
        assert_eq!(b.extent_count(), 1);
        assert_eq!(b.bytes(), 300);
    }

    #[test]
    fn escat_style_strided_writes_aggregate_per_region() {
        // 8 iterations of 2 KB appended at a node's contiguous region: one
        // extent after aggregation.
        let mut b = DirtyBuffer::new();
        for i in 0..8u64 {
            b.add(i * 2048, 2048);
        }
        let agg = b.drain(true, 2048);
        assert_eq!(
            agg,
            vec![Extent {
                offset: 0,
                bytes: 8 * 2048
            }]
        );
    }

    #[test]
    fn non_aggregated_drain_chops_to_chunks() {
        let mut b = DirtyBuffer::new();
        b.add(0, 10_000);
        let parts = b.drain(false, 4096);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts[0],
            Extent {
                offset: 0,
                bytes: 4096
            }
        );
        assert_eq!(
            parts[2],
            Extent {
                offset: 8192,
                bytes: 10_000 - 8192
            }
        );
        assert!(b.is_empty());
    }

    #[test]
    fn drain_resets_buffer() {
        let mut b = DirtyBuffer::new();
        b.add(0, 10);
        let _ = b.drain(true, 64);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
        b.add(5, 5);
        assert_eq!(b.bytes(), 5);
    }

    #[test]
    fn zero_length_write_ignored() {
        let mut b = DirtyBuffer::new();
        b.add(100, 0);
        assert!(b.is_empty());
    }

    #[test]
    fn rewrite_same_range_counts_once() {
        let mut b = DirtyBuffer::new();
        b.add(0, 2048);
        b.add(0, 2048);
        assert_eq!(b.bytes(), 2048);
        assert_eq!(b.extent_count(), 1);
    }
}

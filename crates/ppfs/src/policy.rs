//! The PPFS policy surface.
//!
//! PPFS "provides user control of file cache sizes and policies, as well as
//! data placement" (§9, describing ref \[8\]); applications "advertize expected
//! file access patterns and ... choose file distribution, caching, and
//! prefetch policies" (§10). [`PolicyConfig`] is that control surface; the
//! presets are the configurations used by the paper's experiments and our
//! ablations (DESIGN.md X1, A2).

use serde::{Deserialize, Serialize};

/// Block-cache eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Eviction {
    /// Least-recently-used (default; good for sequential with reuse).
    Lru,
    /// Most-recently-used (classic choice for cyclic scans larger than the
    /// cache, where LRU evicts exactly what is needed next).
    Mru,
    /// Uniform random (seeded; baseline).
    Random,
}

/// Read prefetching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// No prefetching.
    None,
    /// Fixed sequential readahead of `depth` blocks past each miss.
    Readahead {
        /// Blocks fetched ahead.
        depth: u32,
    },
    /// Adaptive: classify the per-(node, file) access stream online
    /// (sequential / strided / cyclic / random) and prefetch with the
    /// matching predictor; random streams get no prefetch.
    Adaptive {
        /// Blocks (or predicted accesses) fetched ahead once a pattern is
        /// recognized.
        depth: u32,
    },
}

/// Full policy configuration for a PPFS instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Cache block size, bytes (PFS stripe unit by default).
    pub block_size: u64,
    /// Per-node cache capacity, blocks.
    pub cache_blocks: u32,
    /// Eviction policy.
    pub eviction: Eviction,
    /// Prefetching policy.
    pub prefetch: PrefetchPolicy,
    /// Complete writes into a client-side buffer and flush in the
    /// background.
    pub write_behind: bool,
    /// Merge adjacent dirty extents into large sequential writes before
    /// flushing ("global request aggregation").
    pub aggregation: bool,
    /// Background flush period, seconds (also triggered by the high-water
    /// mark).
    pub flush_interval_secs: f64,
    /// Flush when a node's dirty bytes exceed this.
    pub high_water_bytes: u64,
    /// Cache-hit service time, seconds (memory copy + bookkeeping).
    pub hit_cost_secs: f64,
    /// Per-I/O-node *server* cache capacity in blocks (0 = disabled) — the
    /// paper's §8 "two level buffering at compute nodes and input/output
    /// nodes". Server hits bypass the disk queue entirely and are shared
    /// across all compute nodes.
    pub server_cache_blocks: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::write_through()
    }
}

impl PolicyConfig {
    /// Plain write-through, no caching benefits: the PFS-equivalent
    /// baseline (but with PPFS's local pointer management).
    pub fn write_through() -> PolicyConfig {
        PolicyConfig {
            block_size: 64 * 1024,
            cache_blocks: 64,
            eviction: Eviction::Lru,
            prefetch: PrefetchPolicy::None,
            write_behind: false,
            aggregation: false,
            flush_interval_secs: 1.0,
            high_water_bytes: 4 << 20,
            hit_cost_secs: 0.000_2,
            server_cache_blocks: 0,
        }
    }

    /// Two-level buffering (§8): client caches plus a shared server cache
    /// at every I/O node.
    pub fn two_level(client_blocks: u32, server_blocks: u32) -> PolicyConfig {
        PolicyConfig {
            cache_blocks: client_blocks,
            server_cache_blocks: server_blocks,
            ..PolicyConfig::write_through()
        }
    }

    /// The §5.2 configuration: write-behind plus global request
    /// aggregation — the pair that eliminated ESCAT's Figure-4 bursts.
    ///
    /// The flush period is long: dirty regions accumulate across the
    /// widely-spaced quadrature bursts and drain as few large sequential
    /// writes at the high-water mark or at close — which is what makes the
    /// aggregation "global" in effect.
    pub fn escat_tuned() -> PolicyConfig {
        PolicyConfig {
            write_behind: true,
            aggregation: true,
            flush_interval_secs: 3600.0,
            ..PolicyConfig::write_through()
        }
    }

    /// Write-behind tuned for HTF pargos' flush-per-record pattern: the
    /// application forces durability with an explicit `forflush` after
    /// every integral record, so dirty regions drain promptly and the
    /// aging timer stays at the short default instead of `escat_tuned`'s
    /// burst-spanning hour.
    pub fn pargos_tuned() -> PolicyConfig {
        PolicyConfig {
            write_behind: true,
            aggregation: true,
            ..PolicyConfig::write_through()
        }
    }

    /// Sequential-read tuning: deep readahead.
    pub fn readahead(depth: u32) -> PolicyConfig {
        PolicyConfig {
            prefetch: PrefetchPolicy::Readahead { depth },
            ..PolicyConfig::write_through()
        }
    }

    /// The §10 direction: adaptive classification-driven prefetch, plus
    /// write-behind with aggregation.
    pub fn adaptive(depth: u32) -> PolicyConfig {
        PolicyConfig {
            prefetch: PrefetchPolicy::Adaptive { depth },
            write_behind: true,
            aggregation: true,
            ..PolicyConfig::write_through()
        }
    }

    /// Override the cache geometry (builder style).
    #[must_use]
    pub fn with_cache(mut self, blocks: u32, eviction: Eviction) -> PolicyConfig {
        self.cache_blocks = blocks;
        self.eviction = eviction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let wt = PolicyConfig::write_through();
        assert!(!wt.write_behind && !wt.aggregation);
        assert_eq!(wt.prefetch, PrefetchPolicy::None);

        let escat = PolicyConfig::escat_tuned();
        assert!(escat.write_behind && escat.aggregation);

        let ra = PolicyConfig::readahead(8);
        assert_eq!(ra.prefetch, PrefetchPolicy::Readahead { depth: 8 });

        let ad = PolicyConfig::adaptive(4);
        assert!(matches!(ad.prefetch, PrefetchPolicy::Adaptive { depth: 4 }));
        assert!(ad.write_behind);
    }

    #[test]
    fn builder_overrides_cache() {
        let p = PolicyConfig::write_through().with_cache(256, Eviction::Mru);
        assert_eq!(p.cache_blocks, 256);
        assert_eq!(p.eviction, Eviction::Mru);
    }
}

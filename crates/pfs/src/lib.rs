//! # sio-pfs — a model of the Intel Paragon Parallel File System (PFS)
//!
//! PFS "stripes files across the I/O nodes in units of 64 KB, with standard
//! RAID-3 striping on each disk array" and offers six parallel access modes
//! (§3.2 of the paper). This crate is the PFS *policy* over the shared
//! `sio-fskit` substrate:
//!
//! * [`layout`] (re-exported from `sio-fskit`) — the 64 KB round-robin
//!   stripe map from file offsets to (I/O node, array offset) segments,
//!   with per-I/O-node merging of contiguous units;
//! * [`mode`] (re-exported from `sio-fskit`) — the six access modes
//!   (`M_UNIX`, `M_LOG`, `M_SYNC`, `M_RECORD`, `M_GLOBAL`, `M_ASYNC`) and
//!   their pointer/coordination semantics;
//! * [`file`](mod@file) (re-exported from `sio-fskit`) — file registration
//!   and runtime state (length, openers, pointers, record bookkeeping);
//! * [`fs`] — [`fs::Pfs`], the [`paragon_sim::IoService`] implementation:
//!   metadata-server queueing for opens/closes/shared seeks, per-mode data
//!   dispatch through the shared segment pump with buddy-node failover,
//!   and Pablo tracing of every call.
//!
//! Every application-visible operation is recorded through a
//! [`sio_core::Tracer`], producing the traces the analysis crate turns into
//! the paper's tables and figures.

pub use sio_fskit::{file, layout, mode};

pub mod fs;

pub use file::FileSpec;
pub use fs::{FaultStats, Pfs, PfsConfig};
pub use layout::StripeLayout;
pub use mode::AccessMode;

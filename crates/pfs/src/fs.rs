//! The PFS model: a [`paragon_sim::IoService`] implementation.
//!
//! `Pfs` interprets every [`IoVerb`] with the semantics of §3.2:
//!
//! * **metadata path** — opens, creates, closes, and `lsize` serialize
//!   through one metadata server (`meta_free`); *seeks on shared files*
//!   serialize at the file's metadata owner (per-file `seek_free`), which is
//!   what makes ESCAT's 128-node synchronized seeks so expensive (Table 1);
//!   seeks on single-opener files are a cheap local pointer update (HTF
//!   `pscf`, Table 5);
//! * **data path** — the access mode resolves the request's offset
//!   (per-node pointer, shared pointer with token serialization, record
//!   interleaving, or collective coalescing), the stripe layout splits it
//!   into per-I/O-node segments, the segments queue at the
//!   [`paragon_sim::ionode::IoNodeSim`]s, and the request completes when its
//!   last segment does plus the client copy cost;
//! * **tracing** — every application-visible call is recorded in a
//!   [`sio_core::Tracer`] with its simulated interval; asynchronous reads
//!   record their issue cost, and the engine's `on_iowait` hook records the
//!   un-overlapped wait, exactly the two rows RENDER's Table 3 reports.

use crate::file::{FileSpec, FileState};
use crate::layout::{Segment, StripeLayout};
use crate::mode::AccessMode;
use paragon_sim::calibration::{FaultParams, IoSwCosts};
use paragon_sim::engine::{IoService, Sched};
use paragon_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use paragon_sim::ionode::{Completion, IoNodeSim, SegmentReq, SubmitOutcome};
use paragon_sim::mesh::{CommCosts, Mesh};
use paragon_sim::program::{IoFault, IoRequest, IoResult, IoToken, IoVerb};
use paragon_sim::raid::RaidError;
use paragon_sim::time::transfer_time;
use paragon_sim::{MachineConfig, NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::hash::FastMap;
use sio_core::trace::{Trace, TraceSink};
use std::collections::BTreeMap;

/// Per-I/O-node bytes reserved for each registered file (a fixed-slot
/// allocator: file `f`'s node-local space starts at `f × file_slot`).
const DEFAULT_FILE_SLOT: u64 = 32 << 20;

/// PFS configuration, derived from a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Stripe map.
    pub layout: StripeLayout,
    /// Software-path costs.
    pub io_sw: IoSwCosts,
    /// Mesh geometry (M_GLOBAL broadcast costs).
    pub mesh: Mesh,
    /// Interconnect costs.
    pub comm: CommCosts,
    /// Per-I/O-node slot size of the file allocator.
    pub file_slot: u64,
    /// Array capacity per I/O node (slot allocator bound).
    pub array_capacity: u64,
}

impl PfsConfig {
    /// Derive from a machine configuration (64 KB PFS striping).
    pub fn from_machine(m: &MachineConfig) -> PfsConfig {
        PfsConfig {
            layout: StripeLayout::pfs(m.io_nodes),
            io_sw: m.io_sw,
            mesh: m.mesh(),
            comm: m.comm,
            file_slot: DEFAULT_FILE_SLOT,
            array_capacity: m.disk.capacity * m.raid.data_disks as u64,
        }
    }
}

/// The per-node client copy path: one CPU per node moves data between the
/// application and the message system, so concurrent completions on the same
/// node serialize through it. This is the effect behind §6.2's observation
/// that the RENDER gateway sustains only ~9.5 MB/s against a ~140 MB/s
/// aggregate array rate.
#[derive(Debug, Default)]
pub struct ClientPath {
    /// Next-free time per node, indexed by `NodeId` (dense: node ids are
    /// small and this is touched once per data completion).
    free: Vec<SimTime>,
}

impl ClientPath {
    /// New, idle client path.
    pub fn new() -> ClientPath {
        ClientPath::default()
    }

    /// Serialize a `bytes`-sized copy on `node`'s client CPU, starting no
    /// earlier than `ready`; returns the completion time.
    pub fn copy_done(&mut self, node: NodeId, ready: SimTime, bytes: u64, rate: f64) -> SimTime {
        let slot = node as usize;
        if slot >= self.free.len() {
            self.free.resize(slot + 1, SimTime::ZERO);
        }
        let start = self.free[slot].max(ready);
        let done = start + transfer_time(bytes, rate);
        self.free[slot] = done;
        done
    }
}

#[derive(Debug)]
struct Pending {
    file: u32,
    write: bool,
    is_async: bool,
    offset: u64,
    bytes: u64,
    issued: SimTime,
    node: NodeId,
    segs_left: u32,
    /// Segment ids issued for this request (cleanup on early failure).
    seg_ids: Vec<u64>,
    /// First fault observed on any segment of this request.
    fault: Option<IoFault>,
    /// Extra completers for M_GLOBAL collectives: (token, node, issued).
    collective: Vec<(IoToken, NodeId, SimTime)>,
}

/// A rejected or lost segment awaiting re-submission.
#[derive(Debug, Clone, Copy)]
struct RetrySeg {
    /// Target I/O node of the next attempt.
    io: u32,
    req: SegmentReq,
    /// Attempts already made against the current target.
    attempt: u32,
}

/// Counters for the fault-handling machinery (all zero on a healthy run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Segment re-submissions scheduled with backoff.
    pub retries: u64,
    /// Segments failed over to the buddy node.
    pub failovers: u64,
    /// Segments lost to node crashes (in service or queued).
    pub lost_segments: u64,
    /// Segments served from an array with exhausted redundancy.
    pub data_loss_segments: u64,
    /// Requests failed by the hard deadline.
    pub timeouts: u64,
    /// Requests failed because no server would accept them.
    pub unavailable: u64,
    /// Second-failure events that exhausted an array's redundancy.
    pub data_loss_events: u64,
}

#[derive(Debug, Clone, Copy)]
struct Deferred {
    token: IoToken,
    node: NodeId,
    file: u32,
    write: bool,
    is_async: bool,
    offset: u64,
    bytes: u64,
    issued: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct ParkedSync {
    token: IoToken,
    write: bool,
    bytes: u64,
    issued: SimTime,
    is_async: bool,
}

/// A `Sync` commit waiting for the file's outstanding writes to land.
#[derive(Debug, Clone, Copy)]
struct SyncWaiter {
    token: IoToken,
    node: NodeId,
    file: u32,
    issued: SimTime,
}

/// The Intel PFS model.
pub struct Pfs {
    cfg: PfsConfig,
    ionodes: Vec<IoNodeSim>,
    files: Vec<FileState>,
    sink: TraceSink,
    /// Global metadata server: next-free time.
    meta_free: SimTime,
    /// Per-file metadata-owner queues for shared-file seeks.
    seek_free: Vec<SimTime>,
    pending: FastMap<IoToken, Pending>,
    seg_owner: FastMap<u64, IoToken>,
    next_seg: u64,
    /// Reused stripe-decomposition buffer (hot path: one per request
    /// otherwise).
    seg_scratch: Vec<Segment>,
    deferred: FastMap<u64, Deferred>,
    next_deferred: u64,
    /// M_GLOBAL coalescing: file -> waiting participants.
    #[allow(clippy::type_complexity)]
    global_waiting: FastMap<u32, Vec<(IoToken, NodeId, SimTime, bool, u64)>>,
    /// M_SYNC parking: file -> node -> parked request.
    sync_parked: FastMap<u32, BTreeMap<NodeId, ParkedSync>>,
    /// `Sync` commits parked until their file has no in-flight writes.
    sync_waiters: Vec<SyncWaiter>,
    /// Per-node serial client copy path.
    client: ClientPath,
    /// Fault-handling calibration (backoff, failover, deadline).
    fault_params: FaultParams,
    /// Injected fault schedule; empty on a healthy run.
    schedule: FaultSchedule,
    /// Armed fault-event timers (timer id -> event).
    fault_timers: FastMap<u64, FaultEvent>,
    /// Armed segment-retry timers (timer id -> retry state).
    retry_timers: FastMap<u64, RetrySeg>,
    /// Armed per-request deadline timers (timer id -> request token).
    timeout_timers: FastMap<u64, IoToken>,
    fault_stats: FaultStats,
}

impl Pfs {
    /// Build a PFS over the given machine, tracing into `sink` (owned; take
    /// the frozen trace back with [`Pfs::finish_trace`] after the run).
    pub fn new(machine: &MachineConfig, sink: TraceSink) -> Pfs {
        Pfs::with_faults(machine, sink, FaultSchedule::new())
    }

    /// Build a PFS with an injected fault schedule. An empty schedule is
    /// exactly [`Pfs::new`]: the fault machinery arms no timers and the run
    /// is bit-identical to a healthy one.
    pub fn with_faults(machine: &MachineConfig, sink: TraceSink, schedule: FaultSchedule) -> Pfs {
        let cfg = PfsConfig::from_machine(machine);
        let ionodes = machine.build_io_nodes();
        assert!(
            schedule
                .events()
                .iter()
                .all(|e| (e.io_node as usize) < ionodes.len()),
            "fault schedule targets a nonexistent i/o node"
        );
        let next_deferred = ionodes.len() as u64;
        Pfs {
            cfg,
            ionodes,
            files: Vec::new(),
            sink,
            meta_free: SimTime::ZERO,
            seek_free: Vec::new(),
            pending: FastMap::default(),
            seg_owner: FastMap::default(),
            next_seg: 0,
            seg_scratch: Vec::new(),
            deferred: FastMap::default(),
            next_deferred,
            global_waiting: FastMap::default(),
            sync_parked: FastMap::default(),
            sync_waiters: Vec::new(),
            client: ClientPath::new(),
            fault_params: machine.fault,
            schedule,
            fault_timers: FastMap::default(),
            retry_timers: FastMap::default(),
            timeout_timers: FastMap::default(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Whether a fault schedule is in play (arms deadlines and lenient
    /// completion paths; a healthy run keeps the strict invariants).
    fn faults_enabled(&self) -> bool {
        !self.schedule.is_empty()
    }

    /// Register a file; returns its id (used in [`IoRequest::file`]).
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        let id = self.files.len() as u32;
        let max_slots = self.cfg.array_capacity / self.cfg.file_slot;
        assert!(
            (id as u64) < max_slots,
            "file slot allocator exhausted ({max_slots} slots)"
        );
        self.files.push(FileState::new(spec));
        self.seek_free.push(SimTime::ZERO);
        id
    }

    /// Current length of a registered file.
    pub fn file_len(&self, file: u32) -> u64 {
        self.files[file as usize].len
    }

    /// Mutable access to the trace sink (e.g. to set run metadata).
    pub fn sink_mut(&mut self) -> &mut TraceSink {
        &mut self.sink
    }

    /// Consume the file system, freezing its captured trace.
    pub fn finish_trace(self) -> Trace {
        self.sink.finish()
    }

    /// Inject a disk failure into one I/O node's array (experiment A4 and
    /// the X4 fault suite). A second failure on the same array is a typed
    /// error, not a panic.
    pub fn fail_disk(&mut self, io_node: u32, disk: u32) -> Result<(), RaidError> {
        self.ionodes[io_node as usize].array_mut().fail_disk(disk)
    }

    /// Fault-machinery counters (all zero on a healthy run).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Rebuild chunks completed across all I/O nodes.
    pub fn rebuild_chunks_total(&self) -> u64 {
        self.ionodes.iter().map(|n| n.rebuild_chunks()).sum()
    }

    /// Member bytes rebuilt across all I/O nodes.
    pub fn rebuilt_bytes_total(&self) -> u64 {
        self.ionodes.iter().map(|n| n.rebuilt_bytes()).sum()
    }

    /// I/O nodes whose arrays are still degraded.
    pub fn degraded_nodes(&self) -> u32 {
        self.ionodes.iter().filter(|n| n.array().degraded()).count() as u32
    }

    /// Sum of queueing delay accumulated across all I/O nodes.
    pub fn total_queueing(&self) -> SimDuration {
        self.ionodes
            .iter()
            .map(|n| n.queued_total())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total stripe segments completed across all I/O nodes.
    pub fn segments_completed(&self) -> u64 {
        self.ionodes.iter().map(|n| n.completed()).sum()
    }

    fn state(&mut self, file: u32) -> &mut FileState {
        &mut self.files[file as usize]
    }

    fn record(&mut self, ev: IoEvent) {
        self.sink.record(ev);
    }

    /// Serialize a metadata operation on the global server; returns its
    /// completion time.
    fn meta_op(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.meta_free.max(now);
        let done = start + cost;
        self.meta_free = done;
        done
    }

    /// Dispatch a resolved data operation to the I/O nodes.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        write: bool,
        offset: u64,
        bytes: u64,
        issued: SimTime,
        is_async: bool,
        collective: Vec<(IoToken, NodeId, SimTime)>,
        sched: &mut Sched,
    ) {
        let eff_bytes = {
            let st = self.state(file);
            if write {
                st.extend_to(offset + bytes);
                bytes
            } else {
                bytes.min(st.len.saturating_sub(offset))
            }
        };
        if eff_bytes == 0 {
            // Nothing to move: a short software path only.
            let done = now + SimDuration::from_micros(200);
            self.finish(
                Pending {
                    file,
                    write,
                    is_async,
                    offset,
                    bytes: 0,
                    issued,
                    node,
                    segs_left: 0,
                    seg_ids: Vec::new(),
                    fault: None,
                    collective,
                },
                token,
                done,
                sched,
            );
            return;
        }
        let mut segments = std::mem::take(&mut self.seg_scratch);
        segments.clear();
        self.cfg
            .layout
            .segments_into(offset, eff_bytes, &mut segments);
        let slot_base = file as u64 * self.cfg.file_slot;
        let mut reqs = Vec::with_capacity(segments.len());
        let mut seg_ids = Vec::with_capacity(segments.len());
        for seg in &segments {
            let array_offset = slot_base + seg.local_offset;
            assert!(
                array_offset + seg.bytes <= self.cfg.array_capacity,
                "file {file} overflows its allocator slot"
            );
            let id = self.next_seg;
            self.next_seg += 1;
            self.seg_owner.insert(id, token);
            seg_ids.push(id);
            reqs.push((
                seg.io_node,
                SegmentReq {
                    id,
                    offset: array_offset,
                    bytes: seg.bytes,
                    write,
                    sequential: false,
                    failover: false,
                },
            ));
        }
        self.seg_scratch = segments;
        // The request must be pending before any segment is submitted: a
        // rejection chain (both primary and buddy down) can fail the whole
        // token mid-loop.
        self.pending.insert(
            token,
            Pending {
                file,
                write,
                is_async,
                offset,
                bytes: eff_bytes,
                issued,
                node,
                segs_left: reqs.len() as u32,
                seg_ids,
                fault: None,
                collective,
            },
        );
        for (io, req) in reqs {
            self.submit_seg(now, io, req, 0, sched);
        }
        if self.faults_enabled() && self.pending.contains_key(&token) {
            // Hard per-request deadline: no request hangs forever under a
            // fault schedule with no recovery.
            let id = self.next_deferred;
            self.next_deferred += 1;
            self.timeout_timers.insert(id, token);
            sched.timer(now + self.fault_params.request_timeout, id);
        }
    }

    /// Submit one segment to an I/O node, handling explicit backpressure:
    /// rejections (node down or queue full) are retried with exponential
    /// backoff and, once the attempts against one node are exhausted, failed
    /// over to the buddy node — never silently dropped.
    fn submit_seg(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        sched: &mut Sched,
    ) {
        match self.ionodes[io as usize].submit(now, req) {
            SubmitOutcome::Started => {
                let t = self.ionodes[io as usize].next_done().expect("just started");
                sched.timer(t, io as u64);
            }
            SubmitOutcome::Queued => {}
            SubmitOutcome::Rejected(_) => self.handle_rejection(now, io, req, attempt, sched),
        }
    }

    /// A segment was rejected (or lost to a crash): back off and retry,
    /// fail over, or fail the owning request.
    fn handle_rejection(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        sched: &mut Sched,
    ) {
        let fp = self.fault_params;
        if attempt < fp.max_retries {
            self.fault_stats.retries += 1;
            let delay = fp.retry_base.times(1u64 << attempt.min(16));
            let id = self.next_deferred;
            self.next_deferred += 1;
            self.retry_timers.insert(
                id,
                RetrySeg {
                    io,
                    req,
                    attempt: attempt + 1,
                },
            );
            sched.timer(now + delay, id);
        } else if !req.failover {
            // This node is unreachable: reconstruct from redundancy on the
            // buddy node (at the degraded penalty).
            self.fault_stats.failovers += 1;
            let buddy = (io + 1) % self.ionodes.len() as u32;
            let mut r = req;
            r.failover = true;
            self.submit_seg(now, buddy, r, 0, sched);
        } else if let Some(&token) = self.seg_owner.get(&req.id) {
            // Primary and buddy both refused: the request cannot be served.
            self.fault_stats.unavailable += 1;
            self.fail_token(token, IoFault::Unavailable, now, sched);
        }
    }

    /// Whether `file` still has in-flight (dispatched or deferred) writes —
    /// the data a `Sync` commit must wait out. PFS is write-through, so
    /// once these land the bytes are on the arrays.
    fn has_outstanding_writes(&self, file: u32) -> bool {
        self.pending.values().any(|p| p.file == file && p.write)
            || self.deferred.values().any(|d| d.file == file && d.write)
    }

    /// Acknowledge a commit: the software flush cost, plus a typed
    /// `DataLoss` fault if any array holding the file's stripes has
    /// exhausted its redundancy (durable ≠ healthy).
    fn complete_sync(
        &mut self,
        token: IoToken,
        node: NodeId,
        file: u32,
        now: SimTime,
        issued: SimTime,
        sched: &mut Sched,
    ) {
        let done = now + self.cfg.io_sw.flush;
        let fault = if self.ionodes.iter().any(|n| n.array().data_lost()) {
            Some(IoFault::DataLoss)
        } else {
            None
        };
        self.record(IoEvent::new(node, file, IoOp::Flush).span(issued.nanos(), done.nanos()));
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes: 0,
                queued: SimDuration::ZERO,
                service: done.since(issued),
                fault,
            },
        );
    }

    /// Release every `Sync` waiter on `file` once its last in-flight write
    /// has finished (or failed — a typed write fault still unblocks the
    /// commit; the caller sees the failure on the write itself).
    fn drain_sync_waiters(&mut self, file: u32, now: SimTime, sched: &mut Sched) {
        if self.sync_waiters.is_empty() || self.has_outstanding_writes(file) {
            return;
        }
        let mut i = 0;
        while i < self.sync_waiters.len() {
            if self.sync_waiters[i].file == file {
                let w = self.sync_waiters.remove(i);
                self.complete_sync(w.token, w.node, w.file, now, w.issued, sched);
            } else {
                i += 1;
            }
        }
    }

    /// Fail a pending request (and its collective participants) with a typed
    /// fault instead of data.
    fn fail_token(&mut self, token: IoToken, fault: IoFault, now: SimTime, sched: &mut Sched) {
        let Some(p) = self.pending.remove(&token) else {
            return;
        };
        let failed_file = p.file;
        for id in &p.seg_ids {
            self.seg_owner.remove(id);
        }
        let op = match (p.write, p.is_async) {
            (true, _) => IoOp::Write,
            (false, false) => IoOp::Read,
            (false, true) => IoOp::AsyncRead,
        };
        let result = IoResult {
            bytes: 0,
            queued: SimDuration::ZERO,
            service: now.since(p.issued),
            fault: Some(fault),
        };
        if !p.is_async {
            self.record(
                IoEvent::new(p.node, p.file, op)
                    .span(p.issued.nanos(), now.nanos())
                    .extent(p.offset, 0),
            );
        }
        sched.complete_io(token, now, result);
        for (tok, node, issued) in p.collective {
            if !p.is_async {
                self.record(
                    IoEvent::new(node, p.file, op)
                        .span(issued.nanos(), now.nanos())
                        .extent(p.offset, 0),
                );
            }
            sched.complete_io(tok, now, result);
        }
        self.drain_sync_waiters(failed_file, now, sched);
    }

    /// Apply one scheduled fault event.
    fn apply_fault(&mut self, now: SimTime, ev: FaultEvent, sched: &mut Sched) {
        let io = ev.io_node as usize;
        match ev.kind {
            FaultKind::DiskFail { disk } => {
                match self.ionodes[io].array_mut().fail_disk(disk) {
                    Ok(()) => {}
                    Err(RaidError::DoubleFailure { .. }) => {
                        self.ionodes[io].array_mut().mark_data_lost();
                        self.fault_stats.data_loss_events += 1;
                    }
                    // Malformed event (bad index): reportable no-op.
                    Err(_) => {}
                }
            }
            FaultKind::DiskRepair => {
                if self.ionodes[io].array_mut().start_rebuild().is_ok() {
                    if let Some(t) = self.ionodes[io].maybe_start_rebuild(now) {
                        sched.timer(t, io as u64);
                    }
                }
            }
            FaultKind::NodeStall { for_dur } => {
                if let Some(t) = self.ionodes[io].stall(now, for_dur) {
                    sched.timer(t, io as u64);
                }
            }
            FaultKind::NodeCrash => {
                let lost = self.ionodes[io].crash();
                self.fault_stats.lost_segments += lost.len() as u64;
                for req in lost {
                    if self.seg_owner.contains_key(&req.id) {
                        self.handle_rejection(now, ev.io_node, req, 0, sched);
                    }
                }
            }
            FaultKind::NodeRecover => {
                self.ionodes[io].recover();
                if let Some(t) = self.ionodes[io].maybe_start_rebuild(now) {
                    sched.timer(t, io as u64);
                }
            }
        }
    }

    /// Complete a data request: charge the client copy cost, trace, complete
    /// every participating token.
    fn finish(&mut self, p: Pending, token: IoToken, now: SimTime, sched: &mut Sched) {
        let finished_file = p.file;
        let rate = self.cfg.io_sw.client_byte_rate;
        let mut done = self.client.copy_done(p.node, now, p.bytes, rate);
        if !p.collective.is_empty() {
            // M_GLOBAL: one physical I/O, then an internal broadcast to the
            // participant group.
            let n = (p.collective.len() + 1) as u32;
            done += self.cfg.mesh.broadcast_time(&self.cfg.comm, n, p.bytes);
        }
        let op = match (p.write, p.is_async) {
            (true, _) => IoOp::Write,
            (false, false) => IoOp::Read,
            (false, true) => IoOp::AsyncRead,
        };
        let result = IoResult {
            bytes: p.bytes,
            queued: SimDuration::ZERO,
            service: done.since(p.issued),
            fault: p.fault,
        };
        // Async issue events are traced at submit; sync ops trace here with
        // their full blocking interval.
        if !p.is_async {
            self.record(
                IoEvent::new(p.node, p.file, op)
                    .span(p.issued.nanos(), done.nanos())
                    .extent(p.offset, p.bytes),
            );
        }
        sched.complete_io(token, done, result);
        for (tok, node, issued) in p.collective {
            if !p.is_async {
                self.record(
                    IoEvent::new(node, p.file, op)
                        .span(issued.nanos(), done.nanos())
                        .extent(p.offset, p.bytes),
                );
            }
            sched.complete_io(tok, done, result);
        }
        self.drain_sync_waiters(finished_file, now, sched);
    }

    /// Resolve and dispatch a data operation according to the file's mode.
    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        req: IoRequest,
        write: bool,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let file = req.file;
        let mode = self.state(file).mode.unwrap_or_else(|| {
            panic!(
                "data op on closed file {} by node {node}",
                self.files[file as usize].spec.name
            )
        });
        // Trace the async issue itself (the paper's "AsynchRead" row), with
        // the offset the request will resolve to under the file's mode.
        if is_async {
            let resolved = match mode {
                AccessMode::MUnix | AccessMode::MAsync => req.offset.unwrap_or_else(|| {
                    self.files[file as usize]
                        .pos
                        .get(&node)
                        .copied()
                        .unwrap_or(0)
                }),
                AccessMode::MLog | AccessMode::MSync | AccessMode::MGlobal => {
                    self.files[file as usize].shared_pos
                }
                AccessMode::MRecord => {
                    let st = self.state(file);
                    let rs = st.record_size.unwrap_or(req.bytes);
                    let n = st.participants().len() as u64;
                    let rank = st.rank_of(node);
                    let k = st.op_count.get(&node).copied().unwrap_or(0);
                    (k * n + rank) * rs
                }
            };
            let issue_end = now + self.cfg.io_sw.async_issue;
            self.record(
                IoEvent::new(node, file, IoOp::AsyncRead)
                    .span(now.nanos(), issue_end.nanos())
                    .extent(resolved, req.bytes),
            );
        }
        match mode {
            AccessMode::MUnix | AccessMode::MAsync => {
                let shared = self.state(file).opener_count() > 1;
                let st = self.state(file);
                let pos = st.pos.entry(node).or_insert(0);
                let offset = req.offset.unwrap_or(*pos);
                *pos = offset + req.bytes;
                // M_UNIX preserves operation atomicity: concurrent writers
                // to a shared file serialize at the file's metadata owner.
                // M_ASYNC explicitly waives atomicity and skips this.
                if write && shared && mode == AccessMode::MUnix {
                    let rpc = self.cfg.io_sw.atomic_write_rpc;
                    let free = &mut self.seek_free[file as usize];
                    let acquire = (*free).max(now) + rpc;
                    *free = acquire;
                    let id = self.next_deferred;
                    self.next_deferred += 1;
                    self.deferred.insert(
                        id,
                        Deferred {
                            token,
                            node,
                            file,
                            write,
                            is_async,
                            offset,
                            bytes: req.bytes,
                            issued: now,
                        },
                    );
                    sched.timer(acquire, id);
                } else {
                    self.dispatch(
                        now,
                        token,
                        node,
                        file,
                        write,
                        offset,
                        req.bytes,
                        now,
                        is_async,
                        Vec::new(),
                        sched,
                    );
                }
            }
            AccessMode::MRecord => {
                let st = self.state(file);
                let rs = *st.record_size.get_or_insert(req.bytes);
                assert_eq!(
                    req.bytes, rs,
                    "M_RECORD requires fixed-size records ({rs} B) on {}",
                    st.spec.name
                );
                let n = st.participants().len() as u64;
                let rank = st.rank_of(node);
                let k = st.op_count.entry(node).or_insert(0);
                let record_index = *k * n + rank;
                *k += 1;
                let offset = record_index * rs;
                self.dispatch(
                    now,
                    token,
                    node,
                    file,
                    write,
                    offset,
                    req.bytes,
                    now,
                    is_async,
                    Vec::new(),
                    sched,
                );
            }
            AccessMode::MLog => {
                // Acquire the shared pointer token (serialized), then run.
                let token_cost = self.cfg.io_sw.pointer_token;
                let st = self.state(file);
                let acquire = st.token_free.max(now) + token_cost;
                st.token_free = acquire;
                let offset = st.shared_pos;
                st.shared_pos += req.bytes;
                if acquire > now {
                    let id = self.next_deferred;
                    self.next_deferred += 1;
                    self.deferred.insert(
                        id,
                        Deferred {
                            token,
                            node,
                            file,
                            write,
                            is_async,
                            offset,
                            bytes: req.bytes,
                            issued: now,
                        },
                    );
                    sched.timer(acquire, id);
                } else {
                    self.dispatch(
                        now,
                        token,
                        node,
                        file,
                        write,
                        offset,
                        req.bytes,
                        now,
                        is_async,
                        Vec::new(),
                        sched,
                    );
                }
            }
            AccessMode::MSync => {
                let parked = self.sync_parked.entry(file).or_default();
                let prev = parked.insert(
                    node,
                    ParkedSync {
                        token,
                        write,
                        bytes: req.bytes,
                        issued: now,
                        is_async,
                    },
                );
                assert!(prev.is_none(), "node {node} issued overlapping M_SYNC ops");
                self.drain_sync(now, file, sched);
            }
            AccessMode::MGlobal => {
                let n = {
                    let st = self.state(file);
                    st.participants().len()
                };
                let waiting = self.global_waiting.entry(file).or_default();
                waiting.push((token, node, now, is_async, req.bytes));
                if waiting.len() == n {
                    // `waiting` came from this entry two statements ago; if
                    // the map has lost it, the collective state is corrupt —
                    // fail the op as unavailable rather than panic the run.
                    let Some(slot) = self.global_waiting.get_mut(&file) else {
                        debug_assert!(false, "M_GLOBAL wait group vanished for file {file}");
                        self.fault_stats.unavailable += 1;
                        sched.complete_io(
                            token,
                            now,
                            IoResult {
                                bytes: 0,
                                queued: SimDuration::ZERO,
                                service: SimDuration::ZERO,
                                fault: Some(IoFault::Unavailable),
                            },
                        );
                        return;
                    };
                    let group = std::mem::take(slot);
                    let bytes = group[0].4;
                    debug_assert!(group.iter().all(|g| g.4 == bytes));
                    let st = self.state(file);
                    let offset = st.shared_pos;
                    st.shared_pos += bytes;
                    let (lead_tok, lead_node, lead_issued, lead_async, _) = group[0];
                    let collective: Vec<(IoToken, NodeId, SimTime)> = group[1..]
                        .iter()
                        .map(|&(t, nd, iss, _, _)| (t, nd, iss))
                        .collect();
                    self.dispatch(
                        now,
                        lead_tok,
                        lead_node,
                        file,
                        write,
                        offset,
                        bytes,
                        lead_issued,
                        lead_async,
                        collective,
                        sched,
                    );
                }
            }
        }
    }

    /// Run every parked M_SYNC request whose turn has come.
    fn drain_sync(&mut self, now: SimTime, file: u32, sched: &mut Sched) {
        loop {
            let next = {
                let st = self.state(file);
                let parts = st.participants().to_vec();
                let expected = parts[(st.turn % parts.len() as u64) as usize];
                let parked = self.sync_parked.entry(file).or_default();
                match parked.remove(&expected) {
                    Some(p) => {
                        let st = self.state(file);
                        st.turn += 1;
                        let offset = st.shared_pos;
                        st.shared_pos += p.bytes;
                        Some((expected, p, offset))
                    }
                    None => None,
                }
            };
            match next {
                Some((node, p, offset)) => {
                    self.dispatch(
                        now,
                        p.token,
                        node,
                        file,
                        p.write,
                        offset,
                        p.bytes,
                        p.issued,
                        p.is_async,
                        Vec::new(),
                        sched,
                    );
                }
                None => break,
            }
        }
    }
}

impl IoService for Pfs {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        match req.verb {
            IoVerb::Open => {
                let mode = AccessMode::from_code(req.hint)
                    .unwrap_or_else(|| panic!("bad access-mode code {}", req.hint));
                let create = self.state(req.file).open(node, mode);
                let cost = if create {
                    self.cfg.io_sw.create
                } else {
                    self.cfg.io_sw.open
                };
                let done = self.meta_op(now, cost);
                self.record(
                    IoEvent::new(node, req.file, IoOp::Open).span(now.nanos(), done.nanos()),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes: 0,
                        queued: SimDuration::ZERO,
                        service: done.since(now),
                        fault: None,
                    },
                );
            }
            IoVerb::Close => {
                self.state(req.file).close(node);
                let done = self.meta_op(now, self.cfg.io_sw.close);
                self.record(
                    IoEvent::new(node, req.file, IoOp::Close).span(now.nanos(), done.nanos()),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes: 0,
                        queued: SimDuration::ZERO,
                        service: done.since(now),
                        fault: None,
                    },
                );
            }
            IoVerb::Seek => {
                let target = req.offset.expect("seek needs an offset");
                let shared = self.state(req.file).opener_count() > 1;
                let (done, distance) = if shared {
                    // Serialized at the file's metadata owner.
                    let cost = self.cfg.io_sw.seek_shared_rpc;
                    let free = &mut self.seek_free[req.file as usize];
                    let start = (*free).max(now);
                    let done = start + cost;
                    *free = done;
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (done, distance)
                } else {
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (now + self.cfg.io_sw.seek_local, distance)
                };
                self.record(
                    IoEvent::new(node, req.file, IoOp::Seek)
                        .span(now.nanos(), done.nanos())
                        .extent(target, distance),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes: 0,
                        queued: SimDuration::ZERO,
                        service: done.since(now),
                        fault: None,
                    },
                );
            }
            IoVerb::Flush => {
                let done = now + self.cfg.io_sw.flush;
                self.record(
                    IoEvent::new(node, req.file, IoOp::Flush).span(now.nanos(), done.nanos()),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes: 0,
                        queued: SimDuration::ZERO,
                        service: done.since(now),
                        fault: None,
                    },
                );
            }
            IoVerb::Lsize => {
                let done = self.meta_op(now, self.cfg.io_sw.lsize);
                let len = self.file_len(req.file);
                self.record(
                    IoEvent::new(node, req.file, IoOp::Lsize).span(now.nanos(), done.nanos()),
                );
                sched.complete_io(
                    token,
                    done,
                    IoResult {
                        bytes: len,
                        queued: SimDuration::ZERO,
                        service: done.since(now),
                        fault: None,
                    },
                );
            }
            IoVerb::Sync => {
                // Commit: acknowledge only after every in-flight write on
                // the file has reached the arrays. PFS is write-through, so
                // "no outstanding writes" is the durable point; the commit
                // still reports `DataLoss` if redundancy is exhausted.
                // Traced as Forflush — the paper's vocabulary has no
                // separate commit row.
                if self.has_outstanding_writes(req.file) {
                    self.sync_waiters.push(SyncWaiter {
                        token,
                        node,
                        file: req.file,
                        issued: now,
                    });
                } else {
                    self.complete_sync(token, node, req.file, now, now, sched);
                }
            }
            IoVerb::Read => self.data_op(now, token, node, req, false, is_async, sched),
            IoVerb::Write => self.data_op(now, token, node, req, true, is_async, sched),
        }
    }

    fn on_start(&mut self, sched: &mut Sched) {
        // Arm one absolute-time timer per scheduled fault event. Empty
        // schedule (the healthy case): no timers, bit-identical runs.
        for ev in self.schedule.clone().events() {
            let id = self.next_deferred;
            self.next_deferred += 1;
            self.fault_timers.insert(id, *ev);
            sched.timer(ev.at, id);
        }
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        if (timer as usize) < self.ionodes.len() {
            // An I/O node finished its in-service work. Stale timers happen
            // only under faults (a stall postponed the completion, or a
            // crash voided it): the re-armed timer covers the real time.
            let io = timer as usize;
            let due = matches!(self.ionodes[io].next_done(), Some(t) if t <= now);
            if !due {
                debug_assert!(
                    self.faults_enabled(),
                    "stale i/o-node timer on a healthy run"
                );
                return;
            }
            let completion = self.ionodes[io].complete_head(now);
            if let Some(t) = self.ionodes[io].next_done() {
                sched.timer(t, timer);
            }
            let (seg_id, data_lost) = match completion {
                Completion::App { id, data_lost } => (id, data_lost),
                // Background rebuild traffic: no request to complete.
                Completion::Rebuild { .. } => return,
            };
            let Some(token) = self.seg_owner.remove(&seg_id) else {
                // The owning request already failed (timeout/unavailable).
                debug_assert!(self.faults_enabled(), "segment with no owner");
                return;
            };
            let Some(p) = self.pending.get_mut(&token) else {
                debug_assert!(self.faults_enabled(), "pending missing");
                return;
            };
            if data_lost {
                self.fault_stats.data_loss_segments += 1;
                p.fault = Some(IoFault::DataLoss);
            }
            p.segs_left -= 1;
            if p.segs_left == 0 {
                // `get_mut` above proved the entry exists; a failed remove
                // means the pending map is corrupt. Degrade to a typed
                // fault on the token instead of panicking the worker.
                let Some(p) = self.pending.remove(&token) else {
                    debug_assert!(false, "pending entry vanished for token {token}");
                    self.fail_token(token, IoFault::Unavailable, now, sched);
                    return;
                };
                self.finish(p, token, now, sched);
            }
        } else if let Some(ev) = self.fault_timers.remove(&timer) {
            self.apply_fault(now, ev, sched);
        } else if let Some(r) = self.retry_timers.remove(&timer) {
            // Retry only while the owning request is still alive.
            if self.seg_owner.contains_key(&r.req.id) {
                self.submit_seg(now, r.io, r.req, r.attempt, sched);
            }
        } else if let Some(token) = self.timeout_timers.remove(&timer) {
            if self.pending.contains_key(&token) {
                self.fault_stats.timeouts += 1;
                self.fail_token(token, IoFault::Timeout, now, sched);
            }
        } else {
            // Deferred dispatch (M_LOG pointer-token acquisition).
            let d = self.deferred.remove(&timer).expect("unknown deferred op");
            self.dispatch(
                now,
                d.token,
                d.node,
                d.file,
                d.write,
                d.offset,
                d.bytes,
                d.issued,
                d.is_async,
                Vec::new(),
                sched,
            );
        }
    }

    fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
        self.cfg.io_sw.async_issue
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.record(
            IoEvent::new(node, file, IoOp::IoWait).span(wait_start.nanos(), wait_end.nanos()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::mesh::Mesh;
    use paragon_sim::program::{NodeProgram, ScriptOp, ScriptProgram};
    use paragon_sim::Engine;
    use sio_core::trace::Trace;

    fn run_scripts(
        machine: &MachineConfig,
        files: Vec<FileSpec>,
        scripts: Vec<Vec<ScriptOp>>,
    ) -> (Trace, paragon_sim::EngineReport) {
        let mut pfs = Pfs::new(machine, TraceSink::new("test"));
        for f in files {
            pfs.register(f);
        }
        let programs: Vec<Box<dyn NodeProgram>> = scripts
            .into_iter()
            .map(|s| Box::new(ScriptProgram::new(s)) as Box<dyn NodeProgram>)
            .collect();
        let mesh = Mesh::for_nodes(machine.compute_nodes, machine.io_nodes);
        let mut engine = Engine::new(mesh, machine.comm, programs, pfs);
        let report = engine.run();
        assert!(report.clean(), "blocked nodes: {:?}", report.blocked);
        let mut pfs = engine.into_service();
        pfs.sink_mut()
            .set_run_info(machine.compute_nodes, report.wall.nanos());
        (pfs.finish_trace(), report)
    }

    fn machine() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn open(file: u32, mode: AccessMode) -> ScriptOp {
        ScriptOp::Io(IoRequest::open(file, mode.code()))
    }

    #[test]
    fn open_write_read_close_roundtrip() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 100_000)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 100_000)),
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (trace, report) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        assert_eq!(trace.of_op(IoOp::Write).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 1);
        assert_eq!(trace.of_op(IoOp::Seek).count(), 1);
        assert_eq!(trace.of_op(IoOp::Open).count(), 1);
        assert_eq!(trace.of_op(IoOp::Close).count(), 1);
        // Read returns what was written.
        let rd = trace.of_op(IoOp::Read).next().unwrap();
        assert_eq!(rd.bytes, 100_000);
        assert!(report.wall > SimTime::ZERO);
    }

    #[test]
    fn munix_pointer_advances_per_node() {
        // Two nodes write 1000 B each twice into their own regions.
        let mk = |node: u32| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Io(IoRequest::seek(0, node as u64 * 10_000)),
                ScriptOp::Io(IoRequest::write(0, 1000)),
                ScriptOp::Io(IoRequest::write(0, 1000)),
                ScriptOp::Io(IoRequest::close(0)),
            ]
        };
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![mk(0), mk(1)]);
        let mut writes: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        writes.sort_unstable();
        assert_eq!(writes, vec![(0, 0), (0, 1000), (1, 10_000), (1, 11_000)]);
    }

    #[test]
    fn reads_clamp_to_eof() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 500)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 10_000)),
            ScriptOp::Io(IoRequest::read(0, 10_000)), // past EOF: 0 bytes
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let sizes: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.bytes).collect();
        assert_eq!(sizes, vec![500, 0]);
    }

    #[test]
    fn input_files_are_readable_without_writes() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::read(0, 4096)),
        ];
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::input("in", 1 << 20)],
            vec![script],
        );
        assert_eq!(trace.of_op(IoOp::Read).next().unwrap().bytes, 4096);
    }

    #[test]
    fn mrecord_interleaves_records_in_node_order() {
        let mk = |_node: u32| {
            vec![
                open(0, AccessMode::MRecord),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, 2048)),
                ScriptOp::Io(IoRequest::write(0, 2048)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("rec")],
            vec![mk(0), mk(1), mk(2)],
        );
        // Node n's k-th record lands at (k*3 + n) * 2048.
        let mut offs: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        offs.sort_unstable();
        assert_eq!(
            offs,
            vec![
                (0, 0),
                (0, 3 * 2048),
                (1, 2048),
                (1, 4 * 2048),
                (2, 2 * 2048),
                (2, 5 * 2048)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "fixed-size records")]
    fn mrecord_rejects_variable_sizes() {
        let script = vec![
            open(0, AccessMode::MRecord),
            ScriptOp::Io(IoRequest::write(0, 2048)),
            ScriptOp::Io(IoRequest::write(0, 1024)),
        ];
        let _ = run_scripts(&machine(), vec![FileSpec::output("rec")], vec![script]);
    }

    #[test]
    fn mlog_shared_pointer_packs_variable_records() {
        let mk = |bytes: u64| {
            vec![
                open(0, AccessMode::MLog),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, bytes)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("log")],
            vec![mk(100), mk(200), mk(300)],
        );
        let mut extents: Vec<(u64, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.offset, e.bytes))
            .collect();
        extents.sort_unstable();
        // Records are contiguous, non-overlapping, total 600.
        let mut expect_off = 0;
        for (off, bytes) in extents {
            assert_eq!(off, expect_off);
            expect_off += bytes;
        }
        assert_eq!(expect_off, 600);
    }

    #[test]
    fn msync_enforces_node_order() {
        // Node 2 issues first (no compute delay); nodes 0 and 1 delayed.
        // The shared pointer must still assign offsets in node order.
        let mk = |node: u32| {
            let delay = SimDuration::from_millis(10 * (2 - node) as u64);
            vec![
                open(0, AccessMode::MSync),
                ScriptOp::Barrier(0),
                ScriptOp::Compute(delay),
                ScriptOp::Io(IoRequest::write(0, 1000)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("sync")],
            vec![mk(0), mk(1), mk(2)],
        );
        let mut by_node: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        by_node.sort_unstable();
        assert_eq!(by_node, vec![(0, 0), (1, 1000), (2, 2000)]);
    }

    #[test]
    fn mglobal_coalesces_into_one_physical_read() {
        let mk = || {
            vec![
                open(0, AccessMode::MGlobal),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::read(0, 8192)),
                ScriptOp::Io(IoRequest::read(0, 8192)),
            ]
        };
        let m = MachineConfig::tiny(4, 2);
        let mut pfs = Pfs::new(&m, TraceSink::new("g"));
        pfs.register(FileSpec::input("shared", 1 << 20));
        let programs: Vec<Box<dyn NodeProgram>> = (0..4)
            .map(|_| Box::new(ScriptProgram::new(mk())) as Box<dyn NodeProgram>)
            .collect();
        let mesh = Mesh::for_nodes(4, 2);
        let mut engine = Engine::new(mesh, m.comm, programs, pfs);
        let report = engine.run();
        assert!(report.clean());
        // All four nodes see both reads traced...
        let segments = engine.service().segments_completed();
        let trace = engine.into_service().finish_trace();
        assert_eq!(trace.of_op(IoOp::Read).count(), 8);
        // ...at exactly two distinct offsets (shared pointer advanced twice).
        let mut offs: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.offset).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs, vec![0, 8192]);
        // ...but the disks served only one request's worth of segments per
        // coalesced read: 8192 B fits one 64 KB unit = 1 segment, × 2 reads.
        assert_eq!(segments, 2);
    }

    #[test]
    fn shared_seeks_serialize_and_cost_more() {
        // Two nodes sharing a file seek simultaneously; durations reflect
        // serialization at the metadata owner.
        let mk = |node: u32| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, node as u64 * 4096)),
            ]
        };
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::output("shared")],
            vec![mk(0), mk(1)],
        );
        let mut durations: Vec<u64> = trace.of_op(IoOp::Seek).map(|e| e.duration()).collect();
        durations.sort_unstable();
        let rpc = MachineConfig::tiny(4, 2).io_sw.seek_shared_rpc.nanos();
        assert!(durations[0] >= rpc);
        assert!(
            durations[1] >= 2 * rpc,
            "second seek must queue: {durations:?}"
        );

        // A single-opener file seeks locally and cheaply.
        let solo = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::seek(0, 4096)),
        ];
        let (strace, _) = run_scripts(&machine(), vec![FileSpec::output("solo")], vec![solo]);
        let local = MachineConfig::tiny(4, 2).io_sw.seek_local.nanos();
        assert_eq!(strace.of_op(IoOp::Seek).next().unwrap().duration(), local);
    }

    #[test]
    fn seek_records_distance() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::seek(0, 10_000)),
            ScriptOp::Io(IoRequest::seek(0, 4_000)),
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let dists: Vec<u64> = trace.of_op(IoOp::Seek).map(|e| e.bytes).collect();
        assert_eq!(dists, vec![10_000, 6_000]);
    }

    #[test]
    fn async_read_traces_issue_and_iowait() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::IoAsync(IoRequest::read(0, 1 << 20)),
            ScriptOp::WaitOldest,
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::input("data", 4 << 20)],
            vec![script],
        );
        assert_eq!(trace.of_op(IoOp::AsyncRead).count(), 1);
        assert_eq!(trace.of_op(IoOp::IoWait).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 0);
        // The issue event is short; the iowait carries the real latency.
        let issue = trace.of_op(IoOp::AsyncRead).next().unwrap().duration();
        let wait = trace.of_op(IoOp::IoWait).next().unwrap().duration();
        assert!(issue < wait, "issue {issue} !< wait {wait}");
    }

    #[test]
    fn create_costs_more_than_open() {
        let script = vec![
            open(0, AccessMode::MUnix), // create
            ScriptOp::Io(IoRequest::close(0)),
            open(0, AccessMode::MUnix), // plain open
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let opens: Vec<u64> = trace.of_op(IoOp::Open).map(|e| e.duration()).collect();
        assert!(
            opens[0] > opens[1],
            "create {} !> open {}",
            opens[0],
            opens[1]
        );
    }

    #[test]
    fn flush_and_lsize_trace() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 100)),
            ScriptOp::Io(IoRequest::flush(0)),
            ScriptOp::Io(IoRequest::lsize(0)),
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        assert_eq!(trace.of_op(IoOp::Flush).count(), 1);
        assert_eq!(trace.of_op(IoOp::Lsize).count(), 1);
    }

    #[test]
    fn concurrent_bursts_queue_at_io_nodes() {
        // 4 nodes write 64 KB each simultaneously through 1 I/O node: the
        // last writer's latency must exceed the first's (queueing).
        let mk = || {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, 65536)),
            ]
        };
        let m = MachineConfig::tiny(4, 1);
        let (trace, _) = run_scripts(
            &m,
            vec![FileSpec::output("hot")],
            vec![mk(), mk(), mk(), mk()],
        );
        let mut durs: Vec<u64> = trace.of_op(IoOp::Write).map(|e| e.duration()).collect();
        durs.sort_unstable();
        assert!(durs[3] > durs[0] * 2, "queueing invisible: {durs:?}");
    }

    #[test]
    fn degraded_array_slows_reads() {
        let script = || {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Io(IoRequest::read(0, 64 * 1024)),
            ]
        };
        let m = MachineConfig::tiny(1, 1);
        let run = |fail: bool| {
            let mut pfs = Pfs::new(&m, TraceSink::new("d"));
            pfs.register(FileSpec::input("data", 1 << 20));
            if fail {
                pfs.fail_disk(0, 0).unwrap();
            }
            let programs: Vec<Box<dyn NodeProgram>> = vec![Box::new(ScriptProgram::new(script()))];
            let mut engine = Engine::new(Mesh::for_nodes(1, 1), m.comm, programs, pfs);
            engine.run();
            let trace = engine.into_service().finish_trace();
            let dur = trace.of_op(IoOp::Read).next().unwrap().duration();
            dur
        };
        assert!(run(true) > run(false));
    }
}

//! The PFS model: a [`paragon_sim::IoService`] implementation.
//!
//! `Pfs` interprets every [`IoVerb`] with the semantics of §3.2:
//!
//! * **metadata path** — opens, creates, closes, and `lsize` serialize
//!   through one metadata server ([`MetaServer`]); *seeks on shared files*
//!   serialize at the file's metadata owner (per-file `seek_free`), which is
//!   what makes ESCAT's 128-node synchronized seeks so expensive (Table 1);
//!   seeks on single-opener files are a cheap local pointer update (HTF
//!   `pscf`, Table 5);
//! * **data path** — the access mode resolves the request's offset
//!   (per-node pointer, shared pointer with token serialization, record
//!   interleaving, or collective coalescing), then the request is staged and
//!   pushed through the shared [`SegmentPump`] under the buddy-failover
//!   policy, and completes when its last segment does plus the client copy
//!   cost;
//! * **tracing** — every application-visible call is recorded through the
//!   shared [`TraceRecorder`]; asynchronous reads record their issue cost,
//!   and the engine's `on_iowait` hook records the un-overlapped wait,
//!   exactly the two rows RENDER's Table 3 reports.
//!
//! Everything mode-agnostic — file table, stripe layout, segment pump,
//! fault routing, sync parking, trace recording — lives in `sio-fskit`;
//! this module is the PFS *policy* over that substrate.

use paragon_sim::calibration::FaultParams;
use paragon_sim::engine::{IoService, Sched};
use paragon_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use paragon_sim::ionode::{RejectReason, SegmentReq};
use paragon_sim::program::{IoFault, IoRequest, IoResult, IoToken, IoVerb};
use paragon_sim::raid::RaidError;
use paragon_sim::{LinkQuality, LinkState};
use paragon_sim::{MachineConfig, NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::hash::FastMap;
use sio_core::trace::{Trace, TraceSink};
use sio_fskit::file::{FileSpec, FileState};
use sio_fskit::mode::AccessMode;
use sio_fskit::pump::{backoff_delay, FailoverPolicy, NodeLoad, NodeTick, SegmentPump};
use sio_fskit::table::{MetaStats, MetaVerdict};
use sio_fskit::{
    FaultRouter, FileTable, MetaServer, SyncLedger, SyncWaiter, TimerLanes, TraceRecorder,
};
use std::collections::BTreeMap;

pub use sio_fskit::client::ClientPath;
pub use sio_fskit::config::{FsConfig as PfsConfig, DEFAULT_FILE_SLOT};

#[derive(Debug)]
struct Pending {
    file: u32,
    write: bool,
    is_async: bool,
    offset: u64,
    bytes: u64,
    issued: SimTime,
    node: NodeId,
    segs_left: u32,
    /// Segment ids issued for this request (cleanup on early failure).
    seg_ids: Vec<u64>,
    /// First fault observed on any segment of this request.
    fault: Option<IoFault>,
    /// Extra completers for M_GLOBAL collectives: (token, node, issued).
    collective: Vec<(IoToken, NodeId, SimTime)>,
}

/// Counters for the fault-handling machinery (all zero on a healthy run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Segment re-submissions scheduled with backoff.
    pub retries: u64,
    /// Segments failed over to the buddy node.
    pub failovers: u64,
    /// Segments lost to node crashes (in service or queued).
    pub lost_segments: u64,
    /// Segments served from an array with exhausted redundancy.
    pub data_loss_segments: u64,
    /// Requests failed by the hard deadline.
    pub timeouts: u64,
    /// Requests failed because no server would accept them.
    pub unavailable: u64,
    /// Second-failure events that exhausted an array's redundancy.
    pub data_loss_events: u64,
}

#[derive(Debug, Clone, Copy)]
struct Deferred {
    token: IoToken,
    node: NodeId,
    file: u32,
    write: bool,
    is_async: bool,
    offset: u64,
    bytes: u64,
    issued: SimTime,
}

/// A metadata RPC parked by a full metadata outage, awaiting a backoff
/// retry probe.
#[derive(Debug, Clone, Copy)]
struct ParkedMeta {
    token: IoToken,
    node: NodeId,
    file: u32,
    op: IoOp,
    cost: SimDuration,
    /// Result bytes on success (file length for `Lsize`, 0 otherwise).
    bytes: u64,
    issued: SimTime,
    /// Retry probes already made.
    attempt: u32,
}

#[derive(Debug, Clone, Copy)]
struct ParkedSync {
    token: IoToken,
    write: bool,
    bytes: u64,
    issued: SimTime,
    is_async: bool,
}

/// The Intel PFS model.
pub struct Pfs {
    cfg: PfsConfig,
    /// Segment pump over the I/O nodes (buddy-failover policy).
    pump: SegmentPump,
    files: FileTable,
    recorder: TraceRecorder,
    /// Global metadata server (replicated; buddy failover under faults).
    meta: MetaServer,
    /// Metadata RPCs parked by a full outage (timer id -> parked RPC).
    parked_meta: FastMap<u64, ParkedMeta>,
    /// Interconnect link quality per I/O-node region (collective costs).
    links: LinkState,
    /// Per-file metadata-owner queues for shared-file seeks.
    seek_free: Vec<SimTime>,
    pending: FastMap<IoToken, Pending>,
    deferred: FastMap<u64, Deferred>,
    /// Timer-id lanes: per-I/O-node completion timers plus the dynamic
    /// lane for deferred completions, retries, deadlines, and faults.
    timers: TimerLanes,
    /// M_GLOBAL coalescing: file -> waiting participants.
    #[allow(clippy::type_complexity)]
    global_waiting: FastMap<u32, Vec<(IoToken, NodeId, SimTime, bool, u64)>>,
    /// M_SYNC parking: file -> node -> parked request.
    sync_parked: FastMap<u32, BTreeMap<NodeId, ParkedSync>>,
    /// `Sync` commits parked until their file has no in-flight writes.
    syncs: SyncLedger,
    /// Per-node serial client copy path.
    client: ClientPath,
    /// Fault-handling calibration (backoff, failover, deadline).
    fault_params: FaultParams,
    /// Scheduled fault delivery; inert on a healthy run.
    faults: FaultRouter,
    /// Armed per-request deadline timers (timer id -> request token).
    timeout_timers: FastMap<u64, IoToken>,
    /// Backend-local counters; pump counters merge in at the getter.
    fault_stats: FaultStats,
}

impl Pfs {
    /// Build a PFS over the given machine, tracing into `sink` (owned; take
    /// the frozen trace back with [`Pfs::finish_trace`] after the run).
    pub fn new(machine: &MachineConfig, sink: TraceSink) -> Pfs {
        Pfs::with_faults(machine, sink, FaultSchedule::new())
    }

    /// Build a PFS with an injected fault schedule. An empty schedule is
    /// exactly [`Pfs::new`]: the fault machinery arms no timers and the run
    /// is bit-identical to a healthy one.
    pub fn with_faults(machine: &MachineConfig, sink: TraceSink, schedule: FaultSchedule) -> Pfs {
        let cfg = PfsConfig::from_machine(machine);
        let ionodes = machine.build_io_nodes();
        let faults = FaultRouter::new(schedule, ionodes.len());
        let timers = TimerLanes::new(ionodes.len());
        let links = LinkState::healthy(ionodes.len());
        let pump = SegmentPump::new(
            ionodes,
            FailoverPolicy::Buddy {
                max_retries: machine.fault.max_retries,
            },
            machine.fault.retry_base,
        );
        let files = FileTable::new(cfg.file_slot, cfg.array_capacity);
        Pfs {
            cfg,
            pump,
            files,
            recorder: TraceRecorder::new(sink),
            meta: MetaServer::new(),
            parked_meta: FastMap::default(),
            links,
            seek_free: Vec::new(),
            pending: FastMap::default(),
            deferred: FastMap::default(),
            timers,
            global_waiting: FastMap::default(),
            sync_parked: FastMap::default(),
            syncs: SyncLedger::new(),
            client: ClientPath::new(),
            fault_params: machine.fault,
            faults,
            timeout_timers: FastMap::default(),
            fault_stats: FaultStats::default(),
        }
    }

    /// Whether a fault schedule is in play (arms deadlines and lenient
    /// completion paths; a healthy run keeps the strict invariants).
    fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// Register a file; returns its id (used in [`IoRequest::file`]).
    /// Panics when the fixed-slot allocator is exhausted — use
    /// [`Pfs::try_register`] for a typed error.
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        let id = self.files.register(spec);
        self.seek_free.push(SimTime::ZERO);
        id
    }

    /// Register a file, returning [`IoFault::Unavailable`] when the
    /// fixed-slot allocator is exhausted.
    pub fn try_register(&mut self, spec: FileSpec) -> Result<u32, IoFault> {
        let id = self.files.try_register(spec)?;
        self.seek_free.push(SimTime::ZERO);
        Ok(id)
    }

    /// Current length of a registered file.
    pub fn file_len(&self, file: u32) -> u64 {
        self.files.len_of(file)
    }

    /// Mutable access to the trace sink (e.g. to set run metadata).
    pub fn sink_mut(&mut self) -> &mut TraceSink {
        self.recorder.sink_mut()
    }

    /// Consume the file system, freezing its captured trace.
    pub fn finish_trace(self) -> Trace {
        self.recorder.finish()
    }

    /// Inject a disk failure into one I/O node's array (experiment A4 and
    /// the X4 fault suite). A second failure on the same array is a typed
    /// error, not a panic.
    pub fn fail_disk(&mut self, io_node: u32, disk: u32) -> Result<(), RaidError> {
        self.pump.node_mut(io_node).array_mut().fail_disk(disk)
    }

    /// Metadata fault-machinery counters (all zero on a healthy run).
    pub fn meta_stats(&self) -> MetaStats {
        self.meta.stats()
    }

    /// Fault-machinery counters (all zero on a healthy run).
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.fault_stats;
        let p = self.pump.stats();
        s.retries += p.retries;
        s.failovers += p.failovers;
        s
    }

    /// Rebuild chunks completed across all I/O nodes.
    pub fn rebuild_chunks_total(&self) -> u64 {
        self.pump.rebuild_chunks_total()
    }

    /// Member bytes rebuilt across all I/O nodes.
    pub fn rebuilt_bytes_total(&self) -> u64 {
        self.pump.rebuilt_bytes_total()
    }

    /// I/O nodes whose arrays are still degraded.
    pub fn degraded_nodes(&self) -> u32 {
        self.pump.degraded_nodes()
    }

    /// Sum of queueing delay accumulated across all I/O nodes.
    pub fn total_queueing(&self) -> SimDuration {
        self.pump.total_queueing()
    }

    /// Total stripe segments completed across all I/O nodes.
    pub fn segments_completed(&self) -> u64 {
        self.pump.segments_completed()
    }

    /// Accepted-request accounting per I/O node.
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.pump.node_loads()
    }

    /// Whether any accepted write was lost to exhausted redundancy.
    pub fn any_data_lost(&self) -> bool {
        self.pump.any_data_lost()
    }

    /// Accept one coalesced burst-log drain extent as a background write:
    /// the full dispatch path (staging, backoff, buddy failover, fault
    /// typing, timeouts) with no application-visible trace event — the
    /// caller owns `token` and hears the completion through `sched`.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        self.dispatch(
            now,
            token,
            node,
            file,
            true,
            offset,
            bytes,
            now,
            true,
            Vec::new(),
            sched,
        );
    }

    fn state(&mut self, file: u32) -> &mut FileState {
        self.files.state(file)
    }

    fn record(&mut self, ev: IoEvent) {
        self.recorder.record(ev);
    }

    /// Dispatch a resolved data operation to the I/O nodes.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        write: bool,
        offset: u64,
        bytes: u64,
        issued: SimTime,
        is_async: bool,
        collective: Vec<(IoToken, NodeId, SimTime)>,
        sched: &mut Sched,
    ) {
        let eff_bytes = {
            let st = self.state(file);
            if write {
                st.extend_to(offset + bytes);
                bytes
            } else {
                bytes.min(st.len.saturating_sub(offset))
            }
        };
        if eff_bytes == 0 {
            // Nothing to move: a short software path only.
            let done = now + SimDuration::from_micros(200);
            self.finish(
                Pending {
                    file,
                    write,
                    is_async,
                    offset,
                    bytes: 0,
                    issued,
                    node,
                    segs_left: 0,
                    seg_ids: Vec::new(),
                    fault: None,
                    collective,
                },
                token,
                done,
                sched,
            );
            return;
        }
        let slot_base = self.files.slot_base(file);
        let staged = self.pump.stage_extent(
            &self.cfg.layout,
            slot_base,
            self.cfg.array_capacity,
            offset,
            eff_bytes,
            write,
            token,
        );
        let (reqs, seg_ids) = match staged {
            Ok(v) => v,
            Err(fault) => {
                // The request overflows its allocator slot: a typed
                // data-path failure on this request, not a crash of the run.
                self.pending.insert(
                    token,
                    Pending {
                        file,
                        write,
                        is_async,
                        offset,
                        bytes: eff_bytes,
                        issued,
                        node,
                        segs_left: 0,
                        seg_ids: Vec::new(),
                        fault: None,
                        collective,
                    },
                );
                self.fault_stats.unavailable += 1;
                self.fail_token(token, fault, now, sched);
                return;
            }
        };
        // The request must be pending before any segment is submitted: a
        // rejection chain (both primary and buddy down) can fail the whole
        // token mid-loop.
        self.pending.insert(
            token,
            Pending {
                file,
                write,
                is_async,
                offset,
                bytes: eff_bytes,
                issued,
                node,
                segs_left: reqs.len() as u32,
                seg_ids,
                fault: None,
                collective,
            },
        );
        for (io, req) in reqs {
            self.submit_or_fail(now, io, req, 0, sched);
        }
        if self.faults_enabled() && self.pending.contains_key(&token) {
            // Hard per-request deadline: no request hangs forever under a
            // fault schedule with no recovery.
            let id = self.timers.alloc();
            self.timeout_timers.insert(id, token);
            sched.timer(now + self.fault_params.request_timeout, id);
        }
    }

    /// Push one segment through the pump; when both the primary and its
    /// buddy refuse it, fail the owning request as unavailable.
    fn submit_or_fail(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        sched: &mut Sched,
    ) {
        if let Some(token) = self
            .pump
            .submit_seg(now, io, req, attempt, &mut self.timers, sched)
        {
            self.fault_stats.unavailable += 1;
            self.fail_token(token, IoFault::Unavailable, now, sched);
        }
    }

    /// Whether `file` still has in-flight (dispatched or deferred) writes —
    /// the data a `Sync` commit must wait out. PFS is write-through, so
    /// once these land the bytes are on the arrays.
    fn has_outstanding_writes(&self, file: u32) -> bool {
        self.pending.values().any(|p| p.file == file && p.write)
            || self.deferred.values().any(|d| d.file == file && d.write)
    }

    /// Acknowledge a commit: the software flush cost, plus a typed
    /// `DataLoss` fault if any array holding the file's stripes has
    /// exhausted its redundancy (durable ≠ healthy).
    fn complete_sync(
        &mut self,
        token: IoToken,
        node: NodeId,
        file: u32,
        now: SimTime,
        issued: SimTime,
        sched: &mut Sched,
    ) {
        let fault = if self.pump.any_data_lost() {
            Some(IoFault::DataLoss)
        } else {
            None
        };
        self.recorder.complete_commit(
            sched,
            token,
            node,
            file,
            issued,
            now,
            self.cfg.io_sw.flush,
            fault,
        );
    }

    /// Release every `Sync` waiter on `file` once its last in-flight write
    /// has finished (or failed — a typed write fault still unblocks the
    /// commit; the caller sees the failure on the write itself).
    fn drain_sync_waiters(&mut self, file: u32, now: SimTime, sched: &mut Sched) {
        if self.syncs.is_empty() || self.has_outstanding_writes(file) {
            return;
        }
        for w in self.syncs.take_for(file) {
            self.complete_sync(w.token, w.node, w.file, now, w.issued, sched);
        }
    }

    /// Fail a pending request (and its collective participants) with a typed
    /// fault instead of data.
    fn fail_token(&mut self, token: IoToken, fault: IoFault, now: SimTime, sched: &mut Sched) {
        let Some(p) = self.pending.remove(&token) else {
            return;
        };
        let failed_file = p.file;
        for id in &p.seg_ids {
            self.pump.forget(*id);
        }
        let op = match (p.write, p.is_async) {
            (true, _) => IoOp::Write,
            (false, false) => IoOp::Read,
            (false, true) => IoOp::AsyncRead,
        };
        let result = IoResult {
            bytes: 0,
            queued: SimDuration::ZERO,
            service: now.since(p.issued),
            fault: Some(fault),
        };
        if !p.is_async {
            self.record(
                IoEvent::new(p.node, p.file, op)
                    .span(p.issued.nanos(), now.nanos())
                    .extent(p.offset, 0),
            );
        }
        sched.complete_io(token, now, result);
        for (tok, node, issued) in p.collective {
            if !p.is_async {
                self.record(
                    IoEvent::new(node, p.file, op)
                        .span(issued.nanos(), now.nanos())
                        .extent(p.offset, 0),
                );
            }
            sched.complete_io(tok, now, result);
        }
        self.drain_sync_waiters(failed_file, now, sched);
    }

    /// Apply one scheduled fault event.
    fn apply_fault(&mut self, now: SimTime, ev: FaultEvent, sched: &mut Sched) {
        match ev.kind {
            FaultKind::DiskFail { disk } => {
                if self.pump.apply_disk_fail(ev.io_node, disk) {
                    self.fault_stats.data_loss_events += 1;
                }
            }
            FaultKind::DiskRepair => self.pump.apply_disk_repair(now, ev.io_node, sched),
            FaultKind::NodeStall { for_dur } => {
                self.pump.apply_stall(now, ev.io_node, for_dur, sched)
            }
            FaultKind::NodeCrash => {
                let lost = self.pump.crash(ev.io_node);
                self.fault_stats.lost_segments += lost.len() as u64;
                for req in lost {
                    if self.pump.owns(req.id) {
                        if let Some(token) = self.pump.handle_rejection(
                            now,
                            ev.io_node,
                            req,
                            0,
                            RejectReason::Down,
                            &mut self.timers,
                            sched,
                        ) {
                            self.fault_stats.unavailable += 1;
                            self.fail_token(token, IoFault::Unavailable, now, sched);
                        }
                    }
                }
            }
            FaultKind::NodeRecover => self.pump.recover(now, ev.io_node, sched),
            FaultKind::LinkDegrade { bw_div, lat_mult } => {
                // Data-path segments into the region's I/O node stretch by
                // the bandwidth divisor; collective costs consult the
                // region's quality through the link state.
                self.pump.apply_link_degrade(ev.io_node, bw_div);
                self.links
                    .degrade(ev.io_node, LinkQuality { bw_div, lat_mult });
            }
            FaultKind::LinkHeal => {
                self.pump.apply_link_heal(ev.io_node);
                self.links.heal(ev.io_node);
            }
            FaultKind::MetaStall { for_dur } => self.meta.stall(now, ev.io_node, for_dur),
            FaultKind::MetaCrash => self.meta.crash(ev.io_node),
            FaultKind::MetaRecover => self.meta.recover(ev.io_node),
        }
    }

    /// Serve a metadata RPC through the replicated server, parking it with
    /// bounded backoff retries when both replicas are down. A healthy run
    /// never parks, so this is bit-identical to the historical direct path.
    #[allow(clippy::too_many_arguments)]
    fn meta_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        op: IoOp,
        cost: SimDuration,
        bytes: u64,
        sched: &mut Sched,
    ) {
        match self.meta.try_op(now, cost) {
            MetaVerdict::Done(done) => {
                self.recorder
                    .complete_op(sched, token, node, file, op, now, done, None, bytes);
            }
            MetaVerdict::Outage => {
                let parked = ParkedMeta {
                    token,
                    node,
                    file,
                    op,
                    cost,
                    bytes,
                    issued: now,
                    attempt: 0,
                };
                self.park_meta(now, parked, sched);
            }
        }
    }

    /// Arm one backoff retry probe for a parked metadata RPC.
    fn park_meta(&mut self, now: SimTime, parked: ParkedMeta, sched: &mut Sched) {
        self.meta.note_retry();
        let id = self.timers.alloc();
        self.parked_meta.insert(id, parked);
        sched.timer(
            now + backoff_delay(self.fault_params.retry_base, parked.attempt),
            id,
        );
    }

    /// A parked metadata RPC's retry timer fired: re-probe the replicas,
    /// park again while the retry budget lasts, then surface the outage as
    /// a typed [`IoFault::Unavailable`] — never hang.
    fn retry_meta(&mut self, now: SimTime, mut parked: ParkedMeta, sched: &mut Sched) {
        match self.meta.try_op(now, parked.cost) {
            MetaVerdict::Done(done) => {
                self.recorder.complete_op(
                    sched,
                    parked.token,
                    parked.node,
                    parked.file,
                    parked.op,
                    parked.issued,
                    done,
                    None,
                    parked.bytes,
                );
            }
            MetaVerdict::Outage => {
                if parked.attempt < self.fault_params.max_retries {
                    parked.attempt += 1;
                    self.park_meta(now, parked, sched);
                } else {
                    self.meta.note_unavailable();
                    self.fault_stats.unavailable += 1;
                    self.recorder.fail_op(
                        sched,
                        parked.token,
                        parked.node,
                        parked.file,
                        parked.op,
                        parked.issued,
                        now,
                        IoFault::Unavailable,
                    );
                }
            }
        }
    }

    /// Complete a data request: charge the client copy cost, trace, complete
    /// every participating token.
    fn finish(&mut self, p: Pending, token: IoToken, now: SimTime, sched: &mut Sched) {
        let finished_file = p.file;
        let rate = self.cfg.io_sw.client_byte_rate;
        let mut done = self.client.copy_done(p.node, now, p.bytes, rate);
        if !p.collective.is_empty() {
            // M_GLOBAL: one physical I/O, then an internal broadcast to the
            // participant group.
            let n = (p.collective.len() + 1) as u32;
            done +=
                self.cfg
                    .mesh
                    .broadcast_time_via(&self.cfg.comm, self.links.worst(), n, p.bytes);
        }
        let op = match (p.write, p.is_async) {
            (true, _) => IoOp::Write,
            (false, false) => IoOp::Read,
            (false, true) => IoOp::AsyncRead,
        };
        let result = IoResult {
            bytes: p.bytes,
            queued: SimDuration::ZERO,
            service: done.since(p.issued),
            fault: p.fault,
        };
        // Async issue events are traced at submit; sync ops trace here with
        // their full blocking interval.
        if !p.is_async {
            self.record(
                IoEvent::new(p.node, p.file, op)
                    .span(p.issued.nanos(), done.nanos())
                    .extent(p.offset, p.bytes),
            );
        }
        sched.complete_io(token, done, result);
        for (tok, node, issued) in p.collective {
            if !p.is_async {
                self.record(
                    IoEvent::new(node, p.file, op)
                        .span(issued.nanos(), done.nanos())
                        .extent(p.offset, p.bytes),
                );
            }
            sched.complete_io(tok, done, result);
        }
        self.drain_sync_waiters(finished_file, now, sched);
    }

    /// Resolve and dispatch a data operation according to the file's mode.
    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        req: IoRequest,
        write: bool,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let file = req.file;
        let mode = self.state(file).mode.unwrap_or_else(|| {
            panic!(
                "data op on closed file {} by node {node}",
                self.files.get(file).spec.name
            )
        });
        // Trace the async issue itself (the paper's "AsynchRead" row), with
        // the offset the request will resolve to under the file's mode.
        if is_async {
            let resolved = match mode {
                AccessMode::MUnix | AccessMode::MAsync => req
                    .offset
                    .unwrap_or_else(|| self.files.get(file).pos.get(&node).copied().unwrap_or(0)),
                AccessMode::MLog | AccessMode::MSync | AccessMode::MGlobal => {
                    self.files.get(file).shared_pos
                }
                AccessMode::MRecord => {
                    let st = self.state(file);
                    let rs = st.record_size.unwrap_or(req.bytes);
                    let n = st.participants().len() as u64;
                    let rank = st.rank_of(node);
                    let k = st.op_count.get(&node).copied().unwrap_or(0);
                    (k * n + rank) * rs
                }
            };
            let issue_end = now + self.cfg.io_sw.async_issue;
            self.record(
                IoEvent::new(node, file, IoOp::AsyncRead)
                    .span(now.nanos(), issue_end.nanos())
                    .extent(resolved, req.bytes),
            );
        }
        match mode {
            AccessMode::MUnix | AccessMode::MAsync => {
                let shared = self.state(file).opener_count() > 1;
                let st = self.state(file);
                let pos = st.pos.entry(node).or_insert(0);
                let offset = req.offset.unwrap_or(*pos);
                *pos = offset + req.bytes;
                // M_UNIX preserves operation atomicity: concurrent writers
                // to a shared file serialize at the file's metadata owner.
                // M_ASYNC explicitly waives atomicity and skips this.
                if write && shared && mode == AccessMode::MUnix {
                    let rpc = self.cfg.io_sw.atomic_write_rpc;
                    let free = &mut self.seek_free[file as usize];
                    let acquire = (*free).max(now) + rpc;
                    *free = acquire;
                    let id = self.timers.alloc();
                    self.deferred.insert(
                        id,
                        Deferred {
                            token,
                            node,
                            file,
                            write,
                            is_async,
                            offset,
                            bytes: req.bytes,
                            issued: now,
                        },
                    );
                    sched.timer(acquire, id);
                } else {
                    self.dispatch(
                        now,
                        token,
                        node,
                        file,
                        write,
                        offset,
                        req.bytes,
                        now,
                        is_async,
                        Vec::new(),
                        sched,
                    );
                }
            }
            AccessMode::MRecord => {
                let st = self.state(file);
                let rs = *st.record_size.get_or_insert(req.bytes);
                assert_eq!(
                    req.bytes, rs,
                    "M_RECORD requires fixed-size records ({rs} B) on {}",
                    st.spec.name
                );
                let n = st.participants().len() as u64;
                let rank = st.rank_of(node);
                let k = st.op_count.entry(node).or_insert(0);
                let record_index = *k * n + rank;
                *k += 1;
                let offset = record_index * rs;
                self.dispatch(
                    now,
                    token,
                    node,
                    file,
                    write,
                    offset,
                    req.bytes,
                    now,
                    is_async,
                    Vec::new(),
                    sched,
                );
            }
            AccessMode::MLog => {
                // Acquire the shared pointer token (serialized), then run.
                let token_cost = self.cfg.io_sw.pointer_token;
                let st = self.state(file);
                let acquire = st.token_free.max(now) + token_cost;
                st.token_free = acquire;
                let offset = st.shared_pos;
                st.shared_pos += req.bytes;
                if acquire > now {
                    let id = self.timers.alloc();
                    self.deferred.insert(
                        id,
                        Deferred {
                            token,
                            node,
                            file,
                            write,
                            is_async,
                            offset,
                            bytes: req.bytes,
                            issued: now,
                        },
                    );
                    sched.timer(acquire, id);
                } else {
                    self.dispatch(
                        now,
                        token,
                        node,
                        file,
                        write,
                        offset,
                        req.bytes,
                        now,
                        is_async,
                        Vec::new(),
                        sched,
                    );
                }
            }
            AccessMode::MSync => {
                let parked = self.sync_parked.entry(file).or_default();
                let prev = parked.insert(
                    node,
                    ParkedSync {
                        token,
                        write,
                        bytes: req.bytes,
                        issued: now,
                        is_async,
                    },
                );
                assert!(prev.is_none(), "node {node} issued overlapping M_SYNC ops");
                self.drain_sync(now, file, sched);
            }
            AccessMode::MGlobal => {
                let n = {
                    let st = self.state(file);
                    st.participants().len()
                };
                let waiting = self.global_waiting.entry(file).or_default();
                waiting.push((token, node, now, is_async, req.bytes));
                if waiting.len() == n {
                    // `waiting` came from this entry two statements ago; if
                    // the map has lost it, the collective state is corrupt —
                    // fail the op as unavailable rather than panic the run.
                    let Some(slot) = self.global_waiting.get_mut(&file) else {
                        debug_assert!(false, "M_GLOBAL wait group vanished for file {file}");
                        self.fault_stats.unavailable += 1;
                        sched.complete_io(
                            token,
                            now,
                            IoResult {
                                bytes: 0,
                                queued: SimDuration::ZERO,
                                service: SimDuration::ZERO,
                                fault: Some(IoFault::Unavailable),
                            },
                        );
                        return;
                    };
                    let group = std::mem::take(slot);
                    let bytes = group[0].4;
                    debug_assert!(group.iter().all(|g| g.4 == bytes));
                    let st = self.state(file);
                    let offset = st.shared_pos;
                    st.shared_pos += bytes;
                    let (lead_tok, lead_node, lead_issued, lead_async, _) = group[0];
                    let collective: Vec<(IoToken, NodeId, SimTime)> = group[1..]
                        .iter()
                        .map(|&(t, nd, iss, _, _)| (t, nd, iss))
                        .collect();
                    self.dispatch(
                        now,
                        lead_tok,
                        lead_node,
                        file,
                        write,
                        offset,
                        bytes,
                        lead_issued,
                        lead_async,
                        collective,
                        sched,
                    );
                }
            }
        }
    }

    /// Run every parked M_SYNC request whose turn has come.
    fn drain_sync(&mut self, now: SimTime, file: u32, sched: &mut Sched) {
        loop {
            let next = {
                let st = self.state(file);
                let parts = st.participants().to_vec();
                let expected = parts[(st.turn % parts.len() as u64) as usize];
                let parked = self.sync_parked.entry(file).or_default();
                match parked.remove(&expected) {
                    Some(p) => {
                        let st = self.state(file);
                        st.turn += 1;
                        let offset = st.shared_pos;
                        st.shared_pos += p.bytes;
                        Some((expected, p, offset))
                    }
                    None => None,
                }
            };
            match next {
                Some((node, p, offset)) => {
                    self.dispatch(
                        now,
                        p.token,
                        node,
                        file,
                        p.write,
                        offset,
                        p.bytes,
                        p.issued,
                        p.is_async,
                        Vec::new(),
                        sched,
                    );
                }
                None => break,
            }
        }
    }
}

impl IoService for Pfs {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        match req.verb {
            IoVerb::Open => {
                let mode = AccessMode::from_code(req.hint)
                    .unwrap_or_else(|| panic!("bad access-mode code {}", req.hint));
                let create = self.state(req.file).open(node, mode);
                let cost = if create {
                    self.cfg.io_sw.create
                } else {
                    self.cfg.io_sw.open
                };
                self.meta_op(now, token, node, req.file, IoOp::Open, cost, 0, sched);
            }
            IoVerb::Close => {
                self.state(req.file).close(node);
                let cost = self.cfg.io_sw.close;
                self.meta_op(now, token, node, req.file, IoOp::Close, cost, 0, sched);
            }
            IoVerb::Seek => {
                let target = req.offset.expect("seek needs an offset");
                let shared = self.state(req.file).opener_count() > 1;
                let (done, distance) = if shared {
                    // Serialized at the file's metadata owner.
                    let cost = self.cfg.io_sw.seek_shared_rpc;
                    let free = &mut self.seek_free[req.file as usize];
                    let start = (*free).max(now);
                    let done = start + cost;
                    *free = done;
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (done, distance)
                } else {
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (now + self.cfg.io_sw.seek_local, distance)
                };
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Seek,
                    now,
                    done,
                    Some((target, distance)),
                    0,
                );
            }
            IoVerb::Flush => {
                let done = now + self.cfg.io_sw.flush;
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Flush,
                    now,
                    done,
                    None,
                    0,
                );
            }
            IoVerb::Lsize => {
                let cost = self.cfg.io_sw.lsize;
                let len = self.file_len(req.file);
                self.meta_op(now, token, node, req.file, IoOp::Lsize, cost, len, sched);
            }
            IoVerb::Sync => {
                // Commit: acknowledge only after every in-flight write on
                // the file has reached the arrays. PFS is write-through, so
                // "no outstanding writes" is the durable point; the commit
                // still reports `DataLoss` if redundancy is exhausted.
                // Traced as Forflush — the paper's vocabulary has no
                // separate commit row.
                if self.has_outstanding_writes(req.file) {
                    self.syncs.park(SyncWaiter {
                        token,
                        node,
                        file: req.file,
                        issued: now,
                    });
                } else {
                    self.complete_sync(token, node, req.file, now, now, sched);
                }
            }
            IoVerb::Read => self.data_op(now, token, node, req, false, is_async, sched),
            IoVerb::Write => self.data_op(now, token, node, req, true, is_async, sched),
        }
    }

    fn on_start(&mut self, sched: &mut Sched) {
        // Arm one absolute-time timer per scheduled fault event. Empty
        // schedule (the healthy case): no timers, bit-identical runs.
        self.faults.arm_all(&mut self.timers, sched);
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        if self.timers.is_node_timer(timer) {
            // An I/O node finished its in-service work. Stale timers happen
            // only under faults (a stall postponed the completion, or a
            // crash voided it); orphaned segments mean the owning request
            // already failed (timeout/unavailable).
            match self.pump.node_tick(now, timer, sched) {
                NodeTick::Stale => debug_assert!(
                    self.faults_enabled(),
                    "stale i/o-node timer on a healthy run"
                ),
                // Background rebuild traffic: no request to complete.
                NodeTick::Rebuild => {}
                NodeTick::Orphan => {
                    debug_assert!(self.faults_enabled(), "segment with no owner")
                }
                NodeTick::Seg {
                    owner: token,
                    data_lost,
                } => {
                    let Some(p) = self.pending.get_mut(&token) else {
                        debug_assert!(self.faults.enabled(), "pending missing");
                        return;
                    };
                    if data_lost {
                        self.fault_stats.data_loss_segments += 1;
                        p.fault = Some(IoFault::DataLoss);
                    }
                    p.segs_left -= 1;
                    if p.segs_left == 0 {
                        // `get_mut` above proved the entry exists; a failed
                        // remove means the pending map is corrupt. Degrade
                        // to a typed fault on the token instead of panicking
                        // the worker.
                        let Some(p) = self.pending.remove(&token) else {
                            debug_assert!(false, "pending entry vanished for token {token}");
                            self.fail_token(token, IoFault::Unavailable, now, sched);
                            return;
                        };
                        self.finish(p, token, now, sched);
                    }
                }
            }
        } else if let Some(ev) = self.faults.take(timer) {
            self.apply_fault(now, ev, sched);
        } else if let Some(r) = self.pump.take_retry(timer) {
            // Retry only while the owning request is still alive.
            if self.pump.owns(r.req.id) {
                self.submit_or_fail(now, r.io, r.req, r.attempt, sched);
            }
        } else if let Some(token) = self.timeout_timers.remove(&timer) {
            if self.pending.contains_key(&token) {
                self.fault_stats.timeouts += 1;
                self.fail_token(token, IoFault::Timeout, now, sched);
            }
        } else if let Some(parked) = self.parked_meta.remove(&timer) {
            self.retry_meta(now, parked, sched);
        } else {
            // Deferred dispatch (M_LOG pointer-token acquisition).
            let d = self.deferred.remove(&timer).expect("unknown deferred op");
            self.dispatch(
                now,
                d.token,
                d.node,
                d.file,
                d.write,
                d.offset,
                d.bytes,
                d.issued,
                d.is_async,
                Vec::new(),
                sched,
            );
        }
    }

    fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
        self.cfg.io_sw.async_issue
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.recorder.iowait(node, file, wait_start, wait_end);
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::mesh::Mesh;
    use paragon_sim::program::{NodeProgram, ScriptOp, ScriptProgram};
    use paragon_sim::Engine;
    use sio_core::trace::Trace;

    fn run_scripts(
        machine: &MachineConfig,
        files: Vec<FileSpec>,
        scripts: Vec<Vec<ScriptOp>>,
    ) -> (Trace, paragon_sim::EngineReport) {
        let mut pfs = Pfs::new(machine, TraceSink::new("test"));
        for f in files {
            pfs.register(f);
        }
        let programs: Vec<Box<dyn NodeProgram>> = scripts
            .into_iter()
            .map(|s| Box::new(ScriptProgram::new(s)) as Box<dyn NodeProgram>)
            .collect();
        let mesh = Mesh::for_nodes(machine.compute_nodes, machine.io_nodes);
        let mut engine = Engine::new(mesh, machine.comm, programs, pfs);
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean(), "blocked nodes: {:?}", report.blocked);
        let mut pfs = engine.into_service();
        pfs.sink_mut()
            .set_run_info(machine.compute_nodes, report.wall.nanos());
        (pfs.finish_trace(), report)
    }

    fn machine() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn open(file: u32, mode: AccessMode) -> ScriptOp {
        ScriptOp::Io(IoRequest::open(file, mode.code()))
    }

    #[test]
    fn open_write_read_close_roundtrip() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 100_000)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 100_000)),
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (trace, report) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        assert_eq!(trace.of_op(IoOp::Write).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 1);
        assert_eq!(trace.of_op(IoOp::Seek).count(), 1);
        assert_eq!(trace.of_op(IoOp::Open).count(), 1);
        assert_eq!(trace.of_op(IoOp::Close).count(), 1);
        // Read returns what was written.
        let rd = trace.of_op(IoOp::Read).next().unwrap();
        assert_eq!(rd.bytes, 100_000);
        assert!(report.wall > SimTime::ZERO);
    }

    #[test]
    fn munix_pointer_advances_per_node() {
        // Two nodes write 1000 B each twice into their own regions.
        let mk = |node: u32| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Io(IoRequest::seek(0, node as u64 * 10_000)),
                ScriptOp::Io(IoRequest::write(0, 1000)),
                ScriptOp::Io(IoRequest::write(0, 1000)),
                ScriptOp::Io(IoRequest::close(0)),
            ]
        };
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![mk(0), mk(1)]);
        let mut writes: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        writes.sort_unstable();
        assert_eq!(writes, vec![(0, 0), (0, 1000), (1, 10_000), (1, 11_000)]);
    }

    #[test]
    fn reads_clamp_to_eof() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 500)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 10_000)),
            ScriptOp::Io(IoRequest::read(0, 10_000)), // past EOF: 0 bytes
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let sizes: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.bytes).collect();
        assert_eq!(sizes, vec![500, 0]);
    }

    #[test]
    fn input_files_are_readable_without_writes() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::read(0, 4096)),
        ];
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::input("in", 1 << 20)],
            vec![script],
        );
        assert_eq!(trace.of_op(IoOp::Read).next().unwrap().bytes, 4096);
    }

    #[test]
    fn mrecord_interleaves_records_in_node_order() {
        let mk = |_node: u32| {
            vec![
                open(0, AccessMode::MRecord),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, 2048)),
                ScriptOp::Io(IoRequest::write(0, 2048)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("rec")],
            vec![mk(0), mk(1), mk(2)],
        );
        // Node n's k-th record lands at (k*3 + n) * 2048.
        let mut offs: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        offs.sort_unstable();
        assert_eq!(
            offs,
            vec![
                (0, 0),
                (0, 3 * 2048),
                (1, 2048),
                (1, 4 * 2048),
                (2, 2 * 2048),
                (2, 5 * 2048)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "fixed-size records")]
    fn mrecord_rejects_variable_sizes() {
        let script = vec![
            open(0, AccessMode::MRecord),
            ScriptOp::Io(IoRequest::write(0, 2048)),
            ScriptOp::Io(IoRequest::write(0, 1024)),
        ];
        let _ = run_scripts(&machine(), vec![FileSpec::output("rec")], vec![script]);
    }

    #[test]
    fn mlog_shared_pointer_packs_variable_records() {
        let mk = |bytes: u64| {
            vec![
                open(0, AccessMode::MLog),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, bytes)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("log")],
            vec![mk(100), mk(200), mk(300)],
        );
        let mut extents: Vec<(u64, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.offset, e.bytes))
            .collect();
        extents.sort_unstable();
        // Records are contiguous, non-overlapping, total 600.
        let mut expect_off = 0;
        for (off, bytes) in extents {
            assert_eq!(off, expect_off);
            expect_off += bytes;
        }
        assert_eq!(expect_off, 600);
    }

    #[test]
    fn msync_enforces_node_order() {
        // Node 2 issues first (no compute delay); nodes 0 and 1 delayed.
        // The shared pointer must still assign offsets in node order.
        let mk = |node: u32| {
            let delay = SimDuration::from_millis(10 * (2 - node) as u64);
            vec![
                open(0, AccessMode::MSync),
                ScriptOp::Barrier(0),
                ScriptOp::Compute(delay),
                ScriptOp::Io(IoRequest::write(0, 1000)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("sync")],
            vec![mk(0), mk(1), mk(2)],
        );
        let mut by_node: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        by_node.sort_unstable();
        assert_eq!(by_node, vec![(0, 0), (1, 1000), (2, 2000)]);
    }

    #[test]
    fn mglobal_coalesces_into_one_physical_read() {
        let mk = || {
            vec![
                open(0, AccessMode::MGlobal),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::read(0, 8192)),
                ScriptOp::Io(IoRequest::read(0, 8192)),
            ]
        };
        let m = MachineConfig::tiny(4, 2);
        let mut pfs = Pfs::new(&m, TraceSink::new("g"));
        pfs.register(FileSpec::input("shared", 1 << 20));
        let programs: Vec<Box<dyn NodeProgram>> = (0..4)
            .map(|_| Box::new(ScriptProgram::new(mk())) as Box<dyn NodeProgram>)
            .collect();
        let mesh = Mesh::for_nodes(4, 2);
        let mut engine = Engine::new(mesh, m.comm, programs, pfs);
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean());
        // All four nodes see both reads traced...
        let segments = engine.service().segments_completed();
        let trace = engine.into_service().finish_trace();
        assert_eq!(trace.of_op(IoOp::Read).count(), 8);
        // ...at exactly two distinct offsets (shared pointer advanced twice).
        let mut offs: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.offset).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs, vec![0, 8192]);
        // ...but the disks served only one request's worth of segments per
        // coalesced read: 8192 B fits one 64 KB unit = 1 segment, × 2 reads.
        assert_eq!(segments, 2);
    }

    #[test]
    fn shared_seeks_serialize_and_cost_more() {
        // Two nodes sharing a file seek simultaneously; durations reflect
        // serialization at the metadata owner.
        let mk = |node: u32| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, node as u64 * 4096)),
            ]
        };
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::output("shared")],
            vec![mk(0), mk(1)],
        );
        let mut durations: Vec<u64> = trace.of_op(IoOp::Seek).map(|e| e.duration()).collect();
        durations.sort_unstable();
        let rpc = MachineConfig::tiny(4, 2).io_sw.seek_shared_rpc.nanos();
        assert!(durations[0] >= rpc);
        assert!(
            durations[1] >= 2 * rpc,
            "second seek must queue: {durations:?}"
        );

        // A single-opener file seeks locally and cheaply.
        let solo = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::seek(0, 4096)),
        ];
        let (strace, _) = run_scripts(&machine(), vec![FileSpec::output("solo")], vec![solo]);
        let local = MachineConfig::tiny(4, 2).io_sw.seek_local.nanos();
        assert_eq!(strace.of_op(IoOp::Seek).next().unwrap().duration(), local);
    }

    #[test]
    fn seek_records_distance() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::seek(0, 10_000)),
            ScriptOp::Io(IoRequest::seek(0, 4_000)),
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let dists: Vec<u64> = trace.of_op(IoOp::Seek).map(|e| e.bytes).collect();
        assert_eq!(dists, vec![10_000, 6_000]);
    }

    #[test]
    fn async_read_traces_issue_and_iowait() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::IoAsync(IoRequest::read(0, 1 << 20)),
            ScriptOp::WaitOldest,
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::input("data", 4 << 20)],
            vec![script],
        );
        assert_eq!(trace.of_op(IoOp::AsyncRead).count(), 1);
        assert_eq!(trace.of_op(IoOp::IoWait).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 0);
        // The issue event is short; the iowait carries the real latency.
        let issue = trace.of_op(IoOp::AsyncRead).next().unwrap().duration();
        let wait = trace.of_op(IoOp::IoWait).next().unwrap().duration();
        assert!(issue < wait, "issue {issue} !< wait {wait}");
    }

    #[test]
    fn create_costs_more_than_open() {
        let script = vec![
            open(0, AccessMode::MUnix), // create
            ScriptOp::Io(IoRequest::close(0)),
            open(0, AccessMode::MUnix), // plain open
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let opens: Vec<u64> = trace.of_op(IoOp::Open).map(|e| e.duration()).collect();
        assert!(
            opens[0] > opens[1],
            "create {} !> open {}",
            opens[0],
            opens[1]
        );
    }

    #[test]
    fn flush_and_lsize_trace() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 100)),
            ScriptOp::Io(IoRequest::flush(0)),
            ScriptOp::Io(IoRequest::lsize(0)),
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        assert_eq!(trace.of_op(IoOp::Flush).count(), 1);
        assert_eq!(trace.of_op(IoOp::Lsize).count(), 1);
    }

    #[test]
    fn concurrent_bursts_queue_at_io_nodes() {
        // 4 nodes write 64 KB each simultaneously through 1 I/O node: the
        // last writer's latency must exceed the first's (queueing).
        let mk = || {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, 65536)),
            ]
        };
        let m = MachineConfig::tiny(4, 1);
        let (trace, _) = run_scripts(
            &m,
            vec![FileSpec::output("hot")],
            vec![mk(), mk(), mk(), mk()],
        );
        let mut durs: Vec<u64> = trace.of_op(IoOp::Write).map(|e| e.duration()).collect();
        durs.sort_unstable();
        assert!(durs[3] > durs[0] * 2, "queueing invisible: {durs:?}");
    }

    #[test]
    fn degraded_array_slows_reads() {
        let script = || {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Io(IoRequest::read(0, 64 * 1024)),
            ]
        };
        let m = MachineConfig::tiny(1, 1);
        let run = |fail: bool| {
            let mut pfs = Pfs::new(&m, TraceSink::new("d"));
            pfs.register(FileSpec::input("data", 1 << 20));
            if fail {
                pfs.fail_disk(0, 0).unwrap();
            }
            let programs: Vec<Box<dyn NodeProgram>> = vec![Box::new(ScriptProgram::new(script()))];
            let mut engine = Engine::new(Mesh::for_nodes(1, 1), m.comm, programs, pfs);
            engine.set_default_watchdog();
            engine.run();
            let trace = engine.into_service().finish_trace();
            let dur = trace.of_op(IoOp::Read).next().unwrap().duration();
            dur
        };
        assert!(run(true) > run(false));
    }
}

//! Ablation benchmarks — the experiment-index entries X1 and A1–A4.
//!
//! Each bench both *times* the experiment and asserts its qualitative
//! outcome (the PPFS ablation must improve ESCAT; C-SCAN must not lose to
//! FIFO; degraded RAID reads must cost more), so `cargo bench` doubles as a
//! coarse regression gate on the reproduced claims.

use criterion::{criterion_group, Criterion};
use sio_analysis::experiments;
use sio_apps::EscatParams;
use sio_bench::{bench_machine, small_machine};
use std::hint::black_box;

fn x1_ppfs_escat(c: &mut Criterion) {
    let machine = bench_machine();
    let params = EscatParams::paper();
    let mut group = c.benchmark_group("x1_ppfs_ablation");
    group.sample_size(10);
    group.bench_function("escat_pfs_vs_ppfs", |b| {
        b.iter(|| {
            let r = experiments::ppfs_ablation(black_box(&machine), black_box(&params));
            assert!(r.speedup > 100.0);
            black_box(r.speedup)
        })
    });
    group.finish();
}

fn a1_modes(c: &mut Criterion) {
    let machine = small_machine();
    c.bench_function("a1_access_mode_matrix", |b| {
        b.iter(|| {
            let rows = experiments::mode_ablation(black_box(&machine), 16, 8, 2048);
            assert_eq!(rows.len(), 5);
            black_box(rows.iter().map(|r| r.wall_secs).sum::<f64>())
        })
    });
}

fn a2_policy_matrix(c: &mut Criterion) {
    let machine = small_machine();
    c.bench_function("a2_policy_matrix", |b| {
        b.iter(|| {
            let rows = experiments::policy_matrix(black_box(&machine));
            assert_eq!(rows.len(), 12);
            black_box(rows.iter().map(|r| r.read_secs).sum::<f64>())
        })
    });
}

fn a3_queue_discipline(c: &mut Criterion) {
    let machine = small_machine();
    c.bench_function("a3_queue_discipline", |b| {
        b.iter(|| {
            let rows = experiments::queue_discipline(black_box(&machine), 16);
            assert!(rows[1].wall_secs <= rows[0].wall_secs * 1.02);
            black_box(rows[0].wall_secs)
        })
    });
}

fn a4_raid_degraded(c: &mut Criterion) {
    let machine = small_machine();
    c.bench_function("a4_raid_degraded", |b| {
        b.iter(|| {
            let rows = experiments::raid_degraded(black_box(&machine));
            assert!(rows[1].read_secs > rows[0].read_secs);
            black_box(rows[1].read_secs)
        })
    });
}

criterion_group!(
    ablations,
    x1_ppfs_escat,
    a1_modes,
    a2_policy_matrix,
    a3_queue_discipline,
    a4_raid_degraded
);
fn main() {
    sio_bench::configure_sweep_jobs();
    ablations();
}

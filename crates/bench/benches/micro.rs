//! Micro benchmarks of the substrate hot paths: engine event dispatch,
//! stripe mapping, block cache, write-behind buffer, access-pattern
//! classification/prediction, and the SDDF trace codec.

use criterion::{criterion_group, Criterion, Throughput};
use paragon_sim::mesh::{CommCosts, Mesh};
use paragon_sim::program::{NodeProgram, Resume, ScriptOp, ScriptProgram, Step};
use paragon_sim::{Engine, IoService, MachineConfig, ShardedEngine, SimDuration};
use sio_core::classify::PatternClassifier;
use sio_core::event::{IoEvent, IoOp};
use sio_core::predict::{MarkovPredictor, Predictor};
use sio_core::sddf;
use sio_core::trace::{Trace, TraceMeta};
use sio_pfs::StripeLayout;
use sio_ppfs::cache::{BlockCache, BlockState};
use sio_ppfs::write_behind::DirtyBuffer;
use sio_ppfs::Eviction;
use std::hint::black_box;

/// A no-cost service: isolates pure engine dispatch overhead.
struct NullService;

impl IoService for NullService {
    fn submit(
        &mut self,
        _node: u32,
        now: paragon_sim::SimTime,
        req: paragon_sim::IoRequest,
        token: u64,
        _is_async: bool,
        sched: &mut paragon_sim::Sched,
    ) {
        sched.complete_io(
            token,
            now + SimDuration(1000),
            paragon_sim::IoResult {
                bytes: req.bytes,
                queued: SimDuration::ZERO,
                service: SimDuration(1000),
                fault: None,
            },
        );
    }

    fn on_timer(&mut self, _: paragon_sim::SimTime, _: u64, _: &mut paragon_sim::Sched) {}
}

fn engine_dispatch(c: &mut Criterion) {
    // 64 nodes × (1000 computes + barriers): ~130k events per iteration.
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(64 * 2 * 1000));
    group.bench_function("dispatch_128k_events", |b| {
        b.iter(|| {
            let programs: Vec<Box<dyn NodeProgram>> = (0..64)
                .map(|_| {
                    let mut ops = Vec::with_capacity(2000);
                    for _ in 0..1000 {
                        ops.push(ScriptOp::Compute(SimDuration(10_000)));
                        ops.push(ScriptOp::Barrier(0));
                    }
                    Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>
                })
                .collect();
            let mesh = Mesh::for_nodes(64, 4);
            let mut engine = Engine::new(mesh, CommCosts::default(), programs, NullService);
            let report = engine.run();
            assert!(report.clean());
            black_box(report.events)
        })
    });
    group.finish();
}

/// A node program whose transitions cost real host time: each step runs a
/// deterministic mixing spin before yielding. This is the workload shape
/// the sharded engine parallelizes — application state machines with
/// nontrivial per-step logic — as opposed to pure script replay, whose
/// cost is all in the (inherently serial) commit loop.
struct SpinProgram {
    steps: u32,
    state: u64,
}

impl NodeProgram for SpinProgram {
    fn step(&mut self, _node: u32, _resume: Resume) -> Step {
        if self.steps == 0 {
            return Step::Done;
        }
        self.steps -= 1;
        let mut h = self.state;
        for _ in 0..400 {
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29) ^ 0xBF58_476D_1CE4_E5B9;
        }
        self.state = h;
        if self.steps.is_multiple_of(50) {
            Step::Barrier(0)
        } else {
            Step::Compute(SimDuration(5_000 + (h % 10_000)))
        }
    }
}

fn pdes_scaling(c: &mut Criterion) {
    // 64 nodes × 400 spin-transitions, barrier every 50 steps: the same
    // deterministic run at 1 shard and at 8 shards. The two bench ids give
    // the trajectory file a scaling ratio to gate on (see
    // scripts/bench_sim.sh — the ratio is asserted only on hosts with
    // enough cores for 8 workers to exist).
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(64 * 400));
    for shards in [1u32, 8] {
        group.bench_function(&format!("pdes_{shards}shard"), |b| {
            b.iter(|| {
                let programs: Vec<Box<dyn NodeProgram + Send>> = (0..64u64)
                    .map(|n| {
                        Box::new(SpinProgram {
                            steps: 400,
                            state: n * 7919 + 1,
                        }) as Box<dyn NodeProgram + Send>
                    })
                    .collect();
                let mesh = Mesh::for_nodes(64, 4);
                let mut engine =
                    ShardedEngine::new(mesh, CommCosts::default(), programs, NullService, shards);
                let report = engine.run();
                assert!(report.clean());
                black_box(report.events)
            })
        });
    }
    group.finish();
}

fn commit_scaling(c: &mut Criterion) {
    // The commit-bound complement of `pdes_scaling`: trivially cheap script
    // transitions (replay shape — all cost is in popping, sequencing, and
    // re-pushing events), 64 nodes × 600 computes with a barrier every 120.
    // Nearly every window is closed, so 8 shards exercise the batched
    // per-lane splice path where 1 shard runs the serial pop loop. The
    // commit_{1,8}shard ratio is the shard-local commit lever's own gate
    // (asserted in scripts/bench_sim.sh only on ≥8-core hosts).
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(64 * 600));
    let scripts = || -> Vec<Box<dyn NodeProgram + Send>> {
        (0..64u64)
            .map(|n| {
                let mut ops = Vec::with_capacity(605);
                for k in 0..600u64 {
                    let jitter = (n * 2_654_435_761 + k * 40_503) % 90;
                    ops.push(ScriptOp::Compute(SimDuration::from_micros(1 + jitter)));
                    if (k + 1).is_multiple_of(120) {
                        ops.push(ScriptOp::Barrier(0));
                    }
                }
                Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>
            })
            .collect()
    };
    for shards in [1u32, 8] {
        group.bench_function(&format!("commit_{shards}shard"), |b| {
            b.iter(|| {
                let mesh = Mesh::for_nodes(64, 4);
                let mut engine =
                    ShardedEngine::new(mesh, CommCosts::default(), scripts(), NullService, shards);
                let report = engine.run();
                assert!(report.clean());
                black_box(report.events)
            })
        });
    }
    group.finish();
}

fn stripe_mapping(c: &mut Criterion) {
    let layout = StripeLayout::pfs(16);
    let mut group = c.benchmark_group("stripe");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("segment_1000_3mb_requests", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for k in 0..1000u64 {
                let segs = layout.segments(k * 1_000_003, 3_000_000);
                total += segs.len() as u64;
            }
            black_box(total)
        })
    });
    group.finish();
}

fn block_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("lru_100k_mixed_ops", |b| {
        b.iter(|| {
            let mut cache = BlockCache::new(1024, Eviction::Lru, 7);
            for i in 0..100_000u64 {
                let key = (0u32, (i * 31) % 4096);
                if cache.lookup(key).is_none() {
                    cache.insert(key, BlockState::Present);
                }
            }
            black_box(cache.stats())
        })
    });
    group.finish();
}

fn dirty_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_behind");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("aggregate_10k_strided_writes", |b| {
        b.iter(|| {
            let mut buf = DirtyBuffer::new();
            for i in 0..10_000u64 {
                buf.add((i % 128) * 131_072 + (i / 128) * 2_000, 2_000);
            }
            black_box(buf.drain(true, 65_536).len())
        })
    });
    group.finish();
}

fn classifier_and_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("classify_100k_accesses", |b| {
        b.iter(|| {
            let mut cl = PatternClassifier::new();
            for i in 0..100_000u64 {
                cl.observe(i * 4096, 4096);
            }
            black_box(cl.classify())
        })
    });
    group.bench_function("markov_predict_100k", |b| {
        b.iter(|| {
            let mut p = MarkovPredictor::new();
            for i in 0..100_000u64 {
                p.observe((i % 2) * 100 + i * 1000, 512);
            }
            black_box(p.predict())
        })
    });
    group.finish();
}

fn sddf_codec(c: &mut Criterion) {
    let events: Vec<IoEvent> = (0..100_000u64)
        .map(|i| {
            IoEvent::new((i % 128) as u32, (i % 12) as u32, IoOp::Write)
                .span(i * 1000, i * 1000 + 500)
                .extent(i * 2048, 2048)
        })
        .collect();
    let trace = Trace::from_parts(TraceMeta::default(), events);
    let encoded = sddf::to_bytes(&trace);
    let mut group = c.benchmark_group("sddf");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("encode_100k_events", |b| {
        b.iter(|| black_box(sddf::to_bytes(black_box(&trace)).len()))
    });
    group.bench_function("decode_100k_events", |b| {
        b.iter(|| black_box(sddf::from_bytes(black_box(&encoded)).unwrap().len()))
    });
    group.finish();
}

fn full_machine_escat_small(c: &mut Criterion) {
    // A small end-to-end run through the whole stack per iteration.
    use sio_apps::workload::{run_workload, Backend};
    use sio_apps::EscatParams;
    let machine = MachineConfig::tiny(8, 4);
    let params = EscatParams::small(8, 8);
    c.bench_function("stack_escat_small_end_to_end", |b| {
        b.iter(|| {
            let out = run_workload(black_box(&machine), &params.workload(), &Backend::Pfs);
            black_box(out.trace.len())
        })
    });
}

fn replay_reconstruction(c: &mut Criterion) {
    use sio_apps::replay::{workload_from_trace, ReplayOptions};
    use sio_apps::workload::{run_workload, Backend};
    use sio_apps::EscatParams;
    let machine = MachineConfig::tiny(8, 4);
    let original = run_workload(
        &machine,
        &EscatParams::small(8, 8).workload(),
        &Backend::Pfs,
    );
    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(original.trace.len() as u64));
    group.bench_function("reconstruct_workload_from_trace", |b| {
        b.iter(|| {
            let w = workload_from_trace(black_box(&original.trace), ReplayOptions::default());
            black_box(w.scripts.len())
        })
    });
    group.finish();
}

fn mix_combination(c: &mut Criterion) {
    use sio_apps::mix::combine;
    use sio_apps::{EscatParams, HtfParams};
    let a = EscatParams::small(8, 8).workload();
    let b_ = HtfParams::small(8).pscf_workload();
    c.bench_function("mix_combine_two_apps", |b| {
        b.iter(|| {
            let parts = [black_box(&a), black_box(&b_)];
            black_box(combine("mix", &parts).scripts.len())
        })
    });
}

fn server_cache_two_level(c: &mut Criterion) {
    use paragon_sim::program::{IoRequest, ScriptOp};
    use sio_apps::workload::{run_workload, Backend, Workload};
    use sio_pfs::{AccessMode, FileSpec};
    use sio_ppfs::PolicyConfig;
    let machine = MachineConfig::tiny(8, 4);
    let build = || -> Workload {
        let scripts = (0..8u32)
            .map(|node| {
                let mut ops = vec![
                    ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                    ScriptOp::Compute(SimDuration::from_millis(500 * node as u64)),
                ];
                for _ in 0..16 {
                    ops.push(ScriptOp::Io(IoRequest::read(0, 65536)));
                }
                ops
            })
            .collect();
        Workload {
            label: "b1".to_string(),
            files: vec![FileSpec::input("shared", 16 * 65536)],
            scripts,
            groups: Vec::new(),
        }
    };
    c.bench_function("b1_two_level_buffering_run", |b| {
        b.iter(|| {
            let out = run_workload(
                black_box(&machine),
                &build(),
                &Backend::Ppfs(PolicyConfig::two_level(64, 256)),
            );
            assert!(out.ppfs_stats.unwrap().server_hits > 0);
            black_box(out.trace.len())
        })
    });
}

fn burst_log_drain(c: &mut Criterion) {
    use sio_blog::{BurstLog, LogRecord};
    // The drainer's host-side hot loop: append framed records, reclaim the
    // drained prefix in pump-sized batches, replay the survivors (the
    // recovery path walks the same frames).
    let mut group = c.benchmark_group("blog");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("drain_cycle_10k_frames", |b| {
        let payload = vec![0xA5u8; 4096];
        b.iter(|| {
            let mut log = BurstLog::new();
            for i in 0..10_000u32 {
                log.append(&LogRecord {
                    epoch: i / 100 + 1,
                    file: 7,
                    offset: i as u64 * 4096,
                    payload: payload.clone(),
                });
            }
            // Drain-and-GC in 256-record batches, like the pump does.
            for _ in 0..(10_000 / 256) {
                log.gc(256);
            }
            let survivors = BurstLog::replay(log.as_bytes());
            assert_eq!(survivors.len(), 10_000 - 256 * (10_000 / 256));
            black_box(survivors.len())
        })
    });
    group.finish();
}

criterion_group!(
    micro,
    engine_dispatch,
    pdes_scaling,
    commit_scaling,
    stripe_mapping,
    block_cache,
    dirty_buffer,
    classifier_and_predictor,
    sddf_codec,
    full_machine_escat_small,
    replay_reconstruction,
    mix_combination,
    server_cache_two_level,
    burst_log_drain
);
fn main() {
    sio_bench::configure_sweep_jobs();
    micro();
}

//! Table-regeneration benchmarks: every iteration reruns one paper
//! experiment at full 128-node scale and rebuilds its tables, asserting
//! the headline counts so a regression in the workload model fails the
//! bench rather than silently benchmarking the wrong thing.

use criterion::{criterion_group, Criterion};
use sio_analysis::experiments;
use sio_apps::{EscatParams, HtfParams, RenderParams};
use sio_bench::bench_machine;
use sio_core::event::IoOp;
use std::hint::black_box;

fn table1_2_escat(c: &mut Criterion) {
    let machine = bench_machine();
    let params = EscatParams::paper();
    c.bench_function("table1_2_escat_full_run", |b| {
        b.iter(|| {
            let a = experiments::escat(black_box(&machine), black_box(&params));
            assert_eq!(a.table1.count(IoOp::Write), 13_330);
            assert_eq!(a.table2.read.as_row(), [297, 3, 260, 0]);
            black_box(a.table1.total.node_secs)
        })
    });
}

fn table3_4_render(c: &mut Criterion) {
    let machine = bench_machine();
    let params = RenderParams::paper();
    c.bench_function("table3_4_render_full_run", |b| {
        b.iter(|| {
            let a = experiments::render(black_box(&machine), black_box(&params));
            assert_eq!(a.table3.count(IoOp::AsyncRead), 436);
            assert_eq!(a.table3.count(IoOp::IoWait), 436);
            black_box(a.table3.total.node_secs)
        })
    });
}

fn table5_6_htf(c: &mut Criterion) {
    let machine = bench_machine();
    let params = HtfParams::paper();
    let mut group = c.benchmark_group("table5_6_htf");
    group.sample_size(10); // pscf runs ~500k events per iteration
    group.bench_function("full_pipeline", |b| {
        b.iter(|| {
            let a = experiments::htf(black_box(&machine), black_box(&params));
            assert_eq!(a.table5[2].count(IoOp::Read), 51_499);
            black_box(a.table5[2].total.node_secs)
        })
    });
    group.finish();
}

fn figures_extraction(c: &mut Criterion) {
    // Figure extraction alone (trace already captured): Figures 2-5.
    let machine = bench_machine();
    let a = experiments::escat(&machine, &EscatParams::paper());
    c.bench_function("figures_2_to_5_from_trace", |b| {
        b.iter(|| {
            let init_end = 10.0;
            let set = sio_analysis::figures::FigureSet::escat(black_box(&a.out.trace), init_end);
            assert_eq!(set.figures.len(), 4);
            black_box(set.figures.len())
        })
    });
}

criterion_group!(
    tables,
    table1_2_escat,
    table3_4_render,
    table5_6_htf,
    figures_extraction
);
fn main() {
    sio_bench::configure_sweep_jobs();
    tables();
}

//! # sio-bench — benchmark harness
//!
//! Criterion benchmarks, one group per reproduced artifact plus micro
//! benchmarks of the hot substrate paths. Three targets:
//!
//! * `tables` — regenerates each paper table at full 128-node scale per
//!   iteration (T1/T2, T3/T4, T5/T6) and checks the headline counts;
//! * `ablations` — the experiment-index ablations (X1 PPFS, A1 modes,
//!   A2 policy matrix, A3 queue discipline, A4 RAID degraded mode);
//! * `micro` — engine event throughput, stripe mapping, block cache,
//!   write-behind buffer, classifier/predictor, and SDDF codec.
//!
//! Run with `cargo bench --workspace`.

use paragon_sim::MachineConfig;

/// The machine every table bench runs on (the paper's 128-node partition).
pub fn bench_machine() -> MachineConfig {
    MachineConfig::paragon_128()
}

/// A smaller machine for ablation benches.
pub fn small_machine() -> MachineConfig {
    MachineConfig::tiny(16, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_build() {
        assert_eq!(bench_machine().compute_nodes, 128);
        assert_eq!(small_machine().compute_nodes, 16);
    }
}

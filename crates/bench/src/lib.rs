//! # sio-bench — benchmark harness
//!
//! Criterion benchmarks, one group per reproduced artifact plus micro
//! benchmarks of the hot substrate paths. Three targets:
//!
//! * `tables` — regenerates each paper table at full 128-node scale per
//!   iteration (T1/T2, T3/T4, T5/T6) and checks the headline counts;
//! * `ablations` — the experiment-index ablations (X1 PPFS, A1 modes,
//!   A2 policy matrix, A3 queue discipline, A4 RAID degraded mode);
//! * `micro` — engine event throughput, stripe mapping, block cache,
//!   write-behind buffer, classifier/predictor, and SDDF codec.
//!
//! Run with `cargo bench --workspace`.

use paragon_sim::MachineConfig;

/// Apply the `SIO_JOBS` sweep-worker knob before benching and return the
/// resulting worker count. Criterion owns the CLI, so the environment
/// variable is the bench-side equivalent of `repro --jobs N`; every bench
/// `main` calls this once so all experiment sweeps fan out over the same
/// bounded pool ([`sio_analysis::runner`]). Worker count changes wall time
/// only — sweep output is deterministic.
pub fn configure_sweep_jobs() -> usize {
    let jobs = sio_analysis::runner::default_jobs();
    sio_analysis::runner::set_jobs(jobs);
    eprintln!("[sio-bench] sweep workers: {jobs} (override with SIO_JOBS=N)");
    jobs
}

/// The machine every table bench runs on (the paper's 128-node partition).
pub fn bench_machine() -> MachineConfig {
    MachineConfig::paragon_128()
}

/// A smaller machine for ablation benches.
pub fn small_machine() -> MachineConfig {
    MachineConfig::tiny(16, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_build() {
        assert_eq!(bench_machine().compute_nodes, 128);
        assert_eq!(small_machine().compute_nodes, 16);
    }
}

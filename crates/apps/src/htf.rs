//! HTF — the Hartree-Fock quantum chemistry pipeline skeleton.
//!
//! Three programs run as a logical pipeline (§4.3, §7 of the paper), each a
//! separate run whose traces the analysis concatenates:
//!
//! * **psetup** (initialization) — serial: node 0 reads the small problem
//!   input and writes transformed setup files; many small (< 4 KB) and
//!   medium (< 64 KB) requests.
//! * **pargos** (integral calculation) — write-intensive: every node
//!   creates its *own* integral file and appends ~82 KB integral records,
//!   flushing after each (the `forflush` row of Table 5), finishing with an
//!   `lsize`. The 128 simultaneous file creates are what make the Open row
//!   so expensive (4,057 s).
//! * **pscf** (self-consistent field) — read-intensive: the integral files
//!   "are too large to retain in memory", so every node makes repeated
//!   sequential passes (six, for this data set) over its file, rewinding
//!   between passes — 98 % of the phase's I/O time is reads.
//!
//! `HtfParams::paper()` reproduces the per-phase rows of Tables 5–6,
//! including the seek *distance* volume of pscf (3.495 GB of rewinds).

use crate::checkpoint::{CheckpointPlan, CheckpointedWorkload};
use crate::workload::{op_compute, op_open, Workload};
use paragon_sim::program::{IoRequest, ScriptOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sio_pfs::{AccessMode, FileSpec};

/// Parameters for the three-program HTF pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HtfParams {
    /// Compute nodes (pargos, pscf; psetup is serial).
    pub nodes: u32,
    /// Integral record size, bytes (~82 KB).
    pub integral_bytes: u64,
    /// Total integral records across all nodes (8,532 in the paper; the
    /// remainder after division is spread one-extra-per-node from node 0).
    pub integral_records: u32,
    /// Sequential passes pscf makes over each integral file.
    pub scf_passes: u32,
    /// Extra large reads in pscf beyond `passes × records` (33 in the
    /// paper: a partial seventh pass by the first nodes).
    pub scf_extra_reads: u32,

    // --- psetup ---
    /// Small reads / size.
    pub setup_small_reads: u32,
    /// Size of small psetup requests.
    pub setup_small_bytes: u64,
    /// Medium reads.
    pub setup_medium_reads: u32,
    /// Size of medium psetup reads.
    pub setup_medium_read_bytes: u64,
    /// Small writes.
    pub setup_small_writes: u32,
    /// Medium writes.
    pub setup_medium_writes: u32,
    /// Size of medium psetup writes.
    pub setup_medium_write_bytes: u64,
    /// Total psetup compute, seconds (wall target ≈ 127 s).
    pub setup_compute: f64,

    // --- pargos ---
    /// Mean compute seconds per integral record (±20 % jitter, seeded).
    pub integral_compute: f64,
    /// Small reads by node 0 (problem broadcast data).
    pub pargos_small_reads: u32,
    /// Size of those reads.
    pub pargos_small_read_bytes: u64,
    /// Medium reads by node 0.
    pub pargos_medium_reads: u32,
    /// Size of medium pargos reads.
    pub pargos_medium_read_bytes: u64,

    // --- pscf ---
    /// Compute seconds between integral reads.
    pub scf_compute: f64,
    /// Auxiliary open/access/close cycles by node 0 (checkpoint, matrix
    /// files) — the paper's "repeated patterns of file open, access, and
    /// close".
    pub scf_aux_cycles: u32,
    /// Aux small reads total.
    pub scf_aux_small_reads: u32,
    /// Aux medium reads total.
    pub scf_aux_medium_reads: u32,
    /// Aux writes: (small, medium, large) counts.
    pub scf_aux_writes: (u32, u32, u32),
    /// Aux write sizes: (small, medium, large).
    pub scf_aux_write_bytes: (u64, u64, u64),
    /// Aux seeks and their distance.
    pub scf_aux_seeks: u32,
    /// Distance of each aux seek.
    pub scf_aux_seek_bytes: u64,
}

impl HtfParams {
    /// The paper's 16-atom run on 128 nodes — Tables 5–6.
    pub fn paper() -> HtfParams {
        HtfParams {
            nodes: 128,
            integral_bytes: 81_916,
            integral_records: 8_532,
            scf_passes: 6,
            scf_extra_reads: 33,
            setup_small_reads: 151,
            setup_small_bytes: 1_024,
            setup_medium_reads: 220,
            setup_medium_read_bytes: 15_308,
            setup_small_writes: 218,
            setup_medium_writes: 234,
            setup_medium_write_bytes: 15_050,
            setup_compute: 105.0,
            integral_compute: 16.0,
            pargos_small_reads: 143,
            pargos_small_read_bytes: 178,
            pargos_medium_reads: 2,
            pargos_medium_read_bytes: 4_475,
            scf_compute: 2.3,
            scf_aux_cycles: 29,
            scf_aux_small_reads: 165,
            scf_aux_medium_reads: 109,
            scf_aux_writes: (43, 158, 6),
            scf_aux_write_bytes: (1_000, 20_000, 100_000),
            scf_aux_seeks: 45,
            scf_aux_seek_bytes: 14_716,
        }
    }

    /// Scaled-down variant for tests.
    pub fn small(nodes: u32) -> HtfParams {
        HtfParams {
            nodes,
            integral_records: nodes * 3 + 1,
            scf_passes: 2,
            scf_extra_reads: 1,
            setup_small_reads: 5,
            setup_medium_reads: 4,
            setup_small_writes: 5,
            setup_medium_writes: 4,
            setup_compute: 0.05,
            integral_compute: 0.01,
            pargos_small_reads: 3,
            pargos_medium_reads: 1,
            scf_compute: 0.005,
            scf_aux_cycles: 3,
            scf_aux_small_reads: 4,
            scf_aux_medium_reads: 2,
            scf_aux_writes: (3, 2, 1),
            scf_aux_seeks: 3,
            ..HtfParams::paper()
        }
    }

    /// Integral records written by `node` (remainder spread from node 0).
    pub fn records_of(&self, node: u32) -> u32 {
        let base = self.integral_records / self.nodes;
        base + u32::from(node < self.integral_records % self.nodes)
    }

    // ------------------------------------------------------------------
    // psetup
    // ------------------------------------------------------------------

    /// Build the psetup (initialization) workload: serial, 4 files.
    pub fn psetup_workload(&self) -> Workload {
        let input_len = self.setup_small_reads as u64 * self.setup_small_bytes
            + self.setup_medium_reads as u64 * self.setup_medium_read_bytes;
        let files = vec![
            FileSpec::input("htf-input", input_len + 4096),
            FileSpec::output("htf-setup-a"),
            FileSpec::output("htf-setup-b"),
            FileSpec::output("htf-setup-c"),
        ];
        let mut ops: Vec<ScriptOp> = Vec::new();
        for f in 0..4 {
            ops.push(op_open(f, AccessMode::MUnix));
        }
        // Interleave reads (from file 0) and writes (round-robin files 1-3)
        // with compute slices, as a transformation pass would.
        let total_ops = (self.setup_small_reads
            + self.setup_medium_reads
            + self.setup_small_writes
            + self.setup_medium_writes) as f64;
        let slice = self.setup_compute / total_ops.max(1.0);
        let mut w = 0u32;
        let mut push_write = |ops: &mut Vec<ScriptOp>, bytes: u64| {
            ops.push(ScriptOp::Io(IoRequest::write(1 + w % 3, bytes)));
            w += 1;
        };
        for k in 0..self.setup_small_reads.max(self.setup_small_writes) {
            if k < self.setup_small_reads {
                ops.push(op_compute(slice));
                ops.push(ScriptOp::Io(IoRequest::read(0, self.setup_small_bytes)));
            }
            if k < self.setup_small_writes {
                ops.push(op_compute(slice));
                push_write(&mut ops, self.setup_small_bytes);
            }
        }
        // The two seeks of Table 5: rewind the input before the medium pass.
        ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
        for k in 0..self.setup_medium_reads.max(self.setup_medium_writes) {
            if k < self.setup_medium_reads {
                ops.push(op_compute(slice));
                ops.push(ScriptOp::Io(IoRequest::read(
                    0,
                    self.setup_medium_read_bytes,
                )));
            }
            if k < self.setup_medium_writes {
                ops.push(op_compute(slice));
                push_write(&mut ops, self.setup_medium_write_bytes);
            }
        }
        ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
        // Close 3 of the 4 files (Table 5: 4 opens, 3 closes).
        for f in 0..3 {
            ops.push(ScriptOp::Io(IoRequest::close(f)));
        }
        Workload {
            label: "htf-psetup".to_string(),
            files,
            scripts: vec![ops],
            groups: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // pargos
    // ------------------------------------------------------------------

    /// File id of node `n`'s integral file (both pargos and pscf).
    pub fn integral_file(&self, node: u32) -> u32 {
        2 + node
    }

    /// Build the pargos (integral calculation) workload.
    pub fn pargos_workload(&self) -> Workload {
        let mut files = vec![
            FileSpec::input(
                "htf-setup-out",
                self.pargos_small_reads as u64 * self.pargos_small_read_bytes
                    + self.pargos_medium_reads as u64 * self.pargos_medium_read_bytes
                    + 4096,
            ),
            FileSpec::output("htf-pargos-aux"),
        ];
        for n in 0..self.nodes {
            files.push(FileSpec::output(&format!("integrals-{n:03}")));
        }
        let mut rng = StdRng::seed_from_u64(0x4854_4601);
        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();
            if node == 0 {
                // Node 0 reads the setup output and re-broadcasts it.
                ops.push(op_open(0, AccessMode::MUnix));
                for _ in 0..self.pargos_small_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(
                        0,
                        self.pargos_small_read_bytes,
                    )));
                }
                for _ in 0..self.pargos_medium_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(
                        0,
                        self.pargos_medium_read_bytes,
                    )));
                }
                ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
                ops.push(ScriptOp::Io(IoRequest::close(0)));
                // Aux file with the three stray writes of Table 6.
                ops.push(op_open(1, AccessMode::MUnix));
                ops.push(ScriptOp::Io(IoRequest::seek(1, 0)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 1_000)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 1_000)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 48_000)));
            }
            ops.push(ScriptOp::Broadcast {
                root: 0,
                bytes: 34_400,
                group: 0,
            });
            let f = self.integral_file(node);
            ops.push(op_open(f, AccessMode::MUnix));
            ops.push(ScriptOp::Io(IoRequest::seek(f, 0)));
            // Jittered compute desynchronizes the writers, as integral
            // screening does in the real code.
            for _ in 0..self.records_of(node) {
                let jitter = rng.random_range(0.8..1.2);
                ops.push(op_compute(self.integral_compute * jitter));
                ops.push(ScriptOp::Io(IoRequest::write(f, self.integral_bytes)));
                ops.push(ScriptOp::Io(IoRequest::flush(f)));
            }
            ops.push(ScriptOp::Io(IoRequest::flush(f)));
            ops.push(ScriptOp::Io(IoRequest::lsize(f)));
            ops.push(ScriptOp::Io(IoRequest::close(f)));
            scripts.push(ops);
        }
        Workload {
            label: "htf-pargos".to_string(),
            files,
            scripts,
            groups: Vec::new(),
        }
    }

    /// File id of the pargos checkpoint file (first id past the integral
    /// files).
    pub fn pargos_checkpoint_file(&self) -> u32 {
        2 + self.nodes
    }

    /// Synchronized integral rounds every node completes in the shared-file
    /// variant (the ragged remainder is dropped so membership stays full).
    pub fn pint_rounds(&self) -> u32 {
        self.integral_records / self.nodes
    }

    /// Build the shared-file integral-calculation variant ("pint"): instead
    /// of 128 private integral files, every node writes its ~82 KB records
    /// *record-interleaved into one shared file* — node `n`'s round-`r`
    /// record at `(r × nodes + n) × integral_bytes`. Each I/O node then sees
    /// the file as small seek-separated slices under PFS, while a collective
    /// backend can aggregate every round into one large sequential transfer
    /// per I/O node: the X6 shared-write phase for HTF.
    ///
    /// Rounds self-synchronize after the initial barrier: jittered compute
    /// staggers the writers within a round, but no node can issue round
    /// `r + 1` before its round-`r` write completes.
    pub fn pint_workload(&self) -> Workload {
        let rounds = self.pint_rounds();
        let files = vec![FileSpec::output("integrals-shared")];
        let mut rng = StdRng::seed_from_u64(0x4854_4602);
        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = vec![op_open(0, AccessMode::MUnix)];
            ops.push(ScriptOp::Barrier(0));
            for r in 0..rounds as u64 {
                let jitter = rng.random_range(0.8..1.2);
                ops.push(op_compute(self.integral_compute * jitter));
                let mut req = IoRequest::write(0, self.integral_bytes);
                req.offset = Some((r * self.nodes as u64 + node as u64) * self.integral_bytes);
                ops.push(ScriptOp::Io(req));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            scripts.push(ops);
        }
        Workload {
            label: "htf-pint".to_string(),
            files,
            scripts,
            groups: Vec::new(),
        }
    }

    /// Per-(node, record) compute jitters, drawn in exactly the order
    /// `pargos_workload` draws them so a resumed run replays the *same*
    /// compute times for the records it still has to do.
    fn pargos_jitters(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(0x4854_4601);
        (0..self.nodes)
            .map(|node| {
                (0..self.records_of(node))
                    .map(|_| rng.random_range(0.8..1.2))
                    .collect()
            })
            .collect()
    }

    /// Build the checkpointed pargos workload: every `interval` integral
    /// records a node syncs its integral file (forcing PPFS write-behind
    /// buffers to disk), writes its checkpoint record, and syncs the
    /// checkpoint file. Nodes have ragged record counts, so a node stops
    /// checkpointing once its own records are covered. With
    /// `resume_epoch > 0` the integral files pre-exist holding the
    /// recovered records and each node appends from its resume point.
    pub fn pargos_workload_checkpointed(
        &self,
        interval: u32,
        resume_epoch: u32,
    ) -> CheckpointedWorkload {
        let ck = self.pargos_checkpoint_file();
        let mut plan = CheckpointPlan::new(ck, 3, self.nodes, interval, self.records_of(0))
            .resumed(resume_epoch);
        plan.covered = (0..self.nodes).map(|n| self.integral_file(n)).collect();

        let mut files = vec![
            FileSpec::input(
                "htf-setup-out",
                self.pargos_small_reads as u64 * self.pargos_small_read_bytes
                    + self.pargos_medium_reads as u64 * self.pargos_medium_read_bytes
                    + 4096,
            ),
            if resume_epoch == 0 {
                FileSpec::output("htf-pargos-aux")
            } else {
                FileSpec::input("htf-pargos-aux", 50_000)
            },
        ];
        for n in 0..self.nodes {
            let skip_n = plan.units_at(resume_epoch, self.records_of(n));
            files.push(if skip_n > 0 {
                FileSpec::input(
                    &format!("integrals-{n:03}"),
                    skip_n as u64 * self.integral_bytes,
                )
            } else {
                FileSpec::output(&format!("integrals-{n:03}"))
            });
        }
        files.push(plan.file_spec("htf-pargos-ckpt"));

        let jitters = self.pargos_jitters();
        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        for node in 0..self.nodes {
            let records = self.records_of(node);
            let skip = plan.units_at(resume_epoch, records);
            let mut ops: Vec<ScriptOp> = Vec::new();
            if node == 0 {
                ops.push(op_open(0, AccessMode::MUnix));
                for _ in 0..self.pargos_small_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(
                        0,
                        self.pargos_small_read_bytes,
                    )));
                }
                for _ in 0..self.pargos_medium_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(
                        0,
                        self.pargos_medium_read_bytes,
                    )));
                }
                ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
                ops.push(ScriptOp::Io(IoRequest::close(0)));
                ops.push(op_open(1, AccessMode::MUnix));
                ops.push(ScriptOp::Io(IoRequest::seek(1, 0)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 1_000)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 1_000)));
                ops.push(ScriptOp::Io(IoRequest::write(1, 48_000)));
            }
            ops.push(ScriptOp::Broadcast {
                root: 0,
                bytes: 34_400,
                group: 0,
            });
            let f = self.integral_file(node);
            ops.push(op_open(f, AccessMode::MUnix));
            ops.push(ScriptOp::Io(IoRequest::seek(
                f,
                skip as u64 * self.integral_bytes,
            )));
            ops.push(op_open(ck, AccessMode::MUnix));
            for r in skip..records {
                let jitter = jitters[node as usize][r as usize];
                ops.push(op_compute(self.integral_compute * jitter));
                ops.push(ScriptOp::Io(IoRequest::write(f, self.integral_bytes)));
                ops.push(ScriptOp::Io(IoRequest::flush(f)));
                let done = r + 1;
                if done % interval == 0 || done == records {
                    ops.extend(plan.commit_ops(node, done.div_ceil(interval), &[f]));
                }
            }
            ops.push(ScriptOp::Io(IoRequest::close(ck)));
            ops.push(ScriptOp::Io(IoRequest::flush(f)));
            ops.push(ScriptOp::Io(IoRequest::lsize(f)));
            ops.push(ScriptOp::Io(IoRequest::close(f)));
            scripts.push(ops);
        }

        let label = if resume_epoch == 0 {
            "htf-pargos-ckpt".to_string()
        } else {
            format!("htf-pargos-ckpt-resume{resume_epoch}")
        };
        CheckpointedWorkload {
            workload: Workload {
                label,
                files,
                scripts,
                groups: Vec::new(),
            },
            plan,
        }
    }

    // ------------------------------------------------------------------
    // pscf
    // ------------------------------------------------------------------

    /// Build the pscf (self-consistent field) workload. The integral files
    /// are inputs here, sized exactly as pargos wrote them.
    pub fn pscf_workload(&self) -> Workload {
        let mut files = vec![
            // Checkpoint/matrix files carry state from earlier SCF runs, so
            // they pre-exist and are large enough for the aux read cycles.
            FileSpec::input("htf-checkpoint", 4 << 20),
            FileSpec::input("htf-matrices", 4 << 20),
        ];
        for n in 0..self.nodes {
            files.push(FileSpec::input(
                &format!("integrals-{n:03}"),
                self.records_of(n) as u64 * self.integral_bytes,
            ));
        }
        let integral_file = |n: u32| 2 + n;

        let split = |total: u32, parts: u32, k: u32| total / parts + u32::from(k < total % parts);

        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();
            let f = integral_file(node);
            ops.push(op_open(f, AccessMode::MUnix));
            // Stagger pass starts slightly so 128 nodes do not convoy.
            ops.push(op_compute(0.05 * node as f64));
            let records = self.records_of(node);
            let my_len = records as u64 * self.integral_bytes;
            for _pass in 0..self.scf_passes {
                // Rewind before every pass: distance 0 the first time, the
                // whole file afterwards — Table 5's 3.495 GB of seek volume.
                ops.push(ScriptOp::Io(IoRequest::seek(f, 0)));
                for _ in 0..records {
                    ops.push(op_compute(self.scf_compute));
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.integral_bytes)));
                }
            }
            if node == 0 {
                // Extra partial-pass reads (Table 6's 33 surplus large reads).
                ops.push(ScriptOp::Io(IoRequest::seek(f, 0)));
                for _ in 0..self.scf_extra_reads {
                    let mut req = IoRequest::read(f, self.integral_bytes);
                    req.offset = Some(0);
                    let _ = my_len;
                    ops.push(ScriptOp::Io(req));
                }
            }
            ops.push(ScriptOp::Io(IoRequest::close(f)));

            if node == 0 {
                // Aux open/access/close cycles on checkpoint + matrix files.
                let c = self.scf_aux_cycles;
                let (ws, wm, wl) = self.scf_aux_writes;
                let (bs, bm, bl) = self.scf_aux_write_bytes;
                // Seeks beyond the per-pass rewinds: 45 in the paper; one
                // rewind per cycle is already counted there, so aux cycles
                // carry the remainder.
                let extra_seeks = self.scf_aux_seeks;
                for k in 0..c {
                    let aux = k % 2; // alternate checkpoint / matrices
                    ops.push(op_open(aux, AccessMode::MUnix));
                    for _ in 0..split(self.scf_aux_small_reads, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::read(aux, 200)));
                    }
                    for _ in 0..split(self.scf_aux_medium_reads, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::read(aux, 15_000)));
                    }
                    for _ in 0..split(ws, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::write(aux, bs)));
                    }
                    for _ in 0..split(wm, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::write(aux, bm)));
                    }
                    for _ in 0..split(wl, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::write(aux, bl)));
                    }
                    for s in 0..split(extra_seeks, c, k) {
                        ops.push(ScriptOp::Io(IoRequest::seek(
                            aux,
                            (s as u64 + 1) * self.scf_aux_seek_bytes,
                        )));
                    }
                    if k + 1 < c {
                        ops.push(ScriptOp::Io(IoRequest::close(aux)));
                    }
                }
            }
            scripts.push(ops);
        }
        Workload {
            label: "htf-pscf".to_string(),
            files,
            scripts,
            groups: Vec::new(),
        }
    }

    /// Expected pargos counts `(reads, writes, seeks, opens, closes, lsize,
    /// flush)` — Table 5's integral-calculation rows.
    pub fn pargos_expected(&self) -> (u64, u64, u64, u64, u64, u64, u64) {
        let reads = (self.pargos_small_reads + self.pargos_medium_reads) as u64;
        let writes = self.integral_records as u64 + 3;
        let seeks = self.nodes as u64 + 2;
        let opens = self.nodes as u64 + 2;
        let closes = self.nodes as u64 + 1;
        let lsize = self.nodes as u64;
        let flush = self.integral_records as u64 + self.nodes as u64;
        (reads, writes, seeks, opens, closes, lsize, flush)
    }

    /// Expected pscf counts `(reads, writes, seeks, opens, closes)` —
    /// Table 5's self-consistent-field rows.
    pub fn pscf_expected(&self) -> (u64, u64, u64, u64, u64) {
        let big_reads =
            self.scf_passes as u64 * self.integral_records as u64 + self.scf_extra_reads as u64;
        let aux_reads = (self.scf_aux_small_reads + self.scf_aux_medium_reads) as u64;
        let reads = big_reads + aux_reads;
        let (ws, wm, wl) = self.scf_aux_writes;
        let writes = (ws + wm + wl) as u64;
        let seeks = self.scf_passes as u64 * self.nodes as u64 + 1 + self.scf_aux_seeks as u64;
        let opens = self.nodes as u64 + self.scf_aux_cycles as u64;
        let closes = self.nodes as u64 + self.scf_aux_cycles as u64 - 1;
        (reads, writes, seeks, opens, closes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload, Backend};
    use paragon_sim::MachineConfig;
    use sio_core::event::IoOp;

    #[test]
    fn paper_pargos_counts_match_table5() {
        let p = HtfParams::paper();
        let (reads, writes, seeks, opens, closes, lsize, flush) = p.pargos_expected();
        assert_eq!(reads, 145);
        assert_eq!(writes, 8_535);
        assert_eq!(seeks, 130);
        assert_eq!(opens, 130);
        assert_eq!(closes, 129);
        assert_eq!(lsize, 128);
        // Paper: 8,657 forflush; ours 8,660 (one final flush per node).
        assert!((flush as i64 - 8_657).unsigned_abs() <= 3, "{flush}");
        // Volume: 8,532 × 81,916 + stray writes ≈ 698,958,109 B.
        let vol = p.integral_records as u64 * p.integral_bytes + 2 * 1_000 + 48_000;
        assert!(
            (vol as f64 - 698_958_109.0).abs() / 698_958_109.0 < 0.001,
            "{vol}"
        );
    }

    #[test]
    fn paper_pscf_counts_match_table5() {
        let p = HtfParams::paper();
        let (reads, writes, seeks, opens, closes) = p.pscf_expected();
        assert_eq!(reads, 51_499);
        assert_eq!(writes, 207);
        assert_eq!(seeks, 814); // paper: 813 (one extra first-pass rewind)
        assert_eq!(opens, 157);
        assert_eq!(closes, 156);
        // Seek distance volume: 5 rewinds × total integral bytes + aux.
        let rewind = (p.scf_passes as u64 - 1) * p.integral_records as u64 * p.integral_bytes;
        let aux: u64 = (0..p.scf_aux_cycles)
            .map(|k| {
                let n = p.scf_aux_seeks / p.scf_aux_cycles
                    + u32::from(k < p.scf_aux_seeks % p.scf_aux_cycles);
                // distances within a cycle: first seek from 0 to 1×d, the
                // rest step by d
                n as u64 * p.scf_aux_seek_bytes
            })
            .sum();
        let total = rewind + aux;
        assert!(
            (total as f64 - 3_495_198_798.0).abs() / 3_495_198_798.0 < 0.01,
            "seek volume {total}"
        );
    }

    #[test]
    fn record_distribution_sums() {
        let p = HtfParams::paper();
        let total: u32 = (0..p.nodes).map(|n| p.records_of(n)).sum();
        assert_eq!(total, p.integral_records);
        assert_eq!(p.records_of(0), 67);
        assert_eq!(p.records_of(127), 66);
    }

    #[test]
    fn small_psetup_runs_and_counts() {
        let p = HtfParams::small(4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.psetup_workload(),
            &Backend::Pfs,
        );
        assert_eq!(
            out.trace.of_op(IoOp::Read).count() as u32,
            p.setup_small_reads + p.setup_medium_reads
        );
        assert_eq!(
            out.trace.of_op(IoOp::Write).count() as u32,
            p.setup_small_writes + p.setup_medium_writes
        );
        assert_eq!(out.trace.of_op(IoOp::Seek).count(), 2);
        assert_eq!(out.trace.of_op(IoOp::Open).count(), 4);
        assert_eq!(out.trace.of_op(IoOp::Close).count(), 3);
    }

    #[test]
    fn small_pargos_runs_and_counts() {
        let p = HtfParams::small(4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.pargos_workload(),
            &Backend::Pfs,
        );
        let (reads, writes, seeks, opens, closes, lsize, flush) = p.pargos_expected();
        assert_eq!(out.trace.of_op(IoOp::Read).count() as u64, reads);
        assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, writes);
        assert_eq!(out.trace.of_op(IoOp::Seek).count() as u64, seeks);
        assert_eq!(out.trace.of_op(IoOp::Open).count() as u64, opens);
        assert_eq!(out.trace.of_op(IoOp::Close).count() as u64, closes);
        assert_eq!(out.trace.of_op(IoOp::Lsize).count() as u64, lsize);
        assert_eq!(out.trace.of_op(IoOp::Flush).count() as u64, flush);
    }

    #[test]
    fn small_pscf_runs_and_counts() {
        let p = HtfParams::small(4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.pscf_workload(),
            &Backend::Pfs,
        );
        let (reads, writes, seeks, opens, closes) = p.pscf_expected();
        assert_eq!(out.trace.of_op(IoOp::Read).count() as u64, reads);
        assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, writes);
        assert_eq!(out.trace.of_op(IoOp::Seek).count() as u64, seeks);
        assert_eq!(out.trace.of_op(IoOp::Open).count() as u64, opens);
        assert_eq!(out.trace.of_op(IoOp::Close).count() as u64, closes);
    }

    #[test]
    fn pscf_reads_are_read_intensive() {
        let p = HtfParams::small(4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.pscf_workload(),
            &Backend::Pfs,
        );
        let read_time: u64 = out.trace.of_op(IoOp::Read).map(|e| e.duration()).sum();
        let write_time: u64 = out.trace.of_op(IoOp::Write).map(|e| e.duration()).sum();
        assert!(
            read_time > write_time * 5,
            "read {read_time} write {write_time}"
        );
    }

    #[test]
    fn pargos_integral_files_are_per_node() {
        let p = HtfParams::small(4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.pargos_workload(),
            &Backend::Pfs,
        );
        for ev in out.trace.of_op(IoOp::Write) {
            if ev.bytes == p.integral_bytes {
                assert_eq!(ev.file, p.integral_file(ev.node));
            }
        }
    }

    #[test]
    fn pint_interleaves_one_shared_file_and_cio_aggregates_it() {
        let p = HtfParams::small(8);
        let m = MachineConfig::tiny(8, 4);
        let w = p.pint_workload();
        let rounds = p.pint_rounds() as u64;
        assert!(rounds >= 2);

        let pfs = run_workload(&m, &w, &Backend::Pfs);
        let cio = run_workload(&m, &w, &Backend::Cio);
        for out in [&pfs, &cio] {
            assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, rounds * 8);
            // Every record lands at its interleaved slot of the one file.
            for ev in out.trace.of_op(IoOp::Write) {
                assert_eq!(ev.file, 0);
                assert_eq!(ev.offset % p.integral_bytes, 0);
                assert_eq!(ev.bytes, p.integral_bytes);
            }
        }

        // One collective per synchronized round, every node a member.
        let stats = cio.cio.expect("cio stats");
        assert_eq!(stats.collectives, rounds);
        assert_eq!(stats.members, rounds * 8);
        assert!(stats.exchange > paragon_sim::SimDuration::ZERO);

        // The aggregation headline: CIO's mean per-I/O-node write request is
        // at least 4× PFS's on the same interleaved workload.
        let mean = |loads: &[sio_fskit::NodeLoad]| {
            let reqs: u64 = loads.iter().map(|l| l.write_reqs).sum();
            let bytes: u64 = loads.iter().map(|l| l.write_bytes).sum();
            bytes as f64 / reqs.max(1) as f64
        };
        let (mp, mc) = (mean(&pfs.node_loads), mean(&cio.node_loads));
        assert!(
            mc >= 4.0 * mp,
            "cio mean {mc:.0} B !>= 4x pfs mean {mp:.0} B"
        );
    }

    #[test]
    fn pipeline_phases_have_distinct_signatures() {
        // pargos: write volume >> read volume; pscf: the reverse.
        let p = HtfParams::small(4);
        let m = MachineConfig::tiny(4, 2);
        let pargos = run_workload(&m, &p.pargos_workload(), &Backend::Pfs);
        let pscf = run_workload(&m, &p.pscf_workload(), &Backend::Pfs);
        let wv = |t: &sio_core::Trace| -> u64 { t.of_op(IoOp::Write).map(|e| e.bytes).sum() };
        let rv = |t: &sio_core::Trace| -> u64 {
            t.events()
                .iter()
                .filter(|e| e.op.is_read())
                .map(|e| e.bytes)
                .sum()
        };
        assert!(wv(&pargos.trace) > 10 * rv(&pargos.trace));
        assert!(rv(&pscf.trace) > 10 * wv(&pscf.trace));
    }
}

//! # sio-apps — I/O skeletons of the paper's application suite
//!
//! The paper characterizes three scalable parallel applications on the
//! Paragon (§4). We do not have the original codes (proprietary physics
//! codes with production data sets); following the substitution rule in
//! DESIGN.md, this crate provides *application skeletons* — the construct
//! the paper itself advocates building (§8: "the development of larger
//! application skeletons and workload mixes are an essential part of
//! developing high performance input/output systems"). Each skeleton
//! reproduces its application's phase structure, file population, request
//! sizes, synchronization, and communication; the physics is replaced by
//! calibrated compute delays.
//!
//! * [`escat`] — electron scattering (Schwinger multichannel): compulsory
//!   read + broadcast, synchronized compute/seek/write quadrature cycles
//!   into two staging files, staged reload, gather + final output.
//! * [`render`] — terrain rendering: gateway reads a ~880 MB data set with
//!   deep asynchronous prefetch, broadcasts to the renderer group, then a
//!   read-render-write frame loop.
//! * [`htf`] — Hartree-Fock: a three-program pipeline (`psetup`, `pargos`,
//!   `pscf`) with per-node integral files, write-intensive integral
//!   calculation and read-intensive repeated-pass SCF solve.
//! * [`workload`] — the shared backend-generic runner plus synthetic
//!   kernels (sequential / strided / random) for the mode and policy
//!   ablations.
//! * [`backend`] — the pluggable-backend layer: the [`FsBackend`] trait,
//!   the [`BackendSpec`] naming/factory enum, and the [`BackendRegistry`]
//!   of shipped backends.
//!
//! Every `*Params::paper()` constructor reproduces the operation counts and
//! byte volumes of the paper's Tables 1–6 (see `sio-analysis` for the
//! side-by-side comparison).

pub mod backend;
pub mod checkpoint;
pub mod escat;
pub mod htf;
pub mod mix;
pub mod render;
pub mod replay;
pub mod workload;

pub use backend::{BackendRegistry, BackendSpec, FsBackend};
pub use checkpoint::{CheckpointPlan, CheckpointedWorkload};
pub use escat::EscatParams;
pub use htf::HtfParams;
pub use render::RenderParams;
pub use sio_blog::{BlogParams, BlogStats};
pub use workload::{run_workload, Backend, RunOutput, Workload};

//! Pluggable file-system backends: the [`FsBackend`] trait every backend
//! implements, the [`BackendSpec`] naming/factory enum, and the
//! [`BackendRegistry`] that maps backend names to builders.
//!
//! The workload runner ([`crate::workload::run_workload`] and friends) is
//! generic over `Box<dyn FsBackend>`: it registers files, runs the engine,
//! stamps the trace, and harvests counters without knowing which file system
//! served the run. Adding a backend means implementing [`FsBackend`] (on top
//! of the `sio-fskit` substrate) and registering a builder — the runner,
//! analysis experiments, and `repro` pick it up unchanged.

use paragon_sim::engine::{IoService, Sched};
use paragon_sim::program::{IoRequest, IoToken};
use paragon_sim::{FaultSchedule, MachineConfig, NodeId, SimDuration, SimTime};
use sio_blog::{Blog, BlogParams, BlogStats, DrainBackend};
use sio_cio::{Cio, CioStats};
use sio_core::trace::{Trace, TraceSink};
use sio_fskit::{MetaStats, NodeLoad};
use sio_pfs::fs::FaultStats;
use sio_pfs::{FileSpec, Pfs};
use sio_ppfs::{PolicyConfig, Ppfs, PpfsStats};

/// What the workload runner needs from a file-system backend beyond the
/// engine's [`IoService`] hooks: file registration, trace plumbing, and the
/// counters the experiment suites harvest after a run.
///
/// The stats getters default to `None` so a backend only surfaces the
/// counter families it actually keeps.
pub trait FsBackend: IoService {
    /// Register a file; returns its id (registration order = file id).
    fn register_file(&mut self, spec: FileSpec) -> u32;

    /// Declare a file's contents reconstructible from a durable checkpoint
    /// (crash-loss accounting). Default: no-op for backends without
    /// write-behind exposure.
    fn mark_checkpoint_covered(&mut self, file: u32) {
        let _ = file;
    }

    /// Mutable access to the trace sink (run-info stamping, perf events).
    fn sink_mut(&mut self) -> &mut TraceSink;

    /// Consume the backend, freezing its captured trace.
    fn finish_trace(self: Box<Self>) -> Trace;

    /// RAID rebuild work done across all I/O nodes: (chunks, member bytes).
    fn rebuild_totals(&self) -> (u64, u64);

    /// I/O nodes whose arrays are still degraded.
    fn degraded_nodes(&self) -> u32;

    /// PPFS policy counters, when this backend keeps them.
    fn ppfs_stats(&self) -> Option<PpfsStats> {
        None
    }

    /// PFS fault-machinery counters, when this backend keeps them.
    fn pfs_fault_stats(&self) -> Option<FaultStats> {
        None
    }

    /// Metadata-server fault counters (replica failovers, parked-RPC
    /// retries, typed unavailability), when this backend serializes
    /// metadata through the replicated [`sio_fskit::MetaServer`].
    fn meta_stats(&self) -> Option<MetaStats> {
        None
    }

    /// Accepted-request accounting per I/O node (request counts and byte
    /// volumes, split by direction). Empty for backends that don't ride the
    /// shared segment pump.
    fn node_loads(&self) -> Vec<NodeLoad> {
        Vec::new()
    }

    /// Collective-I/O machinery counters, when this backend keeps them.
    fn cio_stats(&self) -> Option<CioStats> {
        None
    }

    /// Burst-log drain-health counters, when this backend is wrapped by the
    /// log tier.
    fn blog_stats(&self) -> Option<BlogStats> {
        None
    }

    /// Accept a coalesced burst-log drain extent as background write
    /// traffic (no application-visible trace event). Only backends that
    /// ride the shared segment pump support drains; the log tier refuses to
    /// wrap anything else at parse time, so reaching the default is a bug.
    #[allow(clippy::too_many_arguments)]
    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        let _ = (node, now, file, offset, bytes, token, sched);
        panic!("backend does not support drain traffic");
    }

    /// Whether acknowledged data was lost to exhausted redundancy
    /// (surfaced by the log tier as `DataLoss` on the next `Sync`).
    fn any_data_lost(&self) -> bool {
        false
    }
}

/// A boxed backend can serve as the inner tier under the burst log: drains
/// route through [`FsBackend::submit_drain`], and the log tier traces its
/// absorbed writes into the same sink as the inner backend.
impl DrainBackend for Box<dyn FsBackend> {
    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        (**self).submit_drain(node, now, file, offset, bytes, token, sched)
    }

    fn drain_sink(&mut self) -> &mut TraceSink {
        (**self).sink_mut()
    }

    fn any_data_lost(&self) -> bool {
        (**self).any_data_lost()
    }
}

/// A boxed backend is itself an [`IoService`], so the engine can run any
/// registered backend without monomorphizing per concrete type.
impl IoService for Box<dyn FsBackend> {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        (**self).submit(node, now, req, token, is_async, sched)
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        (**self).on_timer(now, timer, sched)
    }

    fn on_start(&mut self, sched: &mut Sched) {
        (**self).on_start(sched)
    }

    fn issue_cost(&self, node: NodeId, req: &IoRequest) -> SimDuration {
        (**self).issue_cost(node, req)
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        (**self).on_iowait(node, file, wait_start, wait_end)
    }

    fn on_run_end(&mut self, now: SimTime) {
        (**self).on_run_end(now)
    }
}

impl FsBackend for Pfs {
    fn register_file(&mut self, spec: FileSpec) -> u32 {
        self.register(spec)
    }

    fn sink_mut(&mut self) -> &mut TraceSink {
        Pfs::sink_mut(self)
    }

    fn finish_trace(self: Box<Self>) -> Trace {
        Pfs::finish_trace(*self)
    }

    fn rebuild_totals(&self) -> (u64, u64) {
        (self.rebuild_chunks_total(), self.rebuilt_bytes_total())
    }

    fn degraded_nodes(&self) -> u32 {
        Pfs::degraded_nodes(self)
    }

    fn pfs_fault_stats(&self) -> Option<FaultStats> {
        Some(self.fault_stats())
    }

    fn meta_stats(&self) -> Option<MetaStats> {
        Some(Pfs::meta_stats(self))
    }

    fn node_loads(&self) -> Vec<NodeLoad> {
        Pfs::node_loads(self)
    }

    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        Pfs::submit_drain(self, node, now, file, offset, bytes, token, sched)
    }

    fn any_data_lost(&self) -> bool {
        Pfs::any_data_lost(self)
    }
}

impl FsBackend for Ppfs {
    fn register_file(&mut self, spec: FileSpec) -> u32 {
        self.register(spec)
    }

    fn mark_checkpoint_covered(&mut self, file: u32) {
        Ppfs::mark_checkpoint_covered(self, file)
    }

    fn sink_mut(&mut self) -> &mut TraceSink {
        Ppfs::sink_mut(self)
    }

    fn finish_trace(self: Box<Self>) -> Trace {
        Ppfs::finish_trace(*self)
    }

    fn rebuild_totals(&self) -> (u64, u64) {
        (self.rebuild_chunks_total(), self.rebuilt_bytes_total())
    }

    fn degraded_nodes(&self) -> u32 {
        Ppfs::degraded_nodes(self)
    }

    fn ppfs_stats(&self) -> Option<PpfsStats> {
        Some(self.stats())
    }

    fn meta_stats(&self) -> Option<MetaStats> {
        Some(Ppfs::meta_stats(self))
    }

    fn node_loads(&self) -> Vec<NodeLoad> {
        Ppfs::node_loads(self)
    }

    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        Ppfs::submit_drain(self, node, now, file, offset, bytes, token, sched)
    }

    fn any_data_lost(&self) -> bool {
        Ppfs::any_data_lost(self)
    }
}

impl FsBackend for Cio {
    fn register_file(&mut self, spec: FileSpec) -> u32 {
        self.register(spec)
    }

    fn sink_mut(&mut self) -> &mut TraceSink {
        Cio::sink_mut(self)
    }

    fn finish_trace(self: Box<Self>) -> Trace {
        Cio::finish_trace(*self)
    }

    fn rebuild_totals(&self) -> (u64, u64) {
        (self.rebuild_chunks_total(), self.rebuilt_bytes_total())
    }

    fn degraded_nodes(&self) -> u32 {
        Cio::degraded_nodes(self)
    }

    /// CIO's fault machinery is the same shape as PFS's (both ride the
    /// buddy-failover pump), so its counters surface through the same getter
    /// and every fault/recovery harness reads them unchanged.
    fn pfs_fault_stats(&self) -> Option<FaultStats> {
        let s = self.fault_stats();
        Some(FaultStats {
            retries: s.retries,
            failovers: s.failovers,
            lost_segments: s.lost_segments,
            data_loss_segments: s.data_loss_segments,
            timeouts: s.timeouts,
            unavailable: s.unavailable,
            data_loss_events: s.data_loss_events,
        })
    }

    fn node_loads(&self) -> Vec<NodeLoad> {
        Cio::node_loads(self)
    }

    fn cio_stats(&self) -> Option<CioStats> {
        Some(Cio::cio_stats(self))
    }

    fn meta_stats(&self) -> Option<MetaStats> {
        Some(Cio::meta_stats(self))
    }

    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        Cio::submit_drain(self, node, now, file, offset, bytes, token, sched)
    }

    fn any_data_lost(&self) -> bool {
        Cio::any_data_lost(self)
    }
}

/// The log tier over any boxed inner backend is itself a backend: file
/// registration, counters, and fault surfaces forward to the inner tier;
/// the wrapper adds its own drain-health counters.
impl FsBackend for Blog<Box<dyn FsBackend>> {
    fn register_file(&mut self, spec: FileSpec) -> u32 {
        self.inner_mut().register_file(spec)
    }

    fn mark_checkpoint_covered(&mut self, file: u32) {
        self.inner_mut().mark_checkpoint_covered(file)
    }

    fn sink_mut(&mut self) -> &mut TraceSink {
        self.inner_mut().sink_mut()
    }

    fn finish_trace(self: Box<Self>) -> Trace {
        (*self).into_inner().finish_trace()
    }

    fn rebuild_totals(&self) -> (u64, u64) {
        self.inner().rebuild_totals()
    }

    fn degraded_nodes(&self) -> u32 {
        self.inner().degraded_nodes()
    }

    fn ppfs_stats(&self) -> Option<PpfsStats> {
        self.inner().ppfs_stats()
    }

    fn pfs_fault_stats(&self) -> Option<FaultStats> {
        self.inner().pfs_fault_stats()
    }

    fn node_loads(&self) -> Vec<NodeLoad> {
        self.inner().node_loads()
    }

    fn cio_stats(&self) -> Option<CioStats> {
        self.inner().cio_stats()
    }

    fn meta_stats(&self) -> Option<MetaStats> {
        self.inner().meta_stats()
    }

    fn blog_stats(&self) -> Option<BlogStats> {
        Some(self.stats())
    }

    fn any_data_lost(&self) -> bool {
        DrainBackend::any_data_lost(self.inner())
    }
}

/// Which file system serves a workload. This is the *specification* — a
/// cheap, comparable value; [`BackendSpec::build`] turns it into a live
/// [`FsBackend`].
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// The Intel PFS model (`sio-pfs`).
    Pfs,
    /// The PPFS policy engine with the given configuration (`sio-ppfs`).
    Ppfs(PolicyConfig),
    /// The collective two-phase I/O backend (`sio-cio`).
    Cio,
    /// The host-side burst-log tier (`sio-blog`) in front of an inner
    /// backend. Never nests: `parse` rejects `blog+blog+…`.
    Blog(Box<BackendSpec>, BlogParams),
}

/// The historical name of [`BackendSpec`]; existing call sites construct
/// `Backend::Pfs` / `Backend::Ppfs(policy)` through this alias.
pub type Backend = BackendSpec;

impl BackendSpec {
    /// Parse a backend name — the one place backend names are interpreted.
    /// `ppfs` defaults to the ESCAT-tuned policy; suffixed variants pick the
    /// other calibrated policies.
    pub fn parse(name: &str) -> Option<BackendSpec> {
        if let Some(inner) = name.strip_prefix("blog+") {
            // The log tier wraps a concrete backend, never itself.
            if inner.starts_with("blog") {
                return None;
            }
            let spec = BackendSpec::parse(inner)?;
            return Some(BackendSpec::Blog(Box::new(spec), BlogParams::default()));
        }
        match name {
            "pfs" => Some(BackendSpec::Pfs),
            "ppfs" | "ppfs-escat" => Some(BackendSpec::Ppfs(PolicyConfig::escat_tuned())),
            "ppfs-pargos" => Some(BackendSpec::Ppfs(PolicyConfig::pargos_tuned())),
            "ppfs-wt" => Some(BackendSpec::Ppfs(PolicyConfig::write_through())),
            "cio" => Some(BackendSpec::Cio),
            _ => None,
        }
    }

    /// The backend family name (inverse of [`BackendSpec::parse`] up to
    /// policy details).
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Pfs => "pfs",
            BackendSpec::Ppfs(_) => "ppfs",
            BackendSpec::Cio => "cio",
            BackendSpec::Blog(..) => "blog",
        }
    }

    /// Build a live backend over `machine`, tracing into `sink`, with an
    /// injected fault schedule (empty = healthy run).
    pub fn build(
        &self,
        machine: &MachineConfig,
        sink: TraceSink,
        schedule: FaultSchedule,
    ) -> Box<dyn FsBackend> {
        match self {
            BackendSpec::Pfs => Box::new(Pfs::with_faults(machine, sink, schedule)),
            BackendSpec::Ppfs(policy) => {
                Box::new(Ppfs::with_faults(machine, *policy, sink, schedule))
            }
            BackendSpec::Cio => Box::new(Cio::with_faults(machine, sink, schedule)),
            BackendSpec::Blog(inner, params) => {
                Box::new(Blog::new(inner.build(machine, sink, schedule), *params))
            }
        }
    }
}

/// A named backend builder.
pub type BackendFactory =
    Box<dyn Fn(&MachineConfig, TraceSink, FaultSchedule) -> Box<dyn FsBackend>>;

/// Name → builder registry. [`BackendRegistry::builtin`] knows the two
/// shipped backends (and the tuned PPFS variants); tools and tests that
/// enumerate backends iterate [`BackendRegistry::names`] instead of
/// hard-coding the list.
pub struct BackendRegistry {
    entries: Vec<(&'static str, BackendFactory)>,
}

impl BackendRegistry {
    /// Empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of shipped backends. The name → policy mapping lives in
    /// [`BackendSpec::parse`]; each factory resolves its name through it.
    pub fn builtin() -> BackendRegistry {
        let mut r = BackendRegistry::new();
        for name in [
            "pfs",
            "ppfs",
            "ppfs-escat",
            "ppfs-pargos",
            "ppfs-wt",
            "cio",
            "blog+pfs",
            "blog+ppfs",
            "blog+cio",
        ] {
            let spec = BackendSpec::parse(name).expect("builtin name parses");
            r.register(name, Box::new(move |m, s, f| spec.build(m, s, f)));
        }
        r
    }

    /// Add (or shadow) a named backend.
    pub fn register(&mut self, name: &'static str, factory: BackendFactory) {
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, factory));
    }

    /// Registered backend names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Build the named backend, or `None` for an unknown name.
    pub fn build(
        &self,
        name: &str,
        machine: &MachineConfig,
        sink: TraceSink,
        schedule: FaultSchedule,
    ) -> Option<Box<dyn FsBackend>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f(machine, sink, schedule))
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_knows_every_builtin_name() {
        let reg = BackendRegistry::builtin();
        for name in reg.names() {
            assert!(BackendSpec::parse(name).is_some(), "unparsed: {name}");
        }
        assert_eq!(BackendSpec::parse("pfs"), Some(BackendSpec::Pfs));
        assert_eq!(BackendSpec::parse("nfs"), None);
        assert_eq!(BackendSpec::Pfs.name(), "pfs");
        assert_eq!(
            BackendSpec::Ppfs(PolicyConfig::escat_tuned()).name(),
            "ppfs"
        );
    }

    #[test]
    fn blog_wraps_any_inner_but_never_itself() {
        let wrapped = BackendSpec::parse("blog+pfs").expect("blog+pfs parses");
        assert_eq!(wrapped.name(), "blog");
        assert_eq!(
            wrapped,
            BackendSpec::Blog(Box::new(BackendSpec::Pfs), BlogParams::default())
        );
        assert!(BackendSpec::parse("blog+cio").is_some());
        assert!(BackendSpec::parse("blog+ppfs-pargos").is_some());
        // No nesting, no unknown inner, no bare prefix.
        assert_eq!(BackendSpec::parse("blog+blog+pfs"), None);
        assert_eq!(BackendSpec::parse("blog+nfs"), None);
        assert_eq!(BackendSpec::parse("blog+"), None);
        assert_eq!(BackendSpec::parse("blog"), None);
    }

    #[test]
    fn registry_builds_each_backend() {
        let reg = BackendRegistry::builtin();
        let m = MachineConfig::tiny(2, 2);
        for name in reg.names() {
            let fs = reg
                .build(name, &m, TraceSink::new("t"), FaultSchedule::new())
                .unwrap_or_else(|| panic!("no builder for {name}"));
            // Every backend reports healthy arrays at birth.
            assert_eq!(fs.degraded_nodes(), 0, "{name}");
        }
        assert!(reg
            .build("nfs", &m, TraceSink::new("t"), FaultSchedule::new())
            .is_none());
    }
}

//! RENDER — the terrain rendering (virtual flyby) skeleton.
//!
//! Structure (§4.2, §6.1 of the paper): a hybrid control/data parallel code
//! with a single **gateway** node (node 0) managing a pool of renderers.
//!
//! 1. **Initialization** — the gateway reads the ~880 MB terrain data set
//!    (four files) with explicit asynchronous prefetch: requests of 3 MB,
//!    later 1.5 MB, a window of outstanding `iread`s, and `iowait` for the
//!    un-overlapped remainder. The data is broadcast to the renderer pool
//!    (the developers rejected M_RECORD because "not all nodes need to
//!    participate", §6.2). Achieved throughput ≈ 9.5 MB/s — limited by the
//!    gateway's copy path, not the arrays.
//! 2. **Rendering** — per frame: the gateway reads a ~70-byte view record
//!    from a control file, broadcasts it, the renderers compute, partial
//!    images return to the gateway, which writes one ~1 MB frame (plus two
//!    tiny header/footer records) to a fresh output file — the staircase of
//!    Figure 8. (In production these writes go to a HiPPi frame buffer; on
//!    our simulated machine, as in the paper's measured runs, they go to
//!    the file system.)
//!
//! `RenderParams::paper()` reproduces Tables 3–4.

use crate::checkpoint::{CheckpointPlan, CheckpointedWorkload};
use crate::workload::{op_compute, op_open, Workload};
use paragon_sim::program::{IoRequest, ScriptOp};
use serde::{Deserialize, Serialize};
use sio_pfs::{AccessMode, FileSpec};

/// RENDER workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenderParams {
    /// Total nodes: gateway (node 0) + renderers.
    pub nodes: u32,
    /// Terrain data files.
    pub data_files: u32,
    /// Large async reads of `big_bytes`, spread over the data files.
    pub reads_big: u32,
    /// Size of the early large reads (3 MB in the paper).
    pub big_bytes: u64,
    /// Async reads of `half_bytes` after the large ones.
    pub reads_half: u32,
    /// Size of the later reads (1.5 MB).
    pub half_bytes: u64,
    /// Outstanding-async window depth during initialization.
    pub prefetch_depth: u32,
    /// Frames rendered.
    pub frames: u32,
    /// Frame size (640 × 512 × 24-bit = 983,040 bytes).
    pub frame_bytes: u64,
    /// Extra small writes per frame (header + footer).
    pub frame_small_writes: u32,
    /// Size of the small frame writes.
    pub frame_small_bytes: u64,
    /// View-coordinate record size.
    pub view_bytes: u64,
    /// View records read during initialization (camera path preload).
    pub init_view_reads: u32,
    /// Renderer compute seconds per frame.
    pub render_compute: f64,
    /// Gateway decode/distribution compute per completed prefetch read,
    /// seconds. Zero in the paper preset: the gateway's copy path and its
    /// CPU are the same resource, so modeling decode as separate compute
    /// would let copies drain for free and destroy the measured iowait
    /// share. Nonzero values support what-if studies.
    pub decode_compute: f64,
}

impl RenderParams {
    /// The paper's abbreviated production run: Mars Viking data, 100 frames,
    /// ~470 s — Tables 3–4.
    pub fn paper() -> RenderParams {
        RenderParams {
            nodes: 128,
            data_files: 4,
            reads_big: 151,
            big_bytes: 3_000_000,
            reads_half: 285,
            half_bytes: 1_500_000,
            prefetch_depth: 8,
            frames: 100,
            frame_bytes: 983_040,
            frame_small_writes: 2,
            frame_small_bytes: 7,
            view_bytes: 70,
            init_view_reads: 21,
            render_compute: 2.2,
            decode_compute: 0.0,
        }
    }

    /// Scaled-down variant for tests.
    pub fn small(nodes: u32, frames: u32) -> RenderParams {
        RenderParams {
            nodes,
            frames,
            data_files: 2,
            reads_big: 4,
            big_bytes: 1_500_000,
            reads_half: 4,
            half_bytes: 750_000,
            prefetch_depth: 2,
            init_view_reads: 2,
            render_compute: 0.02,
            decode_compute: 0.002,
            ..RenderParams::paper()
        }
    }

    /// File id of data file `k` (0-based).
    pub fn data_file(&self, k: u32) -> u32 {
        k
    }

    /// File id of the view-coordinate control file.
    pub fn control_file(&self) -> u32 {
        self.data_files
    }

    /// File id of the output file for frame `i`.
    pub fn frame_file(&self, i: u32) -> u32 {
        self.data_files + 1 + i
    }

    /// Per-data-file async read counts `(big, half)` for file `k`: the
    /// totals are distributed round-robin so that they sum exactly.
    pub fn file_reads(&self, k: u32) -> (u32, u32) {
        let d = self.data_files;
        let big = self.reads_big / d + u32::from(k < self.reads_big % d);
        let half = self.reads_half / d + u32::from(k < self.reads_half % d);
        (big, half)
    }

    /// Total data-set volume (Table 3 AsynchRead volume).
    pub fn data_volume(&self) -> u64 {
        self.reads_big as u64 * self.big_bytes + self.reads_half as u64 * self.half_bytes
    }

    /// Build the runnable workload.
    pub fn workload(&self) -> Workload {
        let mut specs: Vec<FileSpec> = Vec::new();
        for k in 0..self.data_files {
            let (big, half) = self.file_reads(k);
            let len = big as u64 * self.big_bytes + half as u64 * self.half_bytes;
            specs.push(FileSpec::input(&format!("terrain-{k}"), len));
        }
        specs.push(FileSpec::input(
            "views",
            (self.init_view_reads + self.frames) as u64 * self.view_bytes,
        ));
        for i in 0..self.frames {
            specs.push(FileSpec::output(&format!("frame-{i:04}")));
        }

        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        let renderers = self.nodes - 1;
        let partial_bytes = self.frame_bytes / renderers as u64;

        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();
            if node == 0 {
                // ---- Gateway: initialization ----
                let ctl = self.control_file();
                ops.push(op_open(ctl, AccessMode::MUnix));
                for _ in 0..self.init_view_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(ctl, self.view_bytes)));
                }
                ops.push(ScriptOp::Io(IoRequest::close(ctl)));
                for k in 0..self.data_files {
                    let f = self.data_file(k);
                    ops.push(op_open(f, AccessMode::MUnix));
                    ops.push(ScriptOp::Io(IoRequest::seek(f, 0)));
                    let (big, half) = self.file_reads(k);
                    let mut issued = 0u32;
                    let total = big + half;
                    let mut outstanding = 0u32;
                    while issued < total {
                        if outstanding == self.prefetch_depth {
                            ops.push(ScriptOp::WaitOldest);
                            ops.push(op_compute(self.decode_compute));
                            outstanding -= 1;
                        }
                        let bytes = if issued < big {
                            self.big_bytes
                        } else {
                            self.half_bytes
                        };
                        ops.push(ScriptOp::IoAsync(IoRequest::read(f, bytes)));
                        issued += 1;
                        outstanding += 1;
                    }
                    for _ in 0..outstanding {
                        ops.push(ScriptOp::WaitOldest);
                        ops.push(op_compute(self.decode_compute));
                    }
                    outstanding = 0;
                    let _ = outstanding;
                }
                ops.push(ScriptOp::Broadcast {
                    root: 0,
                    bytes: self.data_volume(),
                    group: 0,
                });
                // ---- Gateway: frame loop ----
                ops.push(op_open(ctl, AccessMode::MUnix));
                for i in 0..self.frames {
                    ops.push(ScriptOp::Io(IoRequest::read(ctl, self.view_bytes)));
                    ops.push(ScriptOp::Broadcast {
                        root: 0,
                        bytes: self.view_bytes,
                        group: 0,
                    });
                    for sender in 1..self.nodes {
                        ops.push(ScriptOp::Recv {
                            from: sender,
                            tag: 1000 + i,
                        });
                    }
                    let out = self.frame_file(i);
                    ops.push(op_open(out, AccessMode::MUnix));
                    // Header record(s), the 1 MB image, then the remaining
                    // small record(s) — header/footer framing.
                    let head = self.frame_small_writes / 2 + self.frame_small_writes % 2;
                    for _ in 0..head {
                        ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_small_bytes)));
                    }
                    ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_bytes)));
                    for _ in head..self.frame_small_writes {
                        ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_small_bytes)));
                    }
                    ops.push(ScriptOp::Io(IoRequest::close(out)));
                }
            } else {
                // ---- Renderer ----
                ops.push(ScriptOp::Broadcast {
                    root: 0,
                    bytes: self.data_volume(),
                    group: 0,
                });
                for i in 0..self.frames {
                    ops.push(ScriptOp::Broadcast {
                        root: 0,
                        bytes: self.view_bytes,
                        group: 0,
                    });
                    ops.push(op_compute(self.render_compute));
                    ops.push(ScriptOp::Send {
                        to: 0,
                        bytes: partial_bytes,
                        tag: 1000 + i,
                    });
                }
            }
            scripts.push(ops);
        }

        Workload {
            label: "render".to_string(),
            files: specs,
            scripts,
            groups: Vec::new(),
        }
    }

    /// File id of the gateway's checkpoint file (first id past the frame
    /// files).
    pub fn checkpoint_file(&self) -> u32 {
        self.data_files + 1 + self.frames
    }

    /// Build the checkpointed workload: the gateway alone commits an epoch
    /// boundary every `interval` frames — frames are already durable when
    /// their file closes (one file per frame), so the commit is a sync of
    /// the last frame file followed by the checkpoint record write + sync.
    /// With `resume_epoch > 0` initialization is redone (the terrain
    /// data set must be re-read and re-broadcast — the dominant restart
    /// cost) and the frame loop starts past the recovered frames.
    pub fn workload_checkpointed(&self, interval: u32, resume_epoch: u32) -> CheckpointedWorkload {
        let ck = self.checkpoint_file();
        let mut plan = CheckpointPlan::new(ck, 2, 1, interval, self.frames).resumed(resume_epoch);
        plan.covered = (0..self.frames).map(|i| self.frame_file(i)).collect();
        let skip = plan.units_at(resume_epoch, self.frames);

        let mut specs: Vec<FileSpec> = Vec::new();
        for k in 0..self.data_files {
            let (big, half) = self.file_reads(k);
            let len = big as u64 * self.big_bytes + half as u64 * self.half_bytes;
            specs.push(FileSpec::input(&format!("terrain-{k}"), len));
        }
        specs.push(FileSpec::input(
            "views",
            (self.init_view_reads + self.frames) as u64 * self.view_bytes,
        ));
        for i in 0..self.frames {
            specs.push(FileSpec::output(&format!("frame-{i:04}")));
        }
        specs.push(plan.file_spec("render-ckpt"));

        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        let renderers = self.nodes - 1;
        let partial_bytes = self.frame_bytes / renderers as u64;

        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();
            if node == 0 {
                // Initialization identical to `workload()` — a restarted
                // gateway re-reads and re-broadcasts the terrain data.
                let ctl = self.control_file();
                ops.push(op_open(ctl, AccessMode::MUnix));
                for _ in 0..self.init_view_reads {
                    ops.push(ScriptOp::Io(IoRequest::read(ctl, self.view_bytes)));
                }
                ops.push(ScriptOp::Io(IoRequest::close(ctl)));
                for k in 0..self.data_files {
                    let f = self.data_file(k);
                    ops.push(op_open(f, AccessMode::MUnix));
                    ops.push(ScriptOp::Io(IoRequest::seek(f, 0)));
                    let (big, half) = self.file_reads(k);
                    let mut issued = 0u32;
                    let total = big + half;
                    let mut outstanding = 0u32;
                    while issued < total {
                        if outstanding == self.prefetch_depth {
                            ops.push(ScriptOp::WaitOldest);
                            ops.push(op_compute(self.decode_compute));
                            outstanding -= 1;
                        }
                        let bytes = if issued < big {
                            self.big_bytes
                        } else {
                            self.half_bytes
                        };
                        ops.push(ScriptOp::IoAsync(IoRequest::read(f, bytes)));
                        issued += 1;
                        outstanding += 1;
                    }
                    for _ in 0..outstanding {
                        ops.push(ScriptOp::WaitOldest);
                        ops.push(op_compute(self.decode_compute));
                    }
                }
                ops.push(ScriptOp::Broadcast {
                    root: 0,
                    bytes: self.data_volume(),
                    group: 0,
                });
                // Frame loop from the resume point, with epoch commits.
                ops.push(op_open(ctl, AccessMode::MUnix));
                if skip > 0 {
                    // Skip the view records of recovered frames.
                    ops.push(ScriptOp::Io(IoRequest::seek(
                        ctl,
                        (self.init_view_reads + skip) as u64 * self.view_bytes,
                    )));
                }
                ops.push(op_open(ck, AccessMode::MUnix));
                for i in skip..self.frames {
                    ops.push(ScriptOp::Io(IoRequest::read(ctl, self.view_bytes)));
                    ops.push(ScriptOp::Broadcast {
                        root: 0,
                        bytes: self.view_bytes,
                        group: 0,
                    });
                    for sender in 1..self.nodes {
                        ops.push(ScriptOp::Recv {
                            from: sender,
                            tag: 1000 + i,
                        });
                    }
                    let out = self.frame_file(i);
                    ops.push(op_open(out, AccessMode::MUnix));
                    let head = self.frame_small_writes / 2 + self.frame_small_writes % 2;
                    for _ in 0..head {
                        ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_small_bytes)));
                    }
                    ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_bytes)));
                    for _ in head..self.frame_small_writes {
                        ops.push(ScriptOp::Io(IoRequest::write(out, self.frame_small_bytes)));
                    }
                    let done = i + 1;
                    let boundary = done % interval == 0 || done == self.frames;
                    if boundary {
                        // The frame's data must be durable before it closes
                        // and the boundary record commits.
                        ops.push(ScriptOp::Io(IoRequest::sync(out)));
                    }
                    ops.push(ScriptOp::Io(IoRequest::close(out)));
                    if boundary {
                        ops.extend(plan.commit_ops(0, done.div_ceil(interval), &[]));
                    }
                }
                ops.push(ScriptOp::Io(IoRequest::close(ck)));
            } else {
                ops.push(ScriptOp::Broadcast {
                    root: 0,
                    bytes: self.data_volume(),
                    group: 0,
                });
                for i in skip..self.frames {
                    ops.push(ScriptOp::Broadcast {
                        root: 0,
                        bytes: self.view_bytes,
                        group: 0,
                    });
                    ops.push(op_compute(self.render_compute));
                    ops.push(ScriptOp::Send {
                        to: 0,
                        bytes: partial_bytes,
                        tag: 1000 + i,
                    });
                }
            }
            scripts.push(ops);
        }

        let label = if resume_epoch == 0 {
            "render-ckpt".to_string()
        } else {
            format!("render-ckpt-resume{resume_epoch}")
        };
        CheckpointedWorkload {
            workload: Workload {
                label,
                files: specs,
                scripts,
                groups: Vec::new(),
            },
            plan,
        }
    }

    /// Expected counts `(reads, async_reads, writes, seeks, opens, closes)`
    /// — the Table 3 count column.
    pub fn expected_counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        let reads = (self.init_view_reads + self.frames) as u64;
        let async_reads = (self.reads_big + self.reads_half) as u64;
        let writes = self.frames as u64 * (1 + self.frame_small_writes as u64);
        let seeks = self.data_files as u64;
        let opens = self.data_files as u64 + 2 + self.frames as u64;
        let closes = 1 + self.frames as u64;
        (reads, async_reads, writes, seeks, opens, closes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload, Backend};
    use paragon_sim::MachineConfig;
    use sio_core::event::IoOp;

    #[test]
    fn paper_counts_match_table3() {
        let p = RenderParams::paper();
        let (reads, async_reads, writes, seeks, opens, closes) = p.expected_counts();
        assert_eq!(reads, 121);
        assert_eq!(async_reads, 436);
        assert_eq!(writes, 300);
        assert_eq!(seeks, 4);
        assert_eq!(opens, 106);
        assert_eq!(closes, 101);
    }

    #[test]
    fn paper_volumes_match_table3() {
        let p = RenderParams::paper();
        // AsynchRead volume: paper 880,849,125 B; ours within 0.1 %.
        let av = p.data_volume() as f64;
        assert!((av - 880_849_125.0).abs() / 880_849_125.0 < 0.001, "{av}");
        // Write volume: paper 98,305,400 B exactly.
        let wv = p.frames as u64 * (p.frame_bytes + 2 * p.frame_small_bytes);
        assert_eq!(wv, 98_305_400);
        // Read volume: paper 8,457 B; ours 121 × 70 = 8,470.
        let rv = 121u64 * p.view_bytes;
        assert!((rv as f64 - 8_457.0).abs() < 50.0);
    }

    #[test]
    fn file_read_distribution_sums() {
        let p = RenderParams::paper();
        let (big, half): (u32, u32) = (0..p.data_files)
            .map(|k| p.file_reads(k))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
        assert_eq!(big, p.reads_big);
        assert_eq!(half, p.reads_half);
    }

    #[test]
    fn small_run_counts_and_phases() {
        let p = RenderParams::small(4, 3);
        let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);
        let (reads, async_reads, writes, seeks, opens, closes) = p.expected_counts();
        assert_eq!(out.trace.of_op(IoOp::Read).count() as u64, reads);
        assert_eq!(out.trace.of_op(IoOp::AsyncRead).count() as u64, async_reads);
        assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, writes);
        assert_eq!(out.trace.of_op(IoOp::Seek).count() as u64, seeks);
        assert_eq!(out.trace.of_op(IoOp::Open).count() as u64, opens);
        assert_eq!(out.trace.of_op(IoOp::Close).count() as u64, closes);
        // Every async read has a matching iowait.
        assert_eq!(
            out.trace.of_op(IoOp::IoWait).count(),
            out.trace.of_op(IoOp::AsyncRead).count()
        );
    }

    #[test]
    fn frame_writes_are_one_per_file() {
        let p = RenderParams::small(4, 3);
        let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);
        for i in 0..3 {
            let f = p.frame_file(i);
            let big_writes = out
                .trace
                .of_op(IoOp::Write)
                .filter(|e| e.file == f && e.bytes == p.frame_bytes)
                .count();
            assert_eq!(big_writes, 1, "frame {i}");
        }
    }

    #[test]
    fn init_phase_precedes_render_phase() {
        let p = RenderParams::small(4, 3);
        let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);
        let last_async = out
            .trace
            .of_op(IoOp::AsyncRead)
            .map(|e| e.start)
            .max()
            .unwrap();
        let first_write = out.trace.of_op(IoOp::Write).map(|e| e.start).min().unwrap();
        assert!(last_async < first_write, "phases interleaved");
    }
}

//! Application checkpoint plans: periodic epoch snapshots written through
//! the active filesystem, plus the resume bookkeeping.
//!
//! A **checkpoint plan** describes how an application protects its progress:
//! every `interval` work units (quadrature iterations, integral records,
//! frames) each participating node commits an epoch boundary by
//!
//! 1. `sync`ing the data files the epoch's work went to (flushing
//!    write-behind buffers; the commit is only as durable as the data it
//!    describes),
//! 2. seeking to its private slot in the shared checkpoint file and writing
//!    one fixed-size [`CheckpointImage`] record (header + checksummed
//!    payload, see `sio_core::checkpoint`),
//! 3. `sync`ing the checkpoint file itself.
//!
//! Records are laid out epoch-major — epoch `k` (1-based) of node `n` lives
//! at byte `((k-1)·nodes + n)·record_bytes` — so a crashed run's checkpoint
//! file is a clean prefix of commit attempts and the recovery analysis can
//! replay it through `CheckpointStore::try_commit` byte-for-byte.
//!
//! `resume_epoch > 0` builds the *restarted* run: completed work units are
//! skipped, data files written before the crash become pre-existing inputs,
//! and the first resumed operation explicitly seeks past the recovered
//! region.

use paragon_sim::program::{IoRequest, ScriptOp};
use sio_core::checkpoint::{progress_payload, CheckpointImage, HEADER_LEN};
use sio_pfs::FileSpec;

use crate::workload::Workload;

/// Fixed on-disk size of one checkpoint record (header + payload).
pub const RECORD_BYTES: u64 = 4_096;

/// How an application checkpoints itself, and where a resumed run starts.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// File id of the shared checkpoint file.
    pub file: u32,
    /// Application id baked into every record's header.
    pub app_id: u32,
    /// Participating writer nodes (RENDER checkpoints from the gateway
    /// only, so this can be smaller than the machine's node count).
    pub nodes: u32,
    /// Work units (iterations / records / frames) per epoch.
    pub interval: u32,
    /// Bytes of one checkpoint record (encoded image length).
    pub record_bytes: u64,
    /// Epoch boundaries in a full run: `ceil(units / interval)`.
    pub epochs: u32,
    /// Epoch the run starts from: 0 for a fresh run, `k` to skip the work
    /// covered by boundary `k`.
    pub start_epoch: u32,
    /// Data files whose contents the checkpoints protect (fed to PPFS
    /// dirty-loss accounting via `mark_checkpoint_covered`).
    pub covered: Vec<u32>,
}

impl CheckpointPlan {
    /// A fresh-run plan over `units` work units.
    pub fn new(file: u32, app_id: u32, nodes: u32, interval: u32, units: u32) -> CheckpointPlan {
        assert!(interval > 0, "checkpoint interval must be positive");
        CheckpointPlan {
            file,
            app_id,
            nodes,
            interval,
            record_bytes: RECORD_BYTES,
            epochs: units.div_ceil(interval),
            start_epoch: 0,
            covered: Vec::new(),
        }
    }

    /// The same plan, resumed from epoch boundary `epoch`.
    pub fn resumed(mut self, epoch: u32) -> CheckpointPlan {
        assert!(epoch <= self.epochs, "resume epoch beyond plan");
        self.start_epoch = epoch;
        self
    }

    /// Work units covered by (completed strictly before) boundary `epoch`,
    /// out of `units` total for one writer.
    pub fn units_at(&self, epoch: u32, units: u32) -> u32 {
        units.min(epoch.saturating_mul(self.interval))
    }

    /// True when boundary `epoch` exists for a writer with `units` work
    /// units (a writer stops checkpointing once its own work is covered).
    pub fn writes_boundary(&self, epoch: u32, units: u32) -> bool {
        epoch >= 1 && (epoch - 1) * self.interval < units
    }

    /// Byte offset of node `node`'s record for boundary `epoch` (1-based).
    pub fn slot_offset(&self, epoch: u32, node: u32) -> u64 {
        ((epoch as u64 - 1) * self.nodes as u64 + node as u64) * self.record_bytes
    }

    /// The checkpoint image node `node` writes at boundary `epoch`.
    pub fn image(&self, node: u32, epoch: u32) -> CheckpointImage {
        let payload_len = self.record_bytes as usize - HEADER_LEN;
        CheckpointImage {
            app_id: self.app_id,
            node,
            epoch,
            payload: progress_payload(self.app_id, node, epoch, payload_len),
        }
    }

    /// Script ops for one commit: sync the epoch's data files, write the
    /// record into this node's slot, sync the checkpoint file.
    pub fn commit_ops(&self, node: u32, epoch: u32, data_files: &[u32]) -> Vec<ScriptOp> {
        let mut ops = Vec::with_capacity(data_files.len() + 3);
        for &f in data_files {
            ops.push(ScriptOp::Io(IoRequest::sync(f)));
        }
        ops.push(ScriptOp::Io(IoRequest::seek(
            self.file,
            self.slot_offset(epoch, node),
        )));
        ops.push(ScriptOp::Io(IoRequest::write(self.file, self.record_bytes)));
        ops.push(ScriptOp::Io(IoRequest::sync(self.file)));
        ops
    }

    /// FileSpec for the checkpoint file: fresh output on a first run, a
    /// pre-existing input (sized to the recovered epochs) on resume.
    pub fn file_spec(&self, name: &str) -> FileSpec {
        if self.start_epoch == 0 {
            FileSpec::output(name)
        } else {
            FileSpec::input(
                name,
                self.start_epoch as u64 * self.nodes as u64 * self.record_bytes,
            )
        }
    }

    /// Slot names for `CheckpointStore`, one per writer node.
    pub fn slot_names(&self) -> Vec<String> {
        (0..self.nodes).map(|n| format!("node-{n:03}")).collect()
    }
}

/// A workload plus the checkpoint plan that produced it — everything the
/// recovery orchestrator needs to crash it, read back its checkpoint file,
/// and build the resumed run.
#[derive(Debug, Clone)]
pub struct CheckpointedWorkload {
    /// The runnable workload (scripts already contain the commit ops).
    pub workload: Workload,
    /// The plan describing the checkpoint geometry.
    pub plan: CheckpointPlan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::checkpoint::CheckpointStore;

    #[test]
    fn slots_are_epoch_major_and_disjoint() {
        let p = CheckpointPlan::new(6, 1, 4, 8, 52);
        assert_eq!(p.epochs, 7);
        assert_eq!(p.slot_offset(1, 0), 0);
        assert_eq!(p.slot_offset(1, 3), 3 * RECORD_BYTES);
        assert_eq!(p.slot_offset(2, 0), 4 * RECORD_BYTES);
        let mut seen = std::collections::HashSet::new();
        for k in 1..=p.epochs {
            for n in 0..p.nodes {
                assert!(seen.insert(p.slot_offset(k, n)));
            }
        }
    }

    #[test]
    fn units_and_boundaries_cover_ragged_work() {
        // 4 nodes, 10 units each except the last with 3, interval 4.
        let p = CheckpointPlan::new(6, 1, 4, 4, 10);
        assert_eq!(p.epochs, 3);
        assert_eq!(p.units_at(1, 10), 4);
        assert_eq!(p.units_at(3, 10), 10);
        assert!(p.writes_boundary(1, 3));
        assert!(!p.writes_boundary(2, 3)); // 3 units done at boundary 1
        assert!(p.writes_boundary(3, 10));
    }

    #[test]
    fn images_validate_and_commit_in_order() {
        let p = CheckpointPlan::new(6, 7, 2, 4, 8);
        let mut store = CheckpointStore::new();
        for k in 1..=p.epochs {
            for n in 0..p.nodes {
                let bytes = p.image(n, k).encode();
                assert_eq!(bytes.len() as u64, p.record_bytes);
                store
                    .try_commit(&p.slot_names()[n as usize], &bytes)
                    .unwrap();
            }
        }
        assert_eq!(store.consistent_epoch(&p.slot_names()), Some(p.epochs));
    }

    #[test]
    fn commit_ops_sync_data_then_write_then_sync() {
        use paragon_sim::program::IoVerb;
        let p = CheckpointPlan::new(6, 1, 4, 8, 52);
        let ops = p.commit_ops(2, 3, &[7, 8]);
        let verbs: Vec<_> = ops
            .iter()
            .map(|op| match op {
                ScriptOp::Io(r) => (r.verb, r.file),
                _ => panic!("non-io op in commit"),
            })
            .collect();
        assert_eq!(
            verbs,
            vec![
                (IoVerb::Sync, 7),
                (IoVerb::Sync, 8),
                (IoVerb::Seek, 6),
                (IoVerb::Write, 6),
                (IoVerb::Sync, 6),
            ]
        );
    }
}

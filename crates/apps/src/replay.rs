//! Trace-driven workload replay.
//!
//! §8 of the paper argues that "the development of larger application
//! skeletons and workload mixes are an essential part of developing high
//! performance input/output systems", and that synthetic kernels mispredict
//! full-application behavior. Replay is the bridge: take a *captured* trace
//! (from the simulator or from real I/O instrumented with
//! [`sio_core::instrument`]), reconstruct one script per node — preserving
//! each node's operation order, explicit offsets, request sizes, and the
//! compute gaps between calls — and run it against any machine or file
//! system configuration.
//!
//! Replay is offset-explicit: reads and writes carry the offsets the
//! original run resolved, so the replayed workload is independent of the
//! pointer semantics that produced it (a trace captured under M_RECORD
//! replays correctly on a file system that never heard of M_RECORD).

use crate::workload::Workload;
use paragon_sim::program::{IoRequest, ScriptOp};
use paragon_sim::SimDuration;
use sio_core::event::{IoEvent, IoOp};
use sio_core::trace::Trace;
use sio_pfs::{AccessMode, FileSpec};
use std::collections::BTreeMap;

/// Options controlling trace reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOptions {
    /// Scale factor on inter-operation compute gaps (1.0 = faithful; 0.0 =
    /// back-to-back I/O, a stress replay).
    pub think_time_scale: f64,
    /// Cap on any single reconstructed compute gap, seconds (guards against
    /// replaying a long idle tail).
    pub max_gap_secs: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            think_time_scale: 1.0,
            max_gap_secs: f64::INFINITY,
        }
    }
}

/// Reconstruct a runnable workload from a trace.
///
/// Every file seen in the trace is registered as a pre-existing input file
/// sized to the largest extent touched (so replayed reads succeed even
/// before the replayed writes that originally produced the data). Node ids
/// are compacted to `0..n` in ascending original order.
pub fn workload_from_trace(trace: &Trace, opts: ReplayOptions) -> Workload {
    // File table: observed length per file id.
    let mut file_len: BTreeMap<u32, u64> = BTreeMap::new();
    let mut per_node: BTreeMap<u32, Vec<&IoEvent>> = BTreeMap::new();
    for ev in trace.events() {
        if ev.op.is_data() || ev.op == IoOp::Seek {
            let len = file_len.entry(ev.file).or_insert(0);
            *len = (*len).max(ev.offset + ev.bytes);
        } else {
            file_len.entry(ev.file).or_insert(0);
        }
        per_node.entry(ev.node).or_default().push(ev);
    }
    // Dense file ids (trace file ids may be sparse, e.g. ESCAT's 3..11).
    let file_index: BTreeMap<u32, u32> = file_len
        .keys()
        .enumerate()
        .map(|(i, &f)| (f, i as u32))
        .collect();
    let files: Vec<FileSpec> = file_len
        .iter()
        .map(|(&orig, &len)| FileSpec::input(&format!("replay-{orig}"), len.max(1)))
        .collect();

    let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(per_node.len());
    for events in per_node.values() {
        let mut ops: Vec<ScriptOp> = Vec::with_capacity(events.len() * 2);
        let mut opened: BTreeMap<u32, ()> = BTreeMap::new();
        let mut clock: u64 = 0;
        for ev in events {
            // Reconstruct think time from the gap between the previous
            // operation's end and this one's start.
            if ev.start > clock {
                let gap_ns = (ev.start - clock) as f64 * opts.think_time_scale;
                let gap = SimDuration::from_secs_f64((gap_ns / 1.0e9).min(opts.max_gap_secs));
                if gap.nanos() > 0 {
                    ops.push(ScriptOp::Compute(gap));
                }
            }
            clock = clock.max(ev.end);
            let file = file_index[&ev.file];
            // Replay opens lazily: the original open order is preserved via
            // the events themselves; IoWait/AsyncRead pairs are replayed as
            // async issue + wait.
            match ev.op {
                IoOp::Open => {
                    opened.insert(file, ());
                    ops.push(ScriptOp::Io(IoRequest::open(
                        file,
                        AccessMode::MUnix.code(),
                    )));
                }
                IoOp::Close => {
                    opened.remove(&file);
                    ops.push(ScriptOp::Io(IoRequest::close(file)));
                }
                IoOp::Read | IoOp::Write | IoOp::AsyncRead => {
                    if opened.insert(file, ()).is_none() {
                        ops.push(ScriptOp::Io(IoRequest::open(
                            file,
                            AccessMode::MUnix.code(),
                        )));
                    }
                    let mut req = if ev.op.is_write() {
                        IoRequest::write(file, ev.bytes)
                    } else {
                        IoRequest::read(file, ev.bytes)
                    };
                    req.offset = Some(ev.offset);
                    if ev.op == IoOp::AsyncRead {
                        ops.push(ScriptOp::IoAsync(req));
                    } else {
                        ops.push(ScriptOp::Io(req));
                    }
                }
                IoOp::IoWait => ops.push(ScriptOp::WaitOldest),
                IoOp::Seek => {
                    if opened.insert(file, ()).is_none() {
                        ops.push(ScriptOp::Io(IoRequest::open(
                            file,
                            AccessMode::MUnix.code(),
                        )));
                    }
                    ops.push(ScriptOp::Io(IoRequest::seek(file, ev.offset)));
                }
                IoOp::Flush => ops.push(ScriptOp::Io(IoRequest::flush(file))),
                IoOp::Lsize => ops.push(ScriptOp::Io(IoRequest::lsize(file))),
            }
        }
        scripts.push(ops);
    }

    Workload {
        label: format!("replay-{}", trace.meta().label),
        files,
        scripts,
        groups: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload, Backend};
    use crate::EscatParams;
    use paragon_sim::MachineConfig;

    fn count(trace: &Trace, op: IoOp) -> usize {
        trace.of_op(op).count()
    }

    #[test]
    fn replay_preserves_operation_counts() {
        let m = MachineConfig::tiny(4, 2);
        let original = run_workload(&m, &EscatParams::small(4, 5).workload(), &Backend::Pfs);
        let replayed = run_workload(
            &m,
            &workload_from_trace(&original.trace, ReplayOptions::default()),
            &Backend::Pfs,
        );
        for op in [IoOp::Read, IoOp::Write, IoOp::Seek, IoOp::Open, IoOp::Close] {
            // Opens/closes can differ by lazy-open insertion; data ops and
            // seeks must match exactly.
            if matches!(op, IoOp::Read | IoOp::Write | IoOp::Seek) {
                assert_eq!(
                    count(&original.trace, op),
                    count(&replayed.trace, op),
                    "{op:?}"
                );
            }
        }
        // Byte volumes match exactly.
        assert_eq!(original.trace.data_volume(), replayed.trace.data_volume());
    }

    #[test]
    fn replay_preserves_offsets_and_sizes() {
        let m = MachineConfig::tiny(4, 2);
        let original = run_workload(&m, &EscatParams::small(4, 4).workload(), &Backend::Pfs);
        let replayed = run_workload(
            &m,
            &workload_from_trace(&original.trace, ReplayOptions::default()),
            &Backend::Pfs,
        );
        let sig = |t: &Trace| -> Vec<(u32, u64, u64)> {
            let mut v: Vec<(u32, u64, u64)> = t
                .events()
                .iter()
                .filter(|e| e.op.is_write())
                .map(|e| (e.node, e.offset, e.bytes))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sig(&original.trace), sig(&replayed.trace));
    }

    #[test]
    fn replay_think_time_controls_duration() {
        let m = MachineConfig::tiny(4, 2);
        let original = run_workload(&m, &EscatParams::small(4, 5).workload(), &Backend::Pfs);
        let faithful = run_workload(
            &m,
            &workload_from_trace(&original.trace, ReplayOptions::default()),
            &Backend::Pfs,
        );
        let stress = run_workload(
            &m,
            &workload_from_trace(
                &original.trace,
                ReplayOptions {
                    think_time_scale: 0.0,
                    max_gap_secs: 0.0,
                },
            ),
            &Backend::Pfs,
        );
        // Stripping think time shortens the run (I/O cost remains).
        assert!(
            stress.wall_secs() < faithful.wall_secs() * 0.8,
            "stress {} vs faithful {}",
            stress.wall_secs(),
            faithful.wall_secs()
        );
        // Faithful replay lands near the original wall time.
        let ratio = faithful.wall_secs() / original.wall_secs();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn replay_runs_on_other_backend_and_machine() {
        // Capture on PFS with 2 I/O nodes, replay on PPFS with 4: replay is
        // configuration-independent.
        let original = run_workload(
            &MachineConfig::tiny(4, 2),
            &EscatParams::small(4, 4).workload(),
            &Backend::Pfs,
        );
        let replayed = run_workload(
            &MachineConfig::tiny(4, 4),
            &workload_from_trace(&original.trace, ReplayOptions::default()),
            &Backend::Ppfs(sio_ppfs::PolicyConfig::escat_tuned()),
        );
        assert_eq!(original.trace.data_volume(), replayed.trace.data_volume());
    }

    #[test]
    fn replay_of_empty_trace_is_empty() {
        let t = sio_core::trace::Tracer::new("empty").finish();
        let w = workload_from_trace(&t, ReplayOptions::default());
        assert!(w.scripts.is_empty());
        assert!(w.files.is_empty());
    }
}

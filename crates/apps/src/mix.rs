//! Multi-application workload mixes.
//!
//! §8 of the paper: "The impact of file system changes on real applications
//! or *application mixes* depends on much more complex application
//! structure, suggesting that the development of larger application
//! skeletons and workload mixes are an essential part of developing high
//! performance input/output systems." [`combine`] places several workloads
//! on disjoint node ranges of one machine, sharing the I/O nodes — exactly
//! the contention scenario a production Paragon saw when ESCAT and a
//! chemistry pipeline ran side by side.
//!
//! Node ids, file ids, and collective groups are remapped so the
//! applications stay logically independent while competing for the same
//! metadata server, I/O-node queues, and disks.

use crate::workload::Workload;
use paragon_sim::program::ScriptOp;
use paragon_sim::NodeId;

/// Combine workloads onto disjoint node ranges (in order: workload 0 gets
/// nodes `0..n0`, workload 1 gets `n0..n0+n1`, ...). File ids are shifted
/// into disjoint ranges; each sub-workload's global barrier/broadcast group
/// is remapped to a group containing only its own nodes.
///
/// # Panics
/// If a sub-workload uses groups other than 0 (the applications in this
/// crate only use the global group).
pub fn combine(label: &str, parts: &[&Workload]) -> Workload {
    let mut files = Vec::new();
    let mut scripts: Vec<Vec<ScriptOp>> = Vec::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut node_offset: NodeId = 0;
    let mut file_offset: u32 = 0;

    for (i, part) in parts.iter().enumerate() {
        assert!(
            part.groups.is_empty(),
            "sub-workload '{}' uses custom groups; combine supports group 0 only",
            part.label
        );
        let n = part.scripts.len() as NodeId;
        // Group (i + 1) after combination: runner registers groups 1..=k.
        let group_id = (i + 1) as u32;
        groups.push((node_offset..node_offset + n).collect());

        for script in &part.scripts {
            let mut ops = Vec::with_capacity(script.len());
            for op in script {
                let op = match *op {
                    ScriptOp::Io(mut req) => {
                        req.file += file_offset;
                        ScriptOp::Io(req)
                    }
                    ScriptOp::IoAsync(mut req) => {
                        req.file += file_offset;
                        ScriptOp::IoAsync(req)
                    }
                    ScriptOp::Barrier(g) => {
                        assert_eq!(g, 0, "non-global barrier in sub-workload");
                        ScriptOp::Barrier(group_id)
                    }
                    ScriptOp::Broadcast { root, bytes, group } => {
                        assert_eq!(group, 0, "non-global broadcast in sub-workload");
                        ScriptOp::Broadcast {
                            root: root + node_offset,
                            bytes,
                            group: group_id,
                        }
                    }
                    ScriptOp::Send { to, bytes, tag } => ScriptOp::Send {
                        to: to + node_offset,
                        bytes,
                        // Tag-space separation keeps cross-app messages
                        // impossible even if tags collide.
                        tag: tag + group_id * 1_000_000,
                    },
                    ScriptOp::Recv { from, tag } => ScriptOp::Recv {
                        from: from + node_offset,
                        tag: tag + group_id * 1_000_000,
                    },
                    other => other,
                };
                ops.push(op);
            }
            scripts.push(ops);
        }
        files.extend(part.files.iter().cloned());
        node_offset += n;
        file_offset += part.files.len() as u32;
    }

    Workload {
        label: label.to_string(),
        files,
        scripts,
        groups,
    }
}

/// Which nodes of a combined workload belong to sub-workload `i`.
pub fn node_range(parts: &[&Workload], i: usize) -> std::ops::Range<NodeId> {
    let start: NodeId = parts[..i].iter().map(|p| p.scripts.len() as NodeId).sum();
    start..start + parts[i].scripts.len() as NodeId
}

/// Which file ids of a combined workload belong to sub-workload `i`.
pub fn file_range(parts: &[&Workload], i: usize) -> std::ops::Range<u32> {
    let start: u32 = parts[..i].iter().map(|p| p.files.len() as u32).sum();
    start..start + parts[i].files.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload, Backend};
    use crate::{EscatParams, HtfParams};
    use paragon_sim::MachineConfig;
    use sio_core::event::IoOp;
    use sio_core::trace::Trace;

    fn split_trace(trace: &Trace, nodes: std::ops::Range<u32>) -> Vec<sio_core::IoEvent> {
        trace
            .events()
            .iter()
            .filter(|e| nodes.contains(&e.node))
            .copied()
            .collect()
    }

    #[test]
    fn combined_mix_runs_clean_and_preserves_per_app_counts() {
        let escat = EscatParams::small(4, 4);
        let htf = HtfParams::small(4);
        let w_escat = escat.workload();
        let w_pscf = htf.pscf_workload();
        let parts = [&w_escat, &w_pscf];
        let mixed = combine("escat+pscf", &parts);
        assert_eq!(mixed.scripts.len(), 8);
        assert_eq!(mixed.groups.len(), 2);

        let m = MachineConfig::tiny(8, 2);
        let out = run_workload(&m, &mixed, &Backend::Pfs);

        // Per-app event counts match the isolated runs.
        let iso_escat = run_workload(&MachineConfig::tiny(4, 2), &w_escat, &Backend::Pfs);
        let iso_pscf = run_workload(&MachineConfig::tiny(4, 2), &w_pscf, &Backend::Pfs);
        let mixed_escat = split_trace(&out.trace, 0..4);
        let mixed_pscf = split_trace(&out.trace, 4..8);
        assert_eq!(mixed_escat.len(), iso_escat.trace.len());
        assert_eq!(mixed_pscf.len(), iso_pscf.trace.len());
    }

    #[test]
    fn mixed_apps_do_not_share_files() {
        let escat = EscatParams::small(3, 3);
        let w_a = escat.workload();
        let w_b = escat.workload();
        let parts = [&w_a, &w_b];
        let mixed = combine("a+b", &parts);
        let m = MachineConfig::tiny(6, 2);
        let out = run_workload(&m, &mixed, &Backend::Pfs);
        // App A's nodes only touch app A's files and vice versa.
        let fa = file_range(&parts, 0);
        let fb = file_range(&parts, 1);
        for ev in out.trace.events() {
            if (0..3).contains(&ev.node) {
                assert!(fa.contains(&ev.file), "app A touched file {}", ev.file);
            } else {
                assert!(fb.contains(&ev.file), "app B touched file {}", ev.file);
            }
        }
    }

    #[test]
    fn interference_inflates_io_time() {
        // Two copies of the ESCAT write phase sharing 2 I/O nodes must see
        // more total I/O time than one copy alone (queueing interference).
        let escat = EscatParams::small(4, 6);
        let w = escat.workload();
        let m_iso = MachineConfig::tiny(4, 2);
        let iso = run_workload(&m_iso, &w, &Backend::Pfs);

        let w2 = escat.workload();
        let parts = [&w, &w2];
        let mixed = combine("2x-escat", &parts);
        let m_mix = MachineConfig::tiny(8, 2);
        let out = run_workload(&m_mix, &mixed, &Backend::Pfs);

        let io_time = |evs: &[sio_core::IoEvent]| -> u64 {
            evs.iter()
                .filter(|e| e.op == IoOp::Write)
                .map(|e| e.duration())
                .sum()
        };
        let mixed_app0 = split_trace(&out.trace, 0..4);
        let iso_time = io_time(iso.trace.events());
        let mix_time = io_time(&mixed_app0);
        assert!(
            mix_time > iso_time,
            "no interference visible: iso {iso_time} vs mixed {mix_time}"
        );
    }

    #[test]
    fn ranges_are_consistent() {
        let a = EscatParams::small(3, 2).workload();
        let b = EscatParams::small(5, 2).workload();
        let parts = [&a, &b];
        assert_eq!(node_range(&parts, 0), 0..3);
        assert_eq!(node_range(&parts, 1), 3..8);
        assert_eq!(file_range(&parts, 0), 0..12);
        assert_eq!(file_range(&parts, 1), 12..24);
    }

    #[test]
    #[should_panic(expected = "custom groups")]
    fn custom_groups_rejected() {
        let mut a = EscatParams::small(2, 2).workload();
        a.groups.push(vec![0]);
        let b = EscatParams::small(2, 2).workload();
        let _ = combine("bad", &[&a, &b]);
    }
}

//! ESCAT — the electron scattering (Schwinger multichannel) skeleton.
//!
//! Phase structure (§4.1, §5.1 of the paper), 128 nodes:
//!
//! 1. **Compulsory input** — node 0 reads the problem definition from three
//!    files (ids 9, 10, 11) with a bimodal request mix, then broadcasts to
//!    the other nodes (the developers measured this to beat parallel reads,
//!    §5.2).
//! 2. **Quadrature** — repeated compute / synchronize / write cycles: every
//!    node seeks to a computed offset ("dependent on the node number,
//!    iteration, and PFS stripe size") in two staging files (ids 7, 8) and
//!    writes a 2 KB record, M_UNIX mode. Each node's region is padded to a
//!    stripe-unit multiple so its data stays contiguous. The compute time
//!    per cycle shrinks as the phase proceeds — the Figure 4 burst spacing
//!    (~160 s down to ~80 s).
//! 3. **Reload** — each node rereads exactly the quadrature data it wrote,
//!    one large contiguous read per staging file.
//! 4. **Output** — all nodes gather their linear-system pieces to node 0,
//!    which writes three output files (ids 3, 4, 5).
//!
//! `EscatParams::paper()` reproduces Table 1 operation counts and volumes
//! and the Table 2 size bins exactly (see EXPERIMENTS.md for the residuals).

use crate::checkpoint::{CheckpointPlan, CheckpointedWorkload};
use crate::workload::{op_compute, op_open, Workload};
use paragon_sim::program::{IoRequest, ScriptOp};
use serde::{Deserialize, Serialize};
use sio_pfs::{AccessMode, FileSpec};

/// ESCAT workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EscatParams {
    /// Compute nodes.
    pub nodes: u32,
    /// Quadrature iterations (each writes one record per staging file per
    /// node).
    pub iters: u32,
    /// Iterations that issue an explicit seek before the write (the
    /// remainder append at the already-correct pointer).
    pub seek_iters: u32,
    /// Quadrature record size, bytes.
    pub quad_bytes: u64,
    /// Stripe unit used for region padding (PFS: 64 KB).
    pub stripe_unit: u64,
    /// Initial-read counts and sizes (by node 0, spread over files 9–11).
    pub init_small_reads: u32,
    /// Size of each small initial read.
    pub init_small_bytes: u64,
    /// Medium initial reads.
    pub init_medium_reads: u32,
    /// Size of each medium initial read.
    pub init_medium_bytes: u64,
    /// Large initial reads.
    pub init_large_reads: u32,
    /// Size of each large initial read.
    pub init_large_bytes: u64,
    /// Final output writes (by node 0, spread over files 3–5).
    pub output_writes: u32,
    /// Size of each output write.
    pub output_bytes: u64,
    /// Compute seconds per quadrature iteration at the start of the phase.
    pub compute_start: f64,
    /// Compute seconds per iteration at the end of the phase.
    pub compute_end: f64,
    /// Compute seconds for the energy-dependent phase (before reload).
    pub energy_compute: f64,
}

/// ESCAT file ids, matching the identifiers in the paper's Figure 5.
pub mod files {
    /// Final output files.
    pub const OUTPUT: [u32; 3] = [3, 4, 5];
    /// Checkpoint file (one of the ids unused by the paper's run).
    pub const CHECKPOINT: u32 = 6;
    /// Quadrature staging files.
    pub const STAGING: [u32; 2] = [7, 8];
    /// Initial input files.
    pub const INPUT: [u32; 3] = [9, 10, 11];
}

impl EscatParams {
    /// The paper's run: 128 nodes, ~1.75 h execution, Tables 1–2.
    pub fn paper() -> EscatParams {
        EscatParams {
            nodes: 128,
            iters: 52,
            seek_iters: 47,
            quad_bytes: 2_000,
            stripe_unit: 64 * 1024,
            init_small_reads: 297,
            init_small_bytes: 2_048,
            init_medium_reads: 3,
            init_medium_bytes: 32_768,
            init_large_reads: 4,
            init_large_bytes: 245_760,
            output_writes: 18,
            output_bytes: 3_800,
            compute_start: 150.0,
            compute_end: 70.0,
            energy_compute: 60.0,
        }
    }

    /// A scaled-down variant for tests and quick examples: `nodes` nodes,
    /// `iters` iterations, compute shrunk by 1000×.
    pub fn small(nodes: u32, iters: u32) -> EscatParams {
        EscatParams {
            nodes,
            iters,
            seek_iters: iters.saturating_sub(1),
            init_small_reads: 9,
            init_medium_reads: 3,
            init_large_reads: 3,
            output_writes: 6,
            compute_start: 0.15,
            compute_end: 0.07,
            energy_compute: 0.06,
            ..EscatParams::paper()
        }
    }

    /// Per-node staging region stride: the written bytes rounded up to a
    /// stripe-unit multiple.
    pub fn region_stride(&self) -> u64 {
        let data = self.iters as u64 * self.quad_bytes;
        data.div_ceil(self.stripe_unit) * self.stripe_unit
    }

    /// Byte offset of node `i`'s staging region.
    pub fn region_base(&self, node: u32) -> u64 {
        node as u64 * self.region_stride()
    }

    /// Compute seconds for quadrature iteration `j` (linear ramp down).
    pub fn iter_compute(&self, j: u32) -> f64 {
        if self.iters <= 1 {
            return self.compute_start;
        }
        let frac = j as f64 / (self.iters - 1) as f64;
        self.compute_start + frac * (self.compute_end - self.compute_start)
    }

    /// Total volume of the initial input, bytes.
    pub fn init_volume(&self) -> u64 {
        self.init_small_reads as u64 * self.init_small_bytes
            + self.init_medium_reads as u64 * self.init_medium_bytes
            + self.init_large_reads as u64 * self.init_large_bytes
    }

    /// Build the runnable workload.
    pub fn workload(&self) -> Workload {
        self.build_workload(false)
    }

    /// The staging phase with a record-cyclic layout instead of contiguous
    /// per-node regions: staging files open in `M_RECORD` mode, so
    /// iteration `j`'s quadrature records from all nodes land adjacent in
    /// the file (`(j*nodes + rank) * quad_bytes`). The energy-phase reload
    /// reads the records back one at a time through the same mode. This is
    /// the layout where collective two-phase I/O pays: each round's writes
    /// coalesce into one contiguous run per I/O node.
    pub fn interleaved_workload(&self) -> Workload {
        self.build_workload(true)
    }

    fn build_workload(&self, interleaved: bool) -> Workload {
        let mut specs: Vec<FileSpec> = Vec::new();
        for id in 0..12u32 {
            let spec = if files::INPUT.contains(&id) {
                FileSpec::input(
                    &format!("escat-input-{id}"),
                    self.init_volume() / 3 + (1 << 20),
                )
            } else if files::STAGING.contains(&id) {
                FileSpec::output(&format!("escat-staging-{id}"))
            } else if files::OUTPUT.contains(&id) {
                FileSpec::output(&format!("escat-output-{id}"))
            } else {
                FileSpec::input("unused", 0)
            };
            specs.push(spec);
        }

        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        let gather_bytes = 2 * self.iters as u64 * self.quad_bytes;

        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();

            // --- Phase 1: compulsory input (node 0) + broadcast ---
            if node == 0 {
                for f in files::INPUT {
                    ops.push(op_open(f, AccessMode::MUnix));
                }
                for k in 0..self.init_small_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_small_bytes)));
                }
                for k in 0..self.init_medium_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_medium_bytes)));
                }
                for k in 0..self.init_large_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_large_bytes)));
                }
                for f in files::INPUT {
                    ops.push(ScriptOp::Io(IoRequest::close(f)));
                }
            }
            ops.push(ScriptOp::Broadcast {
                root: 0,
                bytes: self.init_volume(),
                group: 0,
            });

            // --- Phase 2: quadrature compute/seek/write cycles ---
            let stage_mode = if interleaved {
                AccessMode::MRecord
            } else {
                AccessMode::MUnix
            };
            for f in files::STAGING {
                ops.push(op_open(f, stage_mode));
            }
            let base = self.region_base(node);
            for j in 0..self.iters {
                ops.push(op_compute(self.iter_compute(j)));
                ops.push(ScriptOp::Barrier(0));
                for f in files::STAGING {
                    if !interleaved && j < self.seek_iters {
                        ops.push(ScriptOp::Io(IoRequest::seek(
                            f,
                            base + j as u64 * self.quad_bytes,
                        )));
                    }
                    ops.push(ScriptOp::Io(IoRequest::write(f, self.quad_bytes)));
                }
            }

            // --- Phase 3: energy-dependent calculation + reload ---
            ops.push(op_compute(self.energy_compute));
            ops.push(ScriptOp::Barrier(0));
            if interleaved {
                // Record mode's cursor is already past the written data, so
                // the reload reopens the staging files in plain M_UNIX mode
                // and reads this node's own records back by explicit offset,
                // one read per quadrature record.
                for f in files::STAGING {
                    ops.push(ScriptOp::Io(IoRequest::close(f)));
                }
                for f in files::STAGING {
                    ops.push(op_open(f, AccessMode::MUnix));
                }
                ops.push(ScriptOp::Barrier(0));
                for f in files::STAGING {
                    for j in 0..self.iters {
                        let mut req = IoRequest::read(f, self.quad_bytes);
                        req.offset =
                            Some((j as u64 * self.nodes as u64 + node as u64) * self.quad_bytes);
                        ops.push(ScriptOp::Io(req));
                    }
                }
            } else {
                for f in files::STAGING {
                    // One large contiguous read of exactly the region this
                    // node wrote (M_RECORD-equivalent fixed records in node
                    // order).
                    let mut req = IoRequest::read(f, self.region_stride());
                    req.offset = Some(base);
                    ops.push(ScriptOp::Io(req));
                }
            }
            for f in files::STAGING {
                ops.push(ScriptOp::Io(IoRequest::close(f)));
            }

            // --- Phase 4: gather to node 0 + final output ---
            if node == 0 {
                for sender in 1..self.nodes {
                    ops.push(ScriptOp::Recv {
                        from: sender,
                        tag: 900,
                    });
                }
                for f in files::OUTPUT {
                    ops.push(op_open(f, AccessMode::MUnix));
                }
                // The two stray seeks of Table 1.
                ops.push(ScriptOp::Io(IoRequest::seek(files::OUTPUT[0], 0)));
                ops.push(ScriptOp::Io(IoRequest::seek(files::OUTPUT[1], 0)));
                for k in 0..self.output_writes {
                    let f = files::OUTPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::write(f, self.output_bytes)));
                }
                for f in files::OUTPUT {
                    ops.push(ScriptOp::Io(IoRequest::close(f)));
                }
            } else {
                ops.push(ScriptOp::Send {
                    to: 0,
                    bytes: gather_bytes,
                    tag: 900,
                });
            }

            scripts.push(ops);
        }

        Workload {
            label: if interleaved {
                "escat-interleaved".to_string()
            } else {
                "escat".to_string()
            },
            files: specs,
            scripts,
            groups: Vec::new(),
        }
    }

    /// Build the checkpointed workload: every `interval` quadrature
    /// iterations each node commits an epoch boundary — sync both staging
    /// files, write its checkpoint record into file
    /// [`files::CHECKPOINT`], sync the checkpoint file. With
    /// `resume_epoch > 0` the run restarts from that boundary: phase 1 is
    /// redone (the restart cost of reloading the problem), the iterations
    /// covered by the checkpoint are skipped, and the staging/checkpoint
    /// files pre-exist holding the recovered data.
    pub fn workload_checkpointed(&self, interval: u32, resume_epoch: u32) -> CheckpointedWorkload {
        let mut plan = CheckpointPlan::new(files::CHECKPOINT, 1, self.nodes, interval, self.iters)
            .resumed(resume_epoch);
        plan.covered = files::STAGING.to_vec();
        let skip = plan.units_at(resume_epoch, self.iters);

        let mut specs: Vec<FileSpec> = Vec::new();
        for id in 0..12u32 {
            let spec = if files::INPUT.contains(&id) {
                FileSpec::input(
                    &format!("escat-input-{id}"),
                    self.init_volume() / 3 + (1 << 20),
                )
            } else if files::STAGING.contains(&id) {
                if skip > 0 {
                    FileSpec::input(
                        &format!("escat-staging-{id}"),
                        self.region_base(self.nodes - 1) + skip as u64 * self.quad_bytes,
                    )
                } else {
                    FileSpec::output(&format!("escat-staging-{id}"))
                }
            } else if files::OUTPUT.contains(&id) {
                FileSpec::output(&format!("escat-output-{id}"))
            } else if id == files::CHECKPOINT {
                plan.file_spec("escat-ckpt")
            } else {
                FileSpec::input("unused", 0)
            };
            specs.push(spec);
        }

        let mut scripts: Vec<Vec<ScriptOp>> = Vec::with_capacity(self.nodes as usize);
        let gather_bytes = 2 * self.iters as u64 * self.quad_bytes;

        for node in 0..self.nodes {
            let mut ops: Vec<ScriptOp> = Vec::new();

            // Phase 1 is identical to `workload()`: a restarted run pays
            // the compulsory-input cost again.
            if node == 0 {
                for f in files::INPUT {
                    ops.push(op_open(f, AccessMode::MUnix));
                }
                for k in 0..self.init_small_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_small_bytes)));
                }
                for k in 0..self.init_medium_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_medium_bytes)));
                }
                for k in 0..self.init_large_reads {
                    let f = files::INPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::read(f, self.init_large_bytes)));
                }
                for f in files::INPUT {
                    ops.push(ScriptOp::Io(IoRequest::close(f)));
                }
            }
            ops.push(ScriptOp::Broadcast {
                root: 0,
                bytes: self.init_volume(),
                group: 0,
            });

            // Phase 2: quadrature with epoch commits every `interval`
            // iterations (plus a final partial epoch).
            for f in files::STAGING {
                ops.push(op_open(f, AccessMode::MUnix));
            }
            ops.push(op_open(files::CHECKPOINT, AccessMode::MUnix));
            let base = self.region_base(node);
            for j in skip..self.iters {
                ops.push(op_compute(self.iter_compute(j)));
                ops.push(ScriptOp::Barrier(0));
                for f in files::STAGING {
                    // A resumed run must reposition explicitly on its first
                    // iteration even past the seek/append switchover.
                    if j < self.seek_iters || (skip > 0 && j == skip) {
                        ops.push(ScriptOp::Io(IoRequest::seek(
                            f,
                            base + j as u64 * self.quad_bytes,
                        )));
                    }
                    ops.push(ScriptOp::Io(IoRequest::write(f, self.quad_bytes)));
                }
                let done = j + 1;
                if done % interval == 0 || done == self.iters {
                    ops.extend(plan.commit_ops(node, done.div_ceil(interval), &files::STAGING));
                }
            }
            ops.push(ScriptOp::Io(IoRequest::close(files::CHECKPOINT)));

            // Phases 3 and 4 as in `workload()`.
            ops.push(op_compute(self.energy_compute));
            ops.push(ScriptOp::Barrier(0));
            for f in files::STAGING {
                let mut req = IoRequest::read(f, self.region_stride());
                req.offset = Some(base);
                ops.push(ScriptOp::Io(req));
            }
            for f in files::STAGING {
                ops.push(ScriptOp::Io(IoRequest::close(f)));
            }
            if node == 0 {
                for sender in 1..self.nodes {
                    ops.push(ScriptOp::Recv {
                        from: sender,
                        tag: 900,
                    });
                }
                for f in files::OUTPUT {
                    ops.push(op_open(f, AccessMode::MUnix));
                }
                ops.push(ScriptOp::Io(IoRequest::seek(files::OUTPUT[0], 0)));
                ops.push(ScriptOp::Io(IoRequest::seek(files::OUTPUT[1], 0)));
                for k in 0..self.output_writes {
                    let f = files::OUTPUT[(k % 3) as usize];
                    ops.push(ScriptOp::Io(IoRequest::write(f, self.output_bytes)));
                }
                for f in files::OUTPUT {
                    ops.push(ScriptOp::Io(IoRequest::close(f)));
                }
            } else {
                ops.push(ScriptOp::Send {
                    to: 0,
                    bytes: gather_bytes,
                    tag: 900,
                });
            }

            scripts.push(ops);
        }

        let label = if resume_epoch == 0 {
            "escat-ckpt".to_string()
        } else {
            format!("escat-ckpt-resume{resume_epoch}")
        };
        CheckpointedWorkload {
            workload: Workload {
                label,
                files: specs,
                scripts,
                groups: Vec::new(),
            },
            plan,
        }
    }

    /// Expected operation counts: (reads, writes, seeks, opens, closes) —
    /// the Table 1 count column.
    pub fn expected_counts(&self) -> (u64, u64, u64, u64, u64) {
        let reads = (self.init_small_reads + self.init_medium_reads + self.init_large_reads) as u64
            + 2 * self.nodes as u64;
        let writes = 2 * self.iters as u64 * self.nodes as u64 + self.output_writes as u64;
        let seeks = 2 * self.seek_iters as u64 * self.nodes as u64 + 2;
        let opens = 3 + 2 * self.nodes as u64 + 3;
        let closes = opens;
        (reads, writes, seeks, opens, closes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{run_workload, Backend};
    use paragon_sim::MachineConfig;
    use sio_core::event::IoOp;

    #[test]
    fn paper_counts_match_table1() {
        let p = EscatParams::paper();
        let (reads, writes, seeks, opens, closes) = p.expected_counts();
        assert_eq!(reads, 560);
        assert_eq!(writes, 13_330);
        assert_eq!(seeks, 12_034);
        assert_eq!(opens, 262);
        assert_eq!(closes, 262);
    }

    #[test]
    fn paper_write_volume_matches_table1() {
        let p = EscatParams::paper();
        let write_vol = 2 * p.iters as u64 * p.quad_bytes * p.nodes as u64
            + p.output_writes as u64 * p.output_bytes;
        // Paper: 26,757,088 bytes. Within 0.5 %.
        let rel = (write_vol as f64 - 26_757_088.0).abs() / 26_757_088.0;
        assert!(rel < 0.005, "write volume {write_vol} off by {rel}");
    }

    #[test]
    fn region_geometry_is_stripe_padded() {
        let p = EscatParams::paper();
        assert_eq!(p.region_stride(), 131_072); // 104 KB of data → 2 units
        assert_eq!(p.region_base(1), 131_072);
        assert_eq!(p.region_base(127) % p.stripe_unit, 0);
    }

    #[test]
    fn iteration_compute_ramps_down() {
        let p = EscatParams::paper();
        assert!((p.iter_compute(0) - 150.0).abs() < 1e-9);
        assert!((p.iter_compute(51) - 70.0).abs() < 1e-9);
        assert!(p.iter_compute(25) < p.iter_compute(0));
        assert!(p.iter_compute(25) > p.iter_compute(51));
    }

    #[test]
    fn small_run_produces_expected_counts() {
        let p = EscatParams::small(4, 6);
        let w = p.workload();
        let m = MachineConfig::tiny(4, 2);
        let out = run_workload(&m, &w, &Backend::Pfs);
        let (reads, writes, seeks, opens, closes) = p.expected_counts();
        assert_eq!(out.trace.of_op(IoOp::Read).count() as u64, reads);
        assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, writes);
        assert_eq!(out.trace.of_op(IoOp::Seek).count() as u64, seeks);
        assert_eq!(out.trace.of_op(IoOp::Open).count() as u64, opens);
        assert_eq!(out.trace.of_op(IoOp::Close).count() as u64, closes);
    }

    #[test]
    fn small_run_reload_reads_what_was_written() {
        let p = EscatParams::small(4, 6);
        let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);
        // Reload reads: the last 2*nodes reads; each node rereads its own
        // region (offset == region_base) and gets all its data back.
        let reloads: Vec<_> = out
            .trace
            .of_op(IoOp::Read)
            .filter(|e| super::files::STAGING.contains(&e.file))
            .collect();
        assert_eq!(reloads.len(), 8);
        for ev in reloads {
            assert_eq!(ev.offset, p.region_base(ev.node));
            assert!(ev.bytes >= p.iters as u64 * p.quad_bytes);
        }
    }

    #[test]
    fn small_run_works_on_ppfs_backend() {
        let p = EscatParams::small(4, 4);
        let out = run_workload(
            &MachineConfig::tiny(4, 2),
            &p.workload(),
            &Backend::Ppfs(sio_ppfs::PolicyConfig::escat_tuned()),
        );
        assert!(out.ppfs_stats.unwrap().writes_buffered > 0);
    }
}

//! Shared workload machinery: the runner and synthetic kernels.
//!
//! A [`Workload`] bundles everything a run needs — file specs, one script
//! per node, extra node groups — and [`run_workload`] executes it against
//! either file system backend, returning the captured trace. The synthetic
//! kernels at the bottom are the "simple synthetic kernels often used to
//! evaluate new file system ideas" the paper warns about (§8); here they
//! drive the access-mode and policy ablations (DESIGN.md A1/A2), not
//! whole-application conclusions.

use paragon_sim::engine::IoService;
use paragon_sim::mesh::Mesh;
use paragon_sim::program::{IoRequest, NodeProgram, ScriptOp, ScriptProgram};
use paragon_sim::{
    Engine, EnginePerf, EngineReport, FaultSchedule, MachineConfig, NodeId, ShardedEngine,
    SimDuration, SimTime,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sio_blog::BlogStats;
use sio_cio::CioStats;
use sio_core::perf;
use sio_core::trace::{Trace, TraceSink};
pub use sio_fskit::{MetaStats, NodeLoad};
use sio_pfs::{AccessMode, FaultStats, FileSpec};
use sio_ppfs::PpfsStats;

pub use crate::backend::{Backend, BackendSpec, FsBackend};

/// A complete, backend-independent workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display label (becomes the trace label).
    pub label: String,
    /// Files, registered in order (index = file id).
    pub files: Vec<FileSpec>,
    /// One script per node; `scripts.len()` nodes run.
    pub scripts: Vec<Vec<ScriptOp>>,
    /// Extra node groups (group 0 = all nodes is implicit; these become
    /// groups 1, 2, ...).
    pub groups: Vec<Vec<NodeId>>,
}

/// Result of a workload run.
#[derive(Debug)]
pub struct RunOutput {
    /// The captured application-level I/O trace.
    pub trace: Trace,
    /// Engine statistics (wall time, events, clean finish).
    pub report: EngineReport,
    /// PPFS statistics when the PPFS backend ran.
    pub ppfs_stats: Option<PpfsStats>,
    /// PFS fault-machinery counters when the PFS backend ran (all zero on a
    /// healthy run).
    pub pfs_faults: Option<FaultStats>,
    /// RAID rebuild work done across all I/O nodes: (chunks, member bytes).
    pub rebuild: (u64, u64),
    /// I/O nodes whose arrays were still degraded at run end.
    pub degraded_nodes: u32,
    /// Accepted-request accounting per I/O node (Fig. 4 / X6: request counts
    /// and byte volumes by direction). Empty for backends off the shared
    /// segment pump.
    pub node_loads: Vec<NodeLoad>,
    /// Collective-I/O machinery counters when the CIO backend ran.
    pub cio: Option<CioStats>,
    /// Burst-log drain-health counters when the log tier wrapped the run.
    pub blog: Option<BlogStats>,
    /// Metadata-server fault counters (failovers, parked-RPC retries, typed
    /// unavailability) for backends on the replicated metadata service.
    pub meta: Option<MetaStats>,
}

impl RunOutput {
    /// Simulated wall-clock seconds.
    pub fn wall_secs(&self) -> f64 {
        self.report.wall.as_secs_f64()
    }
}

/// Default liveness-watchdog deadline for every workload run: 10⁷ simulated
/// seconds. The longest legitimate suite run is ~2 × 10⁴ s, three orders of
/// magnitude below; a livelocked retry loop blows past this in bounded host
/// time and surfaces as a typed `HangReport` instead of hanging CI.
pub const WATCHDOG_DEADLINE: SimTime = paragon_sim::DEFAULT_WATCHDOG;

fn run_engine<S: IoService>(
    machine: &MachineConfig,
    workload: &Workload,
    service: S,
    stop_at: Option<SimTime>,
) -> (EngineReport, S, EnginePerf) {
    assert!(
        workload.scripts.len() as u32 <= machine.compute_nodes,
        "workload needs {} nodes, machine has {}",
        workload.scripts.len(),
        machine.compute_nodes
    );
    let mesh = Mesh::for_nodes(machine.compute_nodes, machine.io_nodes);
    // `--shards N` / `SIO_SHARDS` routes the run through the region-sharded
    // PDES front end; traces, reports, and perf counters are byte-identical
    // to the serial engine for every shard count (see `paragon_sim::pdes`).
    let shards = paragon_sim::configured_shards();
    if shards > 1 {
        let programs: Vec<Box<dyn NodeProgram + Send>> = workload
            .scripts
            .iter()
            .map(|s| Box::new(ScriptProgram::new(s.clone())) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut engine = ShardedEngine::new(mesh, machine.comm, programs, service, shards);
        engine.set_watchdog(WATCHDOG_DEADLINE);
        for g in &workload.groups {
            engine.add_group(g.clone());
        }
        let report = match stop_at {
            Some(t) => engine.run_until(t),
            None => {
                let report = engine.run();
                assert!(
                    report.clean(),
                    "workload '{}' stuck; blocked nodes: {:?}; watchdog: {:?}",
                    workload.label,
                    report.blocked,
                    report.hang
                );
                report
            }
        };
        // Engine-phase wall split: how much host time went to parallel
        // pre-stepping vs committing windows. This is the one intentionally
        // non-deterministic perf output (wall clock, not event counts); the
        // phase *names* are identical in both branches so `repro --perf`
        // output keeps its shape at every shard count.
        let (pre_ns, commit_ns) = engine.phase_wall_ns();
        perf::phase_ns("engine/pre_step", pre_ns);
        perf::phase_ns("engine/commit", commit_ns);
        let engine_perf = engine.perf();
        return (report, engine.into_service(), engine_perf);
    }
    let programs: Vec<Box<dyn NodeProgram>> = workload
        .scripts
        .iter()
        .map(|s| Box::new(ScriptProgram::new(s.clone())) as Box<dyn NodeProgram>)
        .collect();
    let mut engine = Engine::new(mesh, machine.comm, programs, service);
    engine.set_watchdog(WATCHDOG_DEADLINE);
    for g in &workload.groups {
        engine.add_group(g.clone());
    }
    let run_start = std::time::Instant::now();
    let report = match stop_at {
        // A crashed run legitimately ends with blocked nodes: they died.
        Some(t) => engine.run_until(t),
        None => {
            let report = engine.run();
            assert!(
                report.clean(),
                "workload '{}' stuck; blocked nodes: {:?}; watchdog: {:?}",
                workload.label,
                report.blocked,
                report.hang
            );
            report
        }
    };
    // The serial engine is all commit loop — no pre-step phase exists.
    // Recording 0/total under the same names keeps the `repro --perf`
    // phase table's shape shard-count-invariant.
    perf::phase_ns("engine/pre_step", 0);
    perf::phase_ns("engine/commit", run_start.elapsed().as_nanos() as u64);
    let engine_perf = engine.perf();
    (report, engine.into_service(), engine_perf)
}

/// Publish one run's hot-path totals to the global perf aggregate (a no-op
/// unless collection was enabled, e.g. by `repro --perf`).
fn submit_perf(engine_perf: EnginePerf, sink: &TraceSink, blog: Option<BlogStats>) {
    perf::submit(perf::RunPerf {
        events: engine_perf.events,
        heap_peak: engine_perf.heap_peak,
        channel_peak: engine_perf.channel_peak,
        trace_events: sink.len() as u64,
        trace_bytes: sink.buffered_bytes(),
        log_occ_peak: blog.map_or(0, |b| b.occupancy_peak),
        log_stall_ns: blog.map_or(0, |b| b.stall_ns),
    });
}

/// Run a workload on a machine with the chosen backend.
pub fn run_workload(machine: &MachineConfig, workload: &Workload, backend: &Backend) -> RunOutput {
    run_workload_with_faults(machine, workload, backend, None)
}

/// Run a workload with an optional injected fault schedule (the X4 fault
/// suite). `None` (or an empty schedule) is exactly [`run_workload`]: the
/// fault machinery stays dormant and the run is bit-identical to a healthy
/// one.
pub fn run_workload_with_faults(
    machine: &MachineConfig,
    workload: &Workload,
    backend: &Backend,
    faults: Option<&FaultSchedule>,
) -> RunOutput {
    run_workload_crashable(machine, workload, backend, faults, None, &[])
}

/// Run a workload that may be cut short by an application crash.
///
/// `stop_at` halts the simulation at that instant without requiring a clean
/// finish — the surviving state (trace, wall, filesystem counters) is exactly
/// what a post-mortem would see. `covered` lists file ids whose write-behind
/// dirty data is protected by application checkpoints, so PPFS can split
/// crash losses into "lost but checkpointed" vs "lost work". With
/// `stop_at = None` and empty `covered` this is bit-identical to
/// [`run_workload_with_faults`].
pub fn run_workload_crashable(
    machine: &MachineConfig,
    workload: &Workload,
    backend: &Backend,
    faults: Option<&FaultSchedule>,
    stop_at: Option<SimTime>,
    covered: &[u32],
) -> RunOutput {
    let schedule = faults.cloned().unwrap_or_default();
    let nodes = workload.scripts.len() as u32;
    let mut fs = backend.build(machine, TraceSink::new(&workload.label), schedule);
    for f in &workload.files {
        fs.register_file(f.clone());
    }
    for &file in covered {
        fs.mark_checkpoint_covered(file);
    }
    let (report, mut fs, engine_perf) = run_engine(machine, workload, fs, stop_at);
    let blog = fs.blog_stats();
    fs.sink_mut().set_run_info(nodes, report.wall.nanos());
    submit_perf(engine_perf, fs.sink_mut(), blog);
    let ppfs_stats = fs.ppfs_stats();
    let pfs_faults = fs.pfs_fault_stats();
    let rebuild = fs.rebuild_totals();
    let degraded_nodes = fs.degraded_nodes();
    let node_loads = fs.node_loads();
    let cio = fs.cio_stats();
    let meta = fs.meta_stats();
    RunOutput {
        trace: fs.finish_trace(),
        report,
        ppfs_stats,
        pfs_faults,
        rebuild,
        degraded_nodes,
        node_loads,
        cio,
        blog,
        meta,
    }
}

/// Open helper: `ScriptOp::Io(open)` with a mode.
pub fn op_open(file: u32, mode: AccessMode) -> ScriptOp {
    ScriptOp::Io(IoRequest::open(file, mode.code()))
}

/// Compute helper from fractional seconds.
pub fn op_compute(secs: f64) -> ScriptOp {
    ScriptOp::Compute(SimDuration::from_secs_f64(secs))
}

// ---------------------------------------------------------------------------
// Synthetic kernels (ablations A1/A2).
// ---------------------------------------------------------------------------

/// A single-node sequential scan: `count` reads of `bytes` from file 0.
pub fn sequential_read_kernel(count: u32, bytes: u64, mode: AccessMode) -> Workload {
    let mut ops = vec![op_open(0, mode)];
    for _ in 0..count {
        ops.push(ScriptOp::Io(IoRequest::read(0, bytes)));
    }
    ops.push(ScriptOp::Io(IoRequest::close(0)));
    Workload {
        label: format!("seq-read-{}x{}-{}", count, bytes, mode),
        files: vec![FileSpec::input("data", count as u64 * bytes)],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

/// `nodes` synchronized writers appending fixed records through a mode —
/// the kernel for the access-mode ablation (A1).
pub fn parallel_write_kernel(nodes: u32, per_node: u32, bytes: u64, mode: AccessMode) -> Workload {
    let scripts = (0..nodes)
        .map(|node| {
            let mut ops = vec![op_open(0, mode)];
            ops.push(ScriptOp::Barrier(0));
            for k in 0..per_node {
                if mode == AccessMode::MUnix || mode == AccessMode::MAsync {
                    // Independent pointers need explicit placement.
                    let off = (node as u64 * per_node as u64 + k as u64) * bytes;
                    ops.push(ScriptOp::Io(IoRequest::seek(0, off)));
                }
                ops.push(ScriptOp::Io(IoRequest::write(0, bytes)));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    Workload {
        label: format!("par-write-{}n-{}x{}-{}", nodes, per_node, bytes, mode),
        files: vec![FileSpec::output("shared")],
        scripts,
        groups: Vec::new(),
    }
}

/// A single-node strided read kernel (fixed stride larger than the record).
pub fn strided_read_kernel(count: u32, bytes: u64, stride: u64) -> Workload {
    assert!(stride >= bytes);
    let mut ops = vec![op_open(0, AccessMode::MUnix)];
    for k in 0..count as u64 {
        ops.push(ScriptOp::Io(IoRequest::seek(0, k * stride)));
        ops.push(ScriptOp::Io(IoRequest::read(0, bytes)));
    }
    Workload {
        label: format!("strided-read-{count}x{bytes}+{stride}"),
        files: vec![FileSpec::input("data", count as u64 * stride)],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

/// A single-node uniformly random read kernel (seeded).
pub fn random_read_kernel(count: u32, bytes: u64, file_len: u64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = vec![op_open(0, AccessMode::MUnix)];
    for _ in 0..count {
        let max = (file_len.saturating_sub(bytes)).max(1);
        let off = rng.random_range(0..max);
        ops.push(ScriptOp::Io(IoRequest::seek(0, off)));
        ops.push(ScriptOp::Io(IoRequest::read(0, bytes)));
    }
    Workload {
        label: format!("random-read-{count}x{bytes}"),
        files: vec![FileSpec::input("data", file_len)],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

/// Cyclic multi-pass scan kernel (HTF-pscf-like), single node.
pub fn cyclic_read_kernel(passes: u32, reads_per_pass: u32, bytes: u64) -> Workload {
    let mut ops = vec![op_open(0, AccessMode::MUnix)];
    for _ in 0..passes {
        ops.push(ScriptOp::Io(IoRequest::seek(0, 0)));
        for _ in 0..reads_per_pass {
            ops.push(ScriptOp::Io(IoRequest::read(0, bytes)));
        }
    }
    Workload {
        label: format!("cyclic-read-{passes}x{reads_per_pass}x{bytes}"),
        files: vec![FileSpec::input("data", reads_per_pass as u64 * bytes)],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sio_core::event::IoOp;
    use sio_ppfs::PolicyConfig;

    fn tiny() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    #[test]
    fn sequential_kernel_runs_on_both_backends() {
        let w = sequential_read_kernel(8, 65536, AccessMode::MUnix);
        let pfs = run_workload(&tiny(), &w, &Backend::Pfs);
        let ppfs = run_workload(&tiny(), &w, &Backend::Ppfs(PolicyConfig::readahead(4)));
        assert_eq!(pfs.trace.of_op(IoOp::Read).count(), 8);
        assert_eq!(ppfs.trace.of_op(IoOp::Read).count(), 8);
        assert!(ppfs.ppfs_stats.is_some());
        assert!(pfs.ppfs_stats.is_none());
        // Same logical volume on both backends.
        assert_eq!(pfs.trace.data_volume(), ppfs.trace.data_volume());
    }

    #[test]
    fn parallel_write_kernel_counts() {
        let w = parallel_write_kernel(4, 5, 2048, AccessMode::MUnix);
        let out = run_workload(&tiny(), &w, &Backend::Pfs);
        assert_eq!(out.trace.of_op(IoOp::Write).count(), 20);
        assert_eq!(out.trace.of_op(IoOp::Seek).count(), 20);
        assert_eq!(out.trace.of_op(IoOp::Open).count(), 4);
        // Disjoint extents: every write offset unique.
        let mut offs: Vec<u64> = out.trace.of_op(IoOp::Write).map(|e| e.offset).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 20);
    }

    #[test]
    fn mode_kernels_run_for_every_mode() {
        for mode in AccessMode::ALL {
            let w = parallel_write_kernel(3, 2, 1024, mode);
            if mode == AccessMode::MGlobal {
                // M_GLOBAL writes replicate the same data; kernel is
                // read-oriented for that mode — skip.
                continue;
            }
            let out = run_workload(&tiny(), &w, &Backend::Pfs);
            assert_eq!(out.trace.of_op(IoOp::Write).count(), 6, "{mode}");
        }
    }

    #[test]
    fn random_kernel_is_deterministic() {
        let a = random_read_kernel(10, 4096, 1 << 20, 7);
        let b = random_read_kernel(10, 4096, 1 << 20, 7);
        let ta = run_workload(&tiny(), &a, &Backend::Pfs);
        let tb = run_workload(&tiny(), &b, &Backend::Pfs);
        assert_eq!(ta.trace.events(), tb.trace.events());
        let c = random_read_kernel(10, 4096, 1 << 20, 8);
        let tc = run_workload(&tiny(), &c, &Backend::Pfs);
        assert_ne!(ta.trace.events(), tc.trace.events());
    }

    #[test]
    fn cyclic_kernel_rewinds() {
        let w = cyclic_read_kernel(3, 4, 8192);
        let out = run_workload(&tiny(), &w, &Backend::Pfs);
        assert_eq!(out.trace.of_op(IoOp::Read).count(), 12);
        assert_eq!(out.trace.of_op(IoOp::Seek).count(), 3);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn too_many_scripts_panics() {
        let w = parallel_write_kernel(64, 1, 1024, AccessMode::MUnix);
        let _ = run_workload(&tiny(), &w, &Backend::Pfs);
    }
}

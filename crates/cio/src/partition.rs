//! Phase-1 arithmetic: the conforming partition of a collective request.
//!
//! Participating nodes contribute byte extents; the partition merges them
//! into their disjoint union and decomposes that union along the stripe
//! grid into *file domains* — per-I/O-node aggregates, each a maximal run
//! of stripe pieces that is contiguous in the owning node's local array
//! space, so the aggregator can move it in one large sequential transfer.
//!
//! Everything here is pure arithmetic over sorted extents: the result
//! depends only on the *set* of input extents, never on the order the
//! extent descriptors arrived in (the property tests pin this down).

use sio_fskit::layout::StripeLayout;

/// A half-open byte extent `[offset, offset + bytes)` of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Extent {
    /// First byte.
    pub offset: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl Extent {
    /// One past the last byte.
    pub fn end(&self) -> u64 {
        self.offset + self.bytes
    }
}

/// One aggregated file domain: a maximal run of stripe pieces owned by one
/// I/O node and contiguous in that node's local array space — the unit of
/// phase-2 transfer (one [`SegmentReq`] each).
///
/// [`SegmentReq`]: paragon_sim::ionode::SegmentReq
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// Owning I/O node.
    pub io_node: u32,
    /// First byte of the run in the file's node-local array space.
    pub local_offset: u64,
    /// Run length in bytes (sum of the pieces).
    pub bytes: u64,
    /// File-space pieces composing the run, ascending; each piece lies
    /// within a single stripe unit of the owning node, and its boundaries
    /// sit on stripe-unit multiples or union-extent edges.
    pub pieces: Vec<Extent>,
}

impl Domain {
    /// Bytes of `e` covered by this domain's file-space pieces (the data a
    /// member contributes to — or receives from — this aggregator).
    pub fn overlap(&self, e: Extent) -> u64 {
        self.pieces
            .iter()
            .map(|p| p.end().min(e.end()).saturating_sub(p.offset.max(e.offset)))
            .sum()
    }
}

/// Merge extents into their sorted disjoint union (zero-length inputs
/// vanish; adjacent extents coalesce).
pub fn union(extents: &[Extent]) -> Vec<Extent> {
    let mut v: Vec<Extent> = extents.iter().copied().filter(|e| e.bytes > 0).collect();
    v.sort_unstable();
    let mut out: Vec<Extent> = Vec::new();
    for e in v {
        match out.last_mut() {
            Some(last) if e.offset <= last.end() => {
                let end = last.end().max(e.end());
                last.bytes = end - last.offset;
            }
            _ => out.push(e),
        }
    }
    out
}

/// Decompose a disjoint sorted union (from [`union`]) into aggregated
/// [`Domain`]s: walk each union extent along the stripe grid, then merge
/// the per-node pieces that land contiguously in node-local array space.
/// Domains come out ascending by `(io_node, local_offset)`.
pub fn domains(layout: &StripeLayout, union_extents: &[Extent]) -> Vec<Domain> {
    let mut pieces: Vec<(u32, u64, Extent)> = Vec::new();
    for e in union_extents {
        let mut pos = e.offset;
        while pos < e.end() {
            let stop = ((pos / layout.unit + 1) * layout.unit).min(e.end());
            pieces.push((
                layout.io_node_of(pos),
                layout.local_offset_of(pos),
                Extent {
                    offset: pos,
                    bytes: stop - pos,
                },
            ));
            pos = stop;
        }
    }
    pieces.sort_by_key(|&(io, local, _)| (io, local));
    let mut out: Vec<Domain> = Vec::new();
    for (io, local, pc) in pieces {
        match out.last_mut() {
            Some(d) if d.io_node == io && d.local_offset + d.bytes == local => {
                d.bytes += pc.bytes;
                d.pieces.push(pc);
            }
            _ => out.push(Domain {
                io_node: io,
                local_offset: local,
                bytes: pc.bytes,
                pieces: vec![pc],
            }),
        }
    }
    out
}

/// [`union`] + [`domains`] in one call: the full conforming partition of a
/// set of member extents.
pub fn partition(layout: &StripeLayout, extents: &[Extent]) -> Vec<Domain> {
    domains(layout, &union(extents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn union_merges_overlap_and_adjacency() {
        let u = union(&[
            Extent {
                offset: 10,
                bytes: 10,
            },
            Extent {
                offset: 0,
                bytes: 5,
            },
            Extent {
                offset: 5,
                bytes: 5,
            },
            Extent {
                offset: 15,
                bytes: 10,
            },
            Extent {
                offset: 40,
                bytes: 0,
            },
            Extent {
                offset: 50,
                bytes: 1,
            },
        ]);
        assert_eq!(
            u,
            vec![
                Extent {
                    offset: 0,
                    bytes: 25
                },
                Extent {
                    offset: 50,
                    bytes: 1
                }
            ]
        );
    }

    /// The paper's interleaved-writer shape: N nodes each writing one
    /// region-strided record per iteration aggregates to exactly one
    /// domain per I/O node, each a single contiguous local run.
    #[test]
    fn interleaved_full_cover_aggregates_to_one_domain_per_node() {
        let l = StripeLayout::new(64 * 1024, 4);
        // 8 writers × 4 units each, covering [0, 2 MB) exactly.
        let extents: Vec<Extent> = (0..8u64)
            .map(|n| Extent {
                offset: n * 256 * 1024,
                bytes: 256 * 1024,
            })
            .collect();
        let doms = partition(&l, &extents);
        assert_eq!(doms.len(), 4);
        for (i, d) in doms.iter().enumerate() {
            assert_eq!(d.io_node as usize, i);
            assert_eq!(d.local_offset, 0);
            assert_eq!(d.bytes, 512 * 1024); // 8 units of 64 KB per node
        }
    }

    #[test]
    fn overlap_counts_member_bytes_inside_the_domain() {
        let l = StripeLayout::new(1000, 2);
        let doms = partition(
            &l,
            &[Extent {
                offset: 500,
                bytes: 2000,
            }],
        );
        // Units 0 and 2 belong to node 0; unit 1 to node 1.
        let total: u64 = doms
            .iter()
            .map(|d| {
                d.overlap(Extent {
                    offset: 500,
                    bytes: 2000,
                })
            })
            .sum();
        assert_eq!(total, 2000);
        let d0 = doms.iter().find(|d| d.io_node == 0).unwrap();
        assert_eq!(
            d0.overlap(Extent {
                offset: 0,
                bytes: 1000
            }),
            500
        );
    }

    fn to_extents(raw: &[(u64, u64)]) -> Vec<Extent> {
        raw.iter()
            .map(|&(offset, bytes)| Extent { offset, bytes })
            .collect()
    }

    fn byte_set(extents: &[Extent]) -> BTreeSet<u64> {
        extents.iter().flat_map(|e| e.offset..e.end()).collect()
    }

    proptest! {
        /// The union is sorted, disjoint, non-adjacent, and covers exactly
        /// the bytes of the inputs.
        #[test]
        fn union_is_the_exact_disjoint_cover(raw in vec((0u64..6_000, 0u64..1_500), 1..24)) {
            let extents = to_extents(&raw);
            let u = union(&extents);
            for w in u.windows(2) {
                prop_assert!(w[0].end() < w[1].offset, "not disjoint/sorted: {:?}", w);
            }
            prop_assert!(u.iter().all(|e| e.bytes > 0));
            prop_assert_eq!(byte_set(&u), byte_set(&extents));
        }

        /// The computed file domains exactly cover the union with no
        /// overlap, and every piece is stripe-conforming: it lies within a
        /// single stripe unit of its domain's I/O node, breaks only at
        /// stripe-unit multiples or union edges, and runs contiguously in
        /// node-local array space.
        #[test]
        fn domains_exactly_cover_and_conform(
            raw in vec((0u64..6_000, 0u64..1_500), 1..24),
            unit in 1u64..700,
            io_nodes in 1u32..7,
        ) {
            let extents = to_extents(&raw);
            let l = StripeLayout::new(unit, io_nodes);
            let u = union(&extents);
            let doms = domains(&l, &u);
            let union_edges: BTreeSet<u64> =
                u.iter().flat_map(|e| [e.offset, e.end()]).collect();

            let mut covered: BTreeSet<u64> = BTreeSet::new();
            for d in &doms {
                let mut local = d.local_offset;
                let mut run_bytes = 0;
                for p in &d.pieces {
                    prop_assert!(p.bytes > 0);
                    // Within one stripe unit, owned by the domain's node.
                    prop_assert_eq!(p.offset / unit, (p.end() - 1) / unit);
                    prop_assert_eq!(l.io_node_of(p.offset), d.io_node);
                    // Boundaries on the stripe grid or at union edges.
                    prop_assert!(
                        p.offset % unit == 0 || union_edges.contains(&p.offset),
                        "piece start {} off-grid", p.offset
                    );
                    prop_assert!(
                        p.end() % unit == 0 || union_edges.contains(&p.end()),
                        "piece end {} off-grid", p.end()
                    );
                    // Contiguous in node-local array space.
                    prop_assert_eq!(l.local_offset_of(p.offset), local);
                    local += p.bytes;
                    run_bytes += p.bytes;
                    for b in p.offset..p.end() {
                        prop_assert!(covered.insert(b), "byte {} covered twice", b);
                    }
                }
                prop_assert_eq!(run_bytes, d.bytes);
            }
            prop_assert_eq!(covered, byte_set(&u));
        }

        /// The partition is independent of extent-exchange arrival order:
        /// any permutation of the inputs yields identical domains.
        #[test]
        fn partition_is_arrival_order_independent(
            raw in vec((0u64..6_000, 0u64..1_500), 1..24),
            seed in any::<u64>(),
            unit in 1u64..700,
            io_nodes in 1u32..7,
        ) {
            let extents = to_extents(&raw);
            let l = StripeLayout::new(unit, io_nodes);
            let baseline = partition(&l, &extents);
            // Deterministic pseudo-shuffle of the arrival order.
            let mut shuffled = extents.clone();
            let mut s = seed | 1;
            for i in (1..shuffled.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                shuffled.swap(i, (s >> 33) as usize % (i + 1));
            }
            prop_assert_eq!(partition(&l, &shuffled), baseline);
        }
    }
}

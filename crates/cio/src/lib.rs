//! # sio-cio — a collective two-phase I/O backend
//!
//! The paper's central pathology (Fig. 4) is many compute nodes issuing
//! synchronized bursts of small interleaved requests: each I/O node sees
//! its file region as hundreds of tiny, seek-separated accesses. PFS passes
//! the requests through as issued; PPFS absorbs them in write-behind
//! caches. This crate models the third classic mechanism — *two-phase
//! collective I/O*: before any data touches the I/O nodes, the
//! participating compute nodes exchange extent descriptors over the 2-D
//! mesh, compute a *conforming partition* of the aggregate request into
//! stripe-aligned file domains, and elect one aggregator per touched I/O
//! node to issue a single large sequential transfer for its domain.
//!
//! * [`partition`] — the pure conforming-partition computation: member
//!   extents → sorted disjoint union → per-I/O-node aggregated domains
//!   (maximal runs contiguous in node-local array space), independent of
//!   extent arrival order;
//! * [`fs`] — [`fs::Cio`], the [`paragon_sim::IoService`] implementation:
//!   PFS-identical metadata semantics over the shared `sio-fskit`
//!   substrate, a per-file gather that triggers when every opener has
//!   contributed, a timed extent-exchange phase (real mesh message costs),
//!   and phase-2 aggregated dispatch through the shared [`SegmentPump`]
//!   under the buddy-failover policy.
//!
//! [`SegmentPump`]: sio_fskit::SegmentPump

pub use sio_fskit::{file, layout, mode};

pub mod fs;
pub mod partition;

pub use file::FileSpec;
pub use fs::{Cio, CioConfig, CioFaultStats, CioStats};
pub use layout::StripeLayout;
pub use mode::AccessMode;
pub use partition::{Domain, Extent};
